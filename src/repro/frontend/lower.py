"""Lowering: pycparser ASTs → VDG function graphs.

This pass plays the role of the paper's VDG compiler front end.  The
essential properties it establishes (Section 2 / §5.1.1 "program
representation"):

* **Explicit store threading** — every memory access is a ``lookup`` or
  ``update`` node consuming the current store value; calls thread the
  store through callees.

* **Sparse representation** — locals whose address is never taken (and
  that are not aggregates or statics) never touch the store; they live
  in an SSA-style environment, merged at control-flow joins.  This is
  the paper's "SSA-like transformation that removes non-addressed
  variables from the store".

* **Access-path construction** — ``&x``, ``x.f``, ``a[i]``, ``p->f``
  produce interned access paths; address arithmetic on statically
  known locations is folded so that direct accesses keep constant
  location inputs (which is what makes Figure 4's direct/indirect
  distinction meaningful).

* **Base-location discipline** — one location per variable, one heap
  location per static allocator call site, string-literal storage, a
  FUNCTION location per defined function, and weakly-updateable
  locations for locals of recursive procedures (footnote 4, scheme 2).

Unsupported C (mirroring the paper's Section 2 caveats): casts between
pointer and non-pointer types, ``goto``/labels, ``signal``/``longjmp``
(via the library models), and calls that invoke invisible function
pointers (``qsort``).
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from pycparser import c_ast

from ..errors import LoweringError, TypeError_, UnsupportedFeatureError
from ..memory.access import AccessPath, INDEX, location_path
from ..memory.base import (
    BaseLocation,
    LocationKind,
    function_location,
    global_location,
    heap_location,
    local_location,
    null_location,
    param_location,
    string_location,
    uninit_location,
)
from ..memory.pairs import PointsToPair, direct, pair as make_pair
from ..ir.builder import GraphBuilder, unify_tags
from ..ir.graph import FunctionGraph, Program
from ..ir.nodes import AddressNode, MergeNode, OutputPort, ValueTag
from ..ir.simplify import simplify_program
from ..ir.validate import validate_program
from .ctypes import (
    ArrayType,
    CHAR,
    CType,
    EnumType,
    FloatType,
    FunctionType,
    INT,
    IntType,
    PointerType,
    RecordType,
    VOID,
    VoidType,
    decay,
    pointer_to,
)
from .libmodels import LibModel, model_for
from .parser import (
    parse_file as _parse_file,
    parse_preprocessed,
    parse_source as _parse_source,
)
from .prepasses import PrepassInfo, run_prepasses
from .symbols import Symbol, SymbolKind, SymbolTable
from .typemap import (
    TypeContext,
    _char_value,
    decode_string_literal,
    int_literal,
)


def _line(node) -> Optional[int]:
    coord = getattr(node, "coord", None)
    return getattr(coord, "line", None)


def _origin(node) -> Optional[str]:
    coord = getattr(node, "coord", None)
    if coord is None:
        return None
    return f"{coord.file}:{coord.line}"


# ---------------------------------------------------------------------------
# Storage bindings
# ---------------------------------------------------------------------------


class Binding:
    """How a variable's storage is realized."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: Symbol) -> None:
        self.symbol = symbol


class RegisterBinding(Binding):
    """SSA value in the environment; never in the store."""


class MemoryBinding(Binding):
    """Store-resident variable with its own base-location."""

    __slots__ = ("location",)

    def __init__(self, symbol: Symbol, location: BaseLocation) -> None:
        super().__init__(symbol)
        self.location = location


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------


class LValue:
    __slots__ = ("ctype",)

    def __init__(self, ctype: CType) -> None:
        self.ctype = ctype


class RegisterLValue(LValue):
    __slots__ = ("symbol",)

    def __init__(self, symbol: Symbol) -> None:
        super().__init__(symbol.ctype)
        self.symbol = symbol


class MemoryLValue(LValue):
    __slots__ = ("addr",)

    def __init__(self, addr: OutputPort, ctype: CType) -> None:
        super().__init__(ctype)
        self.addr = addr


# ---------------------------------------------------------------------------
# Module-level lowering
# ---------------------------------------------------------------------------


class Linkage:
    """Shared state when linking several translation units.

    External-linkage globals share one base-location by name; the set
    of externally defined functions lets a translation unit call a
    procedure whose body lives in another file; TU-local ``static``
    functions get qualified program names so they never collide.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        #: External-linkage global variable locations, by name.
        self.global_locations: Dict[str, BaseLocation] = {}
        #: External-linkage function names with a definition somewhere.
        self.defined_functions: Dict[str, FunctionType] = {}
        #: Names whose initializer has been seen (double-definition check).
        self.initialized_globals: set = set()


class ModuleLowerer:
    """Lowers one translation unit to a :class:`Program`.

    Standalone use (``run()``) produces a complete program from one
    file; :func:`lower_files` drives several ModuleLowerers sharing a
    :class:`Linkage` to build a multi-file program.
    """

    def __init__(self, ast: c_ast.FileAST, name: str,
                 roots: Optional[Sequence[str]] = None,
                 extern_policy: str = "warn",
                 synthesize_root_environment: bool = True,
                 simplify: bool = True,
                 sparse: bool = True,
                 hazard_model: bool = False,
                 linkage: Optional[Linkage] = None,
                 tu_name: Optional[str] = None) -> None:
        if extern_policy not in ("warn", "error"):
            raise ValueError(f"bad extern_policy {extern_policy!r}")
        self.ast = ast
        self.linkage = linkage
        self.tu_name = tu_name or name
        self.program = linkage.program if linkage is not None \
            else Program(name)
        self.types = TypeContext()
        self.symbols = SymbolTable()
        self.roots = list(roots) if roots is not None else None
        self.extern_policy = extern_policy
        self.synthesize_root_environment = synthesize_root_environment
        self.simplify = simplify
        #: sparse=True is the paper's VDG representation (non-addressed
        #: scalars live in an SSA environment); sparse=False forces
        #: every local into the store, approximating a classic
        #: control-flow-graph representation — the paper: the analyses
        #: "apply equally well to control-flow graph representations;
        #: they merely run faster on the VDG because it is more sparse".
        self.sparse = sparse
        #: hazard_model=True (the checker clients' lowering mode) adds
        #: two SUMMARY base-locations — ``<null>`` becomes the referent
        #: of the null pointer, and every uninitialized pointer-valued
        #: local starts out pointing at ``<uninit>`` (strong updates
        #: kill the marker on initialization).  Off by default: it
        #: perturbs every pair count, so the paper tables never see it.
        self.hazard: Optional[Dict[str, BaseLocation]] = None
        if hazard_model:
            hazard = self.program.extras.get("hazard")
            if hazard is None:
                hazard = {
                    "null": self.program.register_location(null_location()),
                    "uninit":
                        self.program.register_location(uninit_location()),
                }
                self.program.extras["hazard"] = hazard
            self.hazard = hazard

        self.bindings: Dict[Symbol, Binding] = {}
        #: Function bodies keyed by *program* name (== source name,
        #: except for TU-local statics in linked builds).
        self.func_defs: Dict[str, c_ast.FuncDef] = {}
        #: Source name per program name (prepass queries use these).
        self.func_source_names: Dict[str, str] = {}
        self.func_symbols: Dict[str, Symbol] = {}
        self.prepass: Optional[PrepassInfo] = None
        #: Extra program-name recursion facts from cross-TU linking.
        self.linked_recursive: set = set()
        self.warnings: List[str] = []
        self._string_counter = itertools.count(1)
        self._heap_counter = itertools.count(1)
        self._env_counter = itertools.count(1)
        #: Heap location per allocator call-site AST node.
        self._heap_sites: Dict[int, BaseLocation] = {}

    # -- driver ----------------------------------------------------------------

    def run(self) -> Program:
        """Standalone single-file lowering."""
        self.collect()
        self.lower_bodies()
        self.finish()
        return self.program

    def collect(self) -> None:
        """Stage 1: declarations (types, globals, function graphs)."""
        self._collect_declarations()
        source_defs = {self.func_source_names[name]: funcdef
                       for name, funcdef in self.func_defs.items()}
        self.prepass = run_prepasses(source_defs,
                                     set(self.func_symbols))

    def lower_bodies(self) -> None:
        """Stage 2: lower every function body."""
        for name, funcdef in self.func_defs.items():
            FunctionLowerer(self, name, funcdef).run()

    def finish(self) -> None:
        """Stage 3: roots, environments, simplification, validation."""
        self._select_roots()
        if self.synthesize_root_environment:
            self._synthesize_environments()
        if self.simplify:
            simplify_program(self.program)
        validate_program(self.program)
        existing = self.program.extras.get("warnings", [])
        self.program.extras["warnings"] = list(existing) + \
            [w for w in self.warnings if w not in existing]

    # -- pass 1: declarations ----------------------------------------------------

    def _collect_declarations(self) -> None:
        for ext in self.ast.ext:
            if isinstance(ext, c_ast.Typedef):
                self.types.register_typedef(ext)
            elif isinstance(ext, c_ast.FuncDef):
                self._declare_function_def(ext)
            elif isinstance(ext, c_ast.Decl):
                self._declare_global(ext)
            elif isinstance(ext, c_ast.Pragma):
                continue
            else:
                raise UnsupportedFeatureError(
                    f"unsupported top-level construct "
                    f"{type(ext).__name__}", line=_line(ext))

    def _declare_function_def(self, funcdef: c_ast.FuncDef) -> None:
        decl = funcdef.decl
        name = decl.name
        ftype = self.types.type_of(decl.type)
        if not isinstance(ftype, FunctionType):
            raise LoweringError(f"{name} is not a function", line=_line(decl))
        storage = set(decl.storage or ())
        is_static = "static" in storage
        program_name = name
        if self.linkage is not None and is_static:
            # TU-local: qualify so statics in other files cannot collide.
            program_name = f"{self.tu_name}::{name}"
        symbol = self._declare_function_symbol(name, ftype)
        symbol.defined = True
        symbol.link_name = program_name
        if program_name in self.func_defs:
            raise TypeError_(f"redefinition of function {name!r}",
                             line=_line(decl))
        if self.linkage is not None and not is_static:
            if name in self.linkage.defined_functions:
                raise TypeError_(
                    f"multiple definitions of {name!r} across "
                    f"translation units", line=_line(decl))
            self.linkage.defined_functions[name] = ftype
        self.func_defs[program_name] = funcdef
        self.func_source_names[program_name] = name
        # A static initializer earlier in the file may have referenced
        # this function already (e.g. a global function-pointer table);
        # reuse its location so both resolve to the same object.
        loc = self.program.function_locations.get(program_name)
        if loc is None:
            loc = self.program.register_location(
                function_location(program_name))
        graph = FunctionGraph(program_name)
        self.program.add_function(graph, loc)

    def _declare_function_symbol(self, name: str,
                                 ftype: FunctionType) -> Symbol:
        existing = self.symbols.lookup(name)
        if existing is not None and existing.kind is SymbolKind.FUNCTION:
            existing.ctype = ftype  # later declaration may add parameters
            return existing
        symbol = Symbol(name, ftype, SymbolKind.FUNCTION, is_global=True)
        self.symbols.define(symbol, allow_redeclare=True)
        self.func_symbols[name] = symbol
        return symbol

    def _declare_global(self, decl: c_ast.Decl) -> None:
        if decl.name is None:
            # A bare struct/union/enum definition.
            self.types.type_of(decl.type)
            return
        ctype = self.types.type_of(decl.type)
        if isinstance(ctype, FunctionType):
            self._declare_function_symbol(decl.name, ctype)
            return
        storage = set(decl.storage or ())
        existing = self.symbols.lookup(decl.name)
        if existing is not None and existing.kind is SymbolKind.VARIABLE \
                and existing.is_global:
            symbol = existing
            if isinstance(ctype, ArrayType) and ctype.length is not None:
                symbol.ctype = ctype  # complete a tentative array type
        else:
            symbol = Symbol(decl.name, ctype, SymbolKind.VARIABLE,
                            is_global=True,
                            storage="static" if "static" in storage
                            else "extern" if "extern" in storage else "")
            symbol = self.symbols.define(symbol, allow_redeclare=True)
        binding = self.bindings.get(symbol)
        if binding is None:
            loc = None
            if self.linkage is not None and symbol.storage != "static":
                # External linkage: one location per name program-wide.
                loc = self.linkage.global_locations.get(symbol.name)
                if loc is None:
                    loc = self.program.register_location(
                        global_location(symbol.name, ctype))
                    self.linkage.global_locations[symbol.name] = loc
            if loc is None:
                loc = self.program.register_location(
                    global_location(symbol.name, ctype))
            binding = MemoryBinding(symbol, loc)
            self.bindings[symbol] = binding
        if decl.init is not None:
            if self.linkage is not None and symbol.storage != "static":
                if symbol.name in self.linkage.initialized_globals:
                    raise TypeError_(
                        f"multiple initializations of global "
                        f"{symbol.name!r} across translation units",
                        line=_line(decl))
                self.linkage.initialized_globals.add(symbol.name)
            self._static_initializer(
                location_path(binding.location), symbol.ctype, decl.init)

    # -- static initializers -------------------------------------------------------

    def _static_initializer(self, path: AccessPath, ctype: CType,
                            init) -> None:
        """Record the points-to pairs a static initializer establishes."""
        ctype = self._resolved(ctype)
        if isinstance(init, c_ast.InitList):
            if isinstance(ctype, ArrayType):
                element_path = path.extend(INDEX)
                for expr in init.exprs:
                    if isinstance(expr, c_ast.NamedInitializer):
                        expr = expr.expr
                    self._static_initializer(element_path, ctype.element,
                                             expr)
                return
            if isinstance(ctype, RecordType):
                members = ctype.members
                index = 0
                for expr in init.exprs:
                    if isinstance(expr, c_ast.NamedInitializer):
                        member = expr.name[0].name
                        self._static_initializer(
                            path.extend(ctype.field_op(member)),
                            ctype.member_type(member), expr.expr)
                        index = next(
                            (i + 1 for i, (m, _) in enumerate(members)
                             if m == member), index)
                        continue
                    if index >= len(members):
                        raise TypeError_("too many initializers",
                                         line=_line(expr))
                    member, mtype = members[index]
                    self._static_initializer(
                        path.extend(ctype.field_op(member)), mtype, expr)
                    index += 1
                return
            if init.exprs:  # scalar in braces
                self._static_initializer(path, ctype, init.exprs[0])
            return

        target = decay(ctype)
        if isinstance(ctype, ArrayType):
            # char arr[] = "text": character data, no pointer pairs.
            if isinstance(init, c_ast.Constant) and init.type == "string":
                return
            raise TypeError_("array initializer must be a brace list "
                             "or string literal", line=_line(init))
        if not isinstance(target, PointerType):
            return  # arithmetic data establishes no points-to pairs
        referent = self._static_address(init)
        if referent is not None:
            self.program.seed_store([make_pair(path, referent)])

    def _static_address(self, expr) -> Optional[AccessPath]:
        """Evaluate an address constant; None means the null pointer or
        an arithmetic constant (no pair)."""
        if isinstance(expr, c_ast.Cast):
            return self._static_address(expr.expr)
        if isinstance(expr, c_ast.Constant):
            if expr.type == "string":
                return self._string_storage(expr.value)
            if int_literal(expr.value) == 0:
                return None
            raise UnsupportedFeatureError(
                "non-zero integer used as a static pointer initializer "
                "(pointer/non-pointer casts are not modeled, paper §2)",
                line=_line(expr))
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "&":
            return self._static_lvalue_path(expr.expr)
        if isinstance(expr, c_ast.ID):
            symbol = self.symbols.require(expr.name, _line(expr))
            if symbol.kind is SymbolKind.FUNCTION:
                return location_path(self._function_storage(symbol))
            if isinstance(self._resolved(symbol.ctype), ArrayType):
                path = self._global_path(symbol, expr)
                return path.extend(INDEX)
            raise UnsupportedFeatureError(
                f"cannot evaluate static initializer {expr.name!r}",
                line=_line(expr))
        raise UnsupportedFeatureError(
            f"unsupported static initializer {type(expr).__name__}",
            line=_line(expr))

    def _function_storage(self, symbol) -> BaseLocation:
        """The (unique) location naming a function's code.

        Static initializers are evaluated while declarations are still
        being collected, so a reference to a function defined further
        down the file must create the location eagerly —
        ``_declare_function_def`` finds and reuses it.
        """
        name = symbol.link_name or symbol.name
        loc = self.program.function_locations.get(name)
        if loc is None:
            loc = self.program.register_location(function_location(name))
            self.program.function_locations[name] = loc
        return loc

    def _static_lvalue_path(self, expr) -> AccessPath:
        if isinstance(expr, c_ast.ID):
            symbol = self.symbols.require(expr.name, _line(expr))
            if symbol.kind is SymbolKind.FUNCTION:
                return location_path(self._function_storage(symbol))
            return self._global_path(symbol, expr)
        if isinstance(expr, c_ast.StructRef) and expr.type == ".":
            base = self._static_lvalue_path(expr.name)
            record = self._record_of_path_target(base)
            return base.extend(record.field_op(expr.field.name))
        if isinstance(expr, c_ast.ArrayRef):
            base = self._static_lvalue_path(expr.name)
            return base.extend(INDEX)
        raise UnsupportedFeatureError(
            f"unsupported static address {type(expr).__name__}",
            line=_line(expr))

    def _record_of_path_target(self, path: AccessPath) -> RecordType:
        """The record type at the end of a statically built path."""
        ctype = self._resolved(path.base.ctype)
        for op in path.ops:
            ctype = self._resolved(ctype)
            if op.is_index:
                if not isinstance(ctype, ArrayType):
                    raise TypeError_(f"index into non-array along {path!r}")
                ctype = ctype.element
            else:
                if not isinstance(ctype, RecordType):
                    raise TypeError_(f"member of non-record along {path!r}")
                ctype = ctype.member_type(op.name)
        ctype = self._resolved(ctype)
        if not isinstance(ctype, RecordType):
            raise TypeError_(f"{path!r} does not name a record")
        return ctype

    def _global_path(self, symbol: Symbol, where) -> AccessPath:
        binding = self.bindings.get(symbol)
        if not isinstance(binding, MemoryBinding):
            raise LoweringError(
                f"global {symbol.name!r} has no storage", line=_line(where))
        return location_path(binding.location)

    def _resolved(self, ctype) -> CType:
        return ctype if ctype is not None else INT

    # -- shared helpers used by function lowering ---------------------------------------

    def _string_storage(self, literal: str) -> AccessPath:
        """A base-location for one string literal; the usable value is a
        pointer to its (char) elements."""
        label = f"<str{next(self._string_counter)}>"
        text = decode_string_literal(literal)
        loc = string_location(label)
        loc.ctype = ArrayType(CHAR, len(text) + 1)
        self.program.register_location(loc)
        return location_path(loc).extend(INDEX)

    def heap_site(self, call_node, function: str, callee: str) -> BaseLocation:
        """The per-call-site heap base-location (paper §2: one per
        static invocation site of memory-allocating library code)."""
        key = id(call_node)
        loc = self._heap_sites.get(key)
        if loc is None:
            line = _line(call_node)
            label = f"<heap:{callee}@{function}:{line or next(self._heap_counter)}>"
            loc = heap_location(label)
            self.program.register_location(loc)
            self._heap_sites[key] = loc
        return loc

    def warn(self, message: str, node=None) -> None:
        line = _line(node) if node is not None else None
        where = f" (line {line})" if line else ""
        full = f"{message}{where}"
        if self.extern_policy == "error":
            raise UnsupportedFeatureError(full)
        self.warnings.append(full)

    # -- roots and environment synthesis ---------------------------------------------------

    def _select_roots(self) -> None:
        if self.roots is None:
            self.roots = ["main"] if "main" in self.program.functions \
                else sorted(self.program.functions)[:1]
        for root in self.roots:
            self.program.add_root(root)

    def _synthesize_environments(self) -> None:
        """Give each root's pointer formals something to point at.

        ``main(int argc, char **argv)`` receives pointers into storage
        the program never allocates; we synthesize a chain of summary
        locations per pointer level (argv → argv[] → argv[][]) so the
        analysis sees the same shape the runtime provides.
        """
        for root in self.program.roots:
            graph = self.program.functions[root]
            funcdef = self.func_defs.get(root)
            if funcdef is None:
                continue
            symbol = self.func_symbols.get(root)
            if symbol is None:
                continue
            ftype = symbol.ctype
            if not isinstance(ftype, FunctionType):
                continue
            for index, ptype in enumerate(ftype.params):
                formal = graph.corresponding_formal(index)
                if formal is None or not isinstance(ptype, PointerType):
                    continue
                referent = self._environment_chain(root, index, ptype)
                self.program.seed_value(formal, direct(referent))

    def _environment_chain(self, root: str, index: int,
                           ptype: PointerType) -> AccessPath:
        """Build env locations for one pointer formal, seeding the
        initial store for each extra level of indirection."""
        level = 0
        current = ptype
        label = f"<env:{root}:arg{index}:l{level}>"
        loc = BaseLocation(LocationKind.GLOBAL, label, multi_instance=True,
                           ctype=ArrayType(current.pointee))
        self.program.register_location(loc)
        referent = location_path(loc).extend(INDEX)
        result = referent
        while isinstance(self._resolved(current.pointee), PointerType):
            current = self._resolved(current.pointee)
            level += 1
            label = f"<env:{root}:arg{index}:l{level}>"
            inner = BaseLocation(LocationKind.GLOBAL, label,
                                 multi_instance=True,
                                 ctype=ArrayType(current.pointee))
            self.program.register_location(inner)
            inner_ref = location_path(inner).extend(INDEX)
            self.program.seed_store([make_pair(referent, inner_ref)])
            referent = inner_ref
        return result


# ---------------------------------------------------------------------------
# Per-function lowering
# ---------------------------------------------------------------------------


class _LoopContext:
    __slots__ = ("breaks", "continues")

    def __init__(self) -> None:
        self.breaks: List[tuple] = []
        self.continues: List[tuple] = []


class _SwitchContext:
    __slots__ = ("entry", "breaks", "has_default")

    def __init__(self, entry: tuple) -> None:
        self.entry = entry
        self.breaks: List[tuple] = []
        self.has_default = False


class FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, module: ModuleLowerer, name: str,
                 funcdef: c_ast.FuncDef) -> None:
        self.module = module
        self.name = name  # program name
        self.source_name = module.func_source_names.get(name, name)
        self.funcdef = funcdef
        self.types = module.types
        self.symbols = module.symbols
        self.program = module.program
        self.graph = module.program.functions[name]
        self.builder = GraphBuilder(self.graph)
        if module.hazard is not None:
            self.builder.null_path = \
                location_path(module.hazard["null"])
        self.graph.recursive = (
            self.source_name in module.prepass.recursive
            or name in module.linked_recursive)

        self.env: Dict[Symbol, OutputPort] = {}
        self.store: Optional[OutputPort] = None
        self.terminated = False
        self.returns: List[Tuple[Optional[OutputPort], OutputPort]] = []
        self.loop_stack: List[_LoopContext] = []
        self.switch_stack: List[_SwitchContext] = []
        #: Innermost break target (loops and switches interleaved).
        self.break_stack: List[Union[_LoopContext, _SwitchContext]] = []
        self._scope_symbols: List[List[Symbol]] = []
        self._addr_cache: Dict[int, OutputPort] = {}
        self.ftype: FunctionType = \
            module.func_symbols[self.source_name].ctype

    # -- driver --------------------------------------------------------------

    def run(self) -> None:
        if self.funcdef.param_decls:
            raise UnsupportedFeatureError(
                "K&R-style parameter declarations are not supported",
                line=_line(self.funcdef))
        self.symbols.push()
        self._scope_symbols.append([])
        try:
            self._prologue()
            if self.funcdef.body is not None:
                self.lower_statement(self.funcdef.body)
            self._epilogue()
        finally:
            self._pop_scope()
        self._count_source_lines()

    def _count_source_lines(self) -> None:
        body = self.funcdef.body
        start = _line(self.funcdef.decl)
        end = start
        if body is not None:

            class _Max(c_ast.NodeVisitor):
                value = start or 0

                def generic_visit(inner, node):  # noqa: N805
                    line = _line(node)
                    if line is not None and line > inner.value:
                        inner.value = line
                    for _, child in node.children():
                        inner.visit(child)

            scanner = _Max()
            scanner.visit(body)
            end = scanner.value
        if start is not None and end is not None:
            self.graph.source_lines = max(1, end - start + 1)

    # -- prologue / epilogue -----------------------------------------------------

    def _prologue(self) -> None:
        self.builder.set_origin(_origin(self.funcdef.decl))
        param_names = self._param_names()
        specs = []
        for pname, ptype in zip(param_names, self.ftype.params):
            tag = ptype.value_tag()
            specs.append((pname or f"arg{len(specs)}", tag,
                          ptype.contains_pointers()
                          if tag is ValueTag.AGGREGATE else None))
        entry = self.builder.entry(specs)
        self.store = entry.store_out
        for index, (pname, ptype) in enumerate(
                zip(param_names, self.ftype.params)):
            if pname is None:
                continue
            symbol = Symbol(pname, ptype, SymbolKind.VARIABLE)
            self.symbols.define(symbol)
            self._scope_symbols[-1].append(symbol)
            formal = entry.formals[index]
            if self._needs_memory(symbol):
                loc = param_location(
                    pname, self.name, recursive=self.graph.recursive,
                    ctype=ptype)
                self.program.register_location(loc)
                self.module.bindings[symbol] = MemoryBinding(symbol, loc)
                addr = self._location_addr(loc)
                self.store = self.builder.update(addr, self.store, formal)
            else:
                self.module.bindings[symbol] = RegisterBinding(symbol)
                self.env[symbol] = formal

    def _param_names(self) -> List[Optional[str]]:
        decl_type = self.funcdef.decl.type
        if isinstance(decl_type, c_ast.FuncDecl):
            return self.types.param_names(decl_type)
        return []

    def _epilogue(self) -> None:
        if not self.terminated:
            if self.ftype.return_type.is_void:
                self.returns.append((None, self.store))
            else:
                self.returns.append(
                    (self.builder.undef(self.ftype.return_type.value_tag()),
                     self.store))
        if not self.returns:
            # Every path ended in an infinite loop: return is unreachable
            # but the graph still needs its return node for structure.
            header = self.builder.loop_header(
                self.graph.store_formal, tag=ValueTag.STORE)
            self.returns.append(
                (None if self.ftype.return_type.is_void
                 else self.builder.undef(self.ftype.return_type.value_tag()),
                 header.out))
        values = [v for v, _ in self.returns if v is not None]
        stores = [s for _, s in self.returns]
        store = self.builder.merge(stores, tag=ValueTag.STORE)
        if self.ftype.return_type.is_void or not values:
            self.builder.ret(None, store)
        else:
            tag, carries = unify_tags(values)
            value = self.builder.merge(values, tag=tag,
                                       carries_pointers=carries)
            self.builder.ret(value, store)

    # -- storage decisions -----------------------------------------------------------

    def _needs_memory(self, symbol: Symbol) -> bool:
        if not self.module.sparse:
            return True  # dense (CFG-style) mode: everything in store
        ctype = symbol.ctype
        if isinstance(ctype, (ArrayType, RecordType)):
            return True
        if symbol.storage == "static":
            return True
        return self.module.prepass.is_address_taken(self.source_name,
                                                    symbol.name)

    def _location_addr(self, loc: BaseLocation) -> OutputPort:
        """One address node per base-location per function (sparse)."""
        port = self._addr_cache.get(id(loc))
        if port is None:
            port = self.builder.address(location_path(loc))
            self._addr_cache[id(loc)] = port
        return port

    # -- state snapshots / joins ---------------------------------------------------------

    def _snapshot(self) -> tuple:
        return (dict(self.env), self.store, self.terminated)

    def _restore(self, snap: tuple) -> None:
        env, store, terminated = snap
        self.env = dict(env)
        self.store = store
        self.terminated = terminated

    def _live_states(self, snaps: List[tuple]) -> List[tuple]:
        return [s for s in snaps if not s[2]]

    def _join(self, snaps: List[tuple],
              pred: Optional[OutputPort] = None) -> None:
        """Install the merge of the given control-flow states."""
        live = self._live_states(snaps)
        if not live:
            self.terminated = True
            return
        self.terminated = False
        base_env = live[0][0]
        merged_env: Dict[Symbol, OutputPort] = {}
        for symbol in base_env:
            ports = [env[symbol] for env, _, _ in live if symbol in env]
            if len(ports) != len(live):
                continue  # declared on one path only: out of scope now
            if all(p is ports[0] for p in ports):
                merged_env[symbol] = ports[0]
            else:
                merged_env[symbol] = self.builder.merge(ports, pred=pred)
                pred = None  # attach the predicate to one merge only
        stores = [store for _, store, _ in live]
        if all(s is stores[0] for s in stores):
            merged_store = stores[0]
        else:
            merged_store = self.builder.merge(stores, tag=ValueTag.STORE,
                                              pred=pred)
        self.env = merged_env
        self.store = merged_store

    # -- scopes ---------------------------------------------------------------------------

    def _push_scope(self) -> None:
        self.symbols.push()
        self._scope_symbols.append([])

    def _pop_scope(self) -> None:
        for symbol in self._scope_symbols.pop():
            self.env.pop(symbol, None)
        self.symbols.pop()

    # ======================================================================
    # statements
    # ======================================================================

    def lower_statement(self, node) -> None:
        # Case/default labels make dead code reachable again (a switch
        # jumps straight to them); everything else after a terminator
        # is skipped (the paper's dead-code removal).
        if self.terminated and not self._has_label(node):
            return
        self.builder.set_origin(_origin(node))
        if isinstance(node, c_ast.Compound):
            self._push_scope()
            try:
                for item in node.block_items or ():
                    if self.terminated and not self._has_label(item):
                        continue
                    self.lower_statement(item)
            finally:
                self._pop_scope()
        elif isinstance(node, c_ast.Decl):
            self._lower_local_decl(node)
        elif isinstance(node, c_ast.DeclList):
            for decl in node.decls:
                self._lower_local_decl(decl)
        elif isinstance(node, c_ast.Typedef):
            self.types.register_typedef(node)
        elif isinstance(node, c_ast.If):
            self._lower_if(node)
        elif isinstance(node, c_ast.While):
            self._lower_while(node)
        elif isinstance(node, c_ast.DoWhile):
            self._lower_dowhile(node)
        elif isinstance(node, c_ast.For):
            self._lower_for(node)
        elif isinstance(node, c_ast.Return):
            self._lower_return(node)
        elif isinstance(node, c_ast.Break):
            self._lower_break(node)
        elif isinstance(node, c_ast.Continue):
            self._lower_continue(node)
        elif isinstance(node, c_ast.Switch):
            self._lower_switch(node)
        elif isinstance(node, (c_ast.Case, c_ast.Default)):
            self._lower_case(node)
        elif isinstance(node, (c_ast.EmptyStatement, c_ast.Pragma)):
            pass
        elif isinstance(node, (c_ast.Goto, c_ast.Label)):
            raise UnsupportedFeatureError(
                "goto/labels are not supported by the structured VDG "
                "construction", line=_line(node))
        else:
            self.lower_expression(node)  # expression statement

    def _has_label(self, node) -> bool:
        """Case/default labels make statements reachable again even
        after a break/return; anything else stays dead."""
        return isinstance(node, (c_ast.Case, c_ast.Default))

    # -- declarations -------------------------------------------------------------

    def _lower_local_decl(self, decl: c_ast.Decl) -> None:
        if decl.name is None:
            self.types.type_of(decl.type)  # struct/union/enum definition
            return
        ctype = self.types.type_of(decl.type)
        if isinstance(ctype, FunctionType):
            self.module._declare_function_symbol(decl.name, ctype)
            return
        storage = set(decl.storage or ())
        symbol = Symbol(decl.name, ctype, SymbolKind.VARIABLE,
                        storage="static" if "static" in storage
                        else "extern" if "extern" in storage else "")
        self.symbols.define(symbol)
        self._scope_symbols[-1].append(symbol)

        if symbol.storage == "extern":
            loc = self.program.register_location(
                global_location(symbol.name, ctype))
            self.module.bindings[symbol] = MemoryBinding(symbol, loc)
            return
        if symbol.storage == "static":
            loc = BaseLocation(LocationKind.GLOBAL,
                               f"{self.name}.{symbol.name}",
                               ctype=ctype, procedure=self.name)
            self.program.register_location(loc)
            self.module.bindings[symbol] = MemoryBinding(symbol, loc)
            if decl.init is not None:
                self.module._static_initializer(
                    location_path(loc), ctype, decl.init)
            return
        if self._needs_memory(symbol):
            loc = local_location(symbol.name, self.name,
                                 recursive=self.graph.recursive, ctype=ctype)
            self.program.register_location(loc)
            self.module.bindings[symbol] = MemoryBinding(symbol, loc)
            if decl.init is not None:
                self._lower_initializer(
                    MemoryLValue(self._location_addr(loc), ctype), decl.init)
            elif self.module.hazard is not None:
                self._seed_uninit_cells(location_path(loc), ctype)
        else:
            self.module.bindings[symbol] = RegisterBinding(symbol)
            if decl.init is not None:
                value, vtype = self._rvalue(decl.init)
                self._check_pointer_assignment(ctype, vtype, decl.init)
                self.env[symbol] = self._coerce_value(value, ctype)
            else:
                # Every in-scope register variable keeps an environment
                # entry, so loop headers cover it even when the first
                # assignment happens inside the loop body.
                tag = ctype.value_tag()
                if self.module.hazard is not None \
                        and tag in (ValueTag.POINTER, ValueTag.FUNCTION):
                    # Hazard model: an uninitialized pointer-valued
                    # register variable points at <uninit> until the
                    # first assignment rebinds it.
                    self.env[symbol] = self.builder.address(
                        location_path(self.module.hazard["uninit"]), tag)
                else:
                    self.env[symbol] = self.builder.undef(tag)

    def _seed_uninit_cells(self, path: AccessPath, ctype: CType) -> None:
        """Hazard model: seed ``cell → <uninit>`` on the entry store for
        every pointer-valued leaf of an uninitialized local.

        The seed is unconditional per activation (each frame starts
        with undefined locals); a later strong update of the cell kills
        the marker, so only maybe-uninitialized reads still see it.
        """
        if isinstance(ctype, PointerType) or isinstance(ctype, FunctionType):
            uninit = location_path(self.module.hazard["uninit"])
            self.program.seed_value(self.graph.store_formal,
                                    make_pair(path, uninit))
            return
        if isinstance(ctype, ArrayType):
            self._seed_uninit_cells(path.extend(INDEX), ctype.element)
            return
        if isinstance(ctype, RecordType) and ctype.is_complete:
            for member, mtype in ctype.members:
                self._seed_uninit_cells(path.extend(ctype.field_op(member)),
                                        mtype)

    def _lower_initializer(self, lvalue: MemoryLValue, init) -> None:
        """Runtime initialization of a store-resident local."""
        ctype = lvalue.ctype
        if isinstance(init, c_ast.InitList):
            if isinstance(ctype, ArrayType):
                element_addr = self._index_addr(lvalue.addr)
                for expr in init.exprs:
                    if isinstance(expr, c_ast.NamedInitializer):
                        expr = expr.expr
                    self._lower_initializer(
                        MemoryLValue(element_addr, ctype.element), expr)
                return
            if isinstance(ctype, RecordType):
                members = ctype.members
                index = 0
                for expr in init.exprs:
                    if isinstance(expr, c_ast.NamedInitializer):
                        member = expr.name[0].name
                        mtype = ctype.member_type(member)
                        addr = self._field_addr(lvalue.addr,
                                                ctype.field_op(member))
                        self._lower_initializer(MemoryLValue(addr, mtype),
                                                expr.expr)
                        continue
                    if index >= len(members):
                        raise TypeError_("too many initializers",
                                         line=_line(expr))
                    member, mtype = members[index]
                    addr = self._field_addr(lvalue.addr,
                                            ctype.field_op(member))
                    self._lower_initializer(MemoryLValue(addr, mtype), expr)
                    index += 1
                return
            if init.exprs:
                self._lower_initializer(
                    MemoryLValue(lvalue.addr, ctype), init.exprs[0])
            return
        if isinstance(ctype, ArrayType):
            if isinstance(init, c_ast.Constant) and init.type == "string":
                # Character copy: a memory write with no pointer pairs.
                element_addr = self._index_addr(lvalue.addr)
                value = self.builder.const(decode_string_literal(init.value))
                self.store = self.builder.update(element_addr, self.store,
                                                 value)
                return
            raise TypeError_("array initializer must be a brace list or "
                             "string literal", line=_line(init))
        value, vtype = self._rvalue(init)
        self._check_pointer_assignment(ctype, vtype, init)
        self.store = self.builder.update(lvalue.addr, self.store, value)

    # -- control flow -----------------------------------------------------------------

    def _control(self, pred: OutputPort) -> OutputPort:
        """Register a value as steering control flow (a γ/μ predicate
        in VDG terms), anchoring its computation's liveness."""
        self.graph.add_control_use(pred)
        return pred

    def _lower_if(self, node: c_ast.If) -> None:
        pred, _ = self._rvalue(node.cond)
        self._control(pred)
        entry = self._snapshot()
        if node.iftrue is not None:
            self.lower_statement(node.iftrue)
        then_state = self._snapshot()
        self._restore(entry)
        if node.iffalse is not None:
            self.lower_statement(node.iffalse)
        else_state = self._snapshot()
        self._join([then_state, else_state], pred=pred)

    def _open_loop_headers(self) -> Dict[object, MergeNode]:
        headers: Dict[object, MergeNode] = {}
        for symbol, value in list(self.env.items()):
            header = self.builder.loop_header(value)
            headers[symbol] = header
            self.env[symbol] = header.out
        store_header = self.builder.loop_header(self.store,
                                                tag=ValueTag.STORE)
        headers["<store>"] = store_header
        self.store = store_header.out
        return headers

    def _close_loop_headers(self, headers: Dict[object, MergeNode],
                            back_states: List[tuple]) -> None:
        live = self._live_states(back_states)
        if not live:
            return  # back edge unreachable; headers stay trivial
        saved = self._snapshot()
        self._join(live)
        for key, header in headers.items():
            if key == "<store>":
                self.builder.close_loop(header, self.store)
            elif key in self.env:
                self.builder.close_loop(header, self.env[key])
        self._restore(saved)

    def _lower_while(self, node: c_ast.While) -> None:
        headers = self._open_loop_headers()
        if node.cond is not None:
            cond, _ = self._rvalue(node.cond)
            self._control(cond)
        cond_state = self._snapshot()
        context = _LoopContext()
        self.loop_stack.append(context)
        self.break_stack.append(context)
        try:
            if node.stmt is not None:
                self.lower_statement(node.stmt)
        finally:
            self.loop_stack.pop()
            self.break_stack.pop()
        back_states = [self._snapshot()] + context.continues
        self._close_loop_headers(headers, back_states)
        exits = [cond_state] + context.breaks
        if node.cond is None:
            exits = context.breaks  # no condition: only break exits
        self._join(exits)

    def _lower_dowhile(self, node: c_ast.DoWhile) -> None:
        headers = self._open_loop_headers()
        context = _LoopContext()
        self.loop_stack.append(context)
        self.break_stack.append(context)
        try:
            if node.stmt is not None:
                self.lower_statement(node.stmt)
        finally:
            self.loop_stack.pop()
            self.break_stack.pop()
        # continue jumps to the condition test.
        self._join([self._snapshot()] + context.continues)
        if not self.terminated and node.cond is not None:
            cond, _ = self._rvalue(node.cond)
            self._control(cond)
        cond_state = self._snapshot()
        self._close_loop_headers(headers, [cond_state])
        self._join([cond_state] + context.breaks)

    def _lower_for(self, node: c_ast.For) -> None:
        self._push_scope()
        try:
            if node.init is not None:
                self.lower_statement(node.init)
            headers = self._open_loop_headers()
            if node.cond is not None:
                cond, _ = self._rvalue(node.cond)
                self._control(cond)
            cond_state = self._snapshot()
            context = _LoopContext()
            self.loop_stack.append(context)
            self.break_stack.append(context)
            try:
                if node.stmt is not None:
                    self.lower_statement(node.stmt)
            finally:
                self.loop_stack.pop()
                self.break_stack.pop()
            # continue jumps to the step expression.
            self._join([self._snapshot()] + context.continues)
            if not self.terminated and node.next is not None:
                self.lower_expression(node.next)
            self._close_loop_headers(headers, [self._snapshot()])
            exits = [cond_state] + context.breaks
            if node.cond is None:
                exits = context.breaks
            self._join(exits)
        finally:
            self._pop_scope()

    def _lower_return(self, node: c_ast.Return) -> None:
        value = None
        if node.expr is not None:
            value, vtype = self._rvalue(node.expr)
            self._check_pointer_assignment(self.ftype.return_type, vtype,
                                           node.expr)
        elif not self.ftype.return_type.is_void:
            value = self.builder.undef(self.ftype.return_type.value_tag())
        self.returns.append((value, self.store))
        self.terminated = True

    def _lower_break(self, node: c_ast.Break) -> None:
        if not self.break_stack:
            raise LoweringError("break outside loop or switch",
                                line=_line(node))
        self.break_stack[-1].breaks.append(self._snapshot())
        self.terminated = True

    def _lower_continue(self, node: c_ast.Continue) -> None:
        if not self.loop_stack:
            raise LoweringError("continue outside loop", line=_line(node))
        self.loop_stack[-1].continues.append(self._snapshot())
        self.terminated = True

    def _lower_switch(self, node: c_ast.Switch) -> None:
        scrutinee, _ = self._rvalue(node.cond)
        self._control(scrutinee)
        context = _SwitchContext(self._snapshot())
        self.switch_stack.append(context)
        self.break_stack.append(context)
        self.terminated = True  # nothing runs before the first label
        try:
            body = node.stmt
            if isinstance(body, c_ast.Compound):
                # Iterate directly: the body itself is "dead" until a
                # case label resurrects reachability.
                self._push_scope()
                try:
                    for item in body.block_items or ():
                        self.lower_statement(item)
                finally:
                    self._pop_scope()
            elif body is not None:
                self.lower_statement(body)
        finally:
            self.switch_stack.pop()
            self.break_stack.pop()
        final = self._snapshot()
        exits = context.breaks + [final]
        if not context.has_default:
            exits.append(context.entry)
        self._join(exits)

    def _lower_case(self, node) -> None:
        if not self.switch_stack:
            raise LoweringError("case label outside switch", line=_line(node))
        context = self.switch_stack[-1]
        if isinstance(node, c_ast.Default):
            context.has_default = True
        else:
            self.types.const_eval(node.expr)  # validate the label
        fallthrough = self._snapshot()
        self._join([context.entry, fallthrough])
        for stmt in node.stmts or ():
            self.lower_statement(stmt)

    # ======================================================================
    # expressions
    # ======================================================================

    def lower_expression(self, node) -> Tuple[OutputPort, CType]:
        return self._rvalue(node)

    # -- l-values -----------------------------------------------------------------

    def _lvalue(self, node) -> LValue:
        if isinstance(node, c_ast.ID):
            symbol = self.symbols.require(node.name, _line(node))
            if symbol.kind is not SymbolKind.VARIABLE:
                raise TypeError_(f"{node.name!r} is not assignable",
                                 line=_line(node))
            binding = self.module.bindings.get(symbol)
            if isinstance(binding, MemoryBinding):
                return MemoryLValue(self._location_addr(binding.location),
                                    symbol.ctype)
            if isinstance(binding, RegisterBinding):
                return RegisterLValue(symbol)
            raise LoweringError(f"{node.name!r} has no binding",
                                line=_line(node))
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            value, vtype = self._rvalue(node.expr)
            vtype = decay(vtype)
            if not isinstance(vtype, PointerType):
                raise TypeError_("dereference of non-pointer",
                                 line=_line(node))
            return MemoryLValue(value, vtype.pointee)
        if isinstance(node, c_ast.ArrayRef):
            return self._array_lvalue(node)
        if isinstance(node, c_ast.StructRef):
            return self._member_lvalue(node)
        if isinstance(node, c_ast.Cast):
            inner = self._lvalue(node.expr)
            inner.ctype = self.types.type_of(node.to_type)
            return inner
        raise TypeError_(f"not an l-value: {type(node).__name__}",
                         line=_line(node))

    def _array_lvalue(self, node: c_ast.ArrayRef) -> MemoryLValue:
        base, index = node.name, node.subscript
        base_hint = self._expression_type_hint(base)
        index_hint = self._expression_type_hint(index)
        base_is_ptr = base_hint is not None and isinstance(
            decay(base_hint), PointerType)
        index_is_ptr = index_hint is not None and isinstance(
            decay(index_hint), PointerType)
        if not base_is_ptr and index_is_ptr:
            base, index = index, base  # the i[arr] spelling
        element_addr, element_type = self._element_address(base, index)
        return MemoryLValue(element_addr, element_type)

    def _element_address(self, base, index) -> Tuple[OutputPort, CType]:
        base_type = self._expression_type_hint(base)
        if isinstance(base_type, ArrayType):
            lvalue = self._lvalue(base)
            if not isinstance(lvalue, MemoryLValue):
                raise LoweringError("array value not in memory",
                                    line=_line(base))
            element_addr = self._index_addr(lvalue.addr)
            index_value, _ = self._rvalue(index)
            element_addr = self._ptradd(element_addr, index_value)
            return element_addr, base_type.element
        value, vtype = self._rvalue(base)
        vtype = decay(vtype)
        if not isinstance(vtype, PointerType):
            raise TypeError_("subscript of non-pointer", line=_line(base))
        index_value, _ = self._rvalue(index)
        return self._ptradd(value, index_value), vtype.pointee

    def _member_lvalue(self, node: c_ast.StructRef) -> MemoryLValue:
        field = node.field.name
        if node.type == "->":
            value, vtype = self._rvalue(node.name)
            vtype = decay(vtype)
            if not isinstance(vtype, PointerType) or not isinstance(
                    self._strip(vtype.pointee), RecordType):
                raise TypeError_("-> applied to non-record-pointer",
                                 line=_line(node))
            record = self._strip(vtype.pointee)
            addr = self._field_addr(value, record.field_op(field))
            return MemoryLValue(addr, record.member_type(field))
        lvalue = self._lvalue(node.name)
        record = self._strip(lvalue.ctype)
        if not isinstance(record, RecordType):
            raise TypeError_(". applied to non-record", line=_line(node))
        if not isinstance(lvalue, MemoryLValue):
            raise LoweringError("record value not in memory",
                                line=_line(node))
        addr = self._field_addr(lvalue.addr, record.field_op(field))
        return MemoryLValue(addr, record.member_type(field))

    def _strip(self, ctype: CType) -> CType:
        return ctype

    # -- address-arithmetic helpers with constant folding ----------------------------

    def _field_addr(self, ptr: OutputPort, field_op) -> OutputPort:
        if isinstance(ptr.node, AddressNode):
            return self.builder.address(ptr.node.path.extend(field_op))
        return self.builder.field_addr(ptr, field_op)

    def _index_addr(self, ptr: OutputPort) -> OutputPort:
        if isinstance(ptr.node, AddressNode):
            return self.builder.address(ptr.node.path.extend(INDEX))
        return self.builder.index_addr(ptr)

    def _ptradd(self, ptr: OutputPort, offset: OutputPort) -> OutputPort:
        # Arithmetic on a constant address stays within the (summary)
        # array: the address itself is unchanged.
        if isinstance(ptr.node, AddressNode):
            return ptr
        return self.builder.ptradd(ptr, offset)

    # -- reads and writes --------------------------------------------------------------

    def _read(self, lvalue: LValue, where=None) -> Tuple[OutputPort, CType]:
        if isinstance(lvalue, RegisterLValue):
            port = self.env.get(lvalue.symbol)
            if port is None:
                port = self.builder.undef(lvalue.ctype.value_tag())
                self.env[lvalue.symbol] = port
            return port, lvalue.ctype
        assert isinstance(lvalue, MemoryLValue)
        ctype = lvalue.ctype
        if isinstance(ctype, ArrayType):
            return self._index_addr(lvalue.addr), ctype.decayed()
        if isinstance(ctype, FunctionType):
            return lvalue.addr, pointer_to(ctype)
        tag = ctype.value_tag()
        port = self.builder.lookup(
            lvalue.addr, self.store, tag,
            ctype.contains_pointers() if tag is ValueTag.AGGREGATE else None)
        return port, ctype

    def _coerce_value(self, value: OutputPort, target: CType) -> OutputPort:
        """Retag a null constant flowing into a pointer variable so the
        SSA environment (and any loop-header merges seeded from it)
        carries the pointer tag.  Reaching here with a scalar-tagged
        value implies a null constant: _check_pointer_assignment has
        already rejected every other arithmetic-to-pointer flow."""
        target = decay(target)
        if isinstance(target, PointerType) and \
                value.tag is ValueTag.SCALAR:
            tag = target.value_tag()
            if self.builder.null_path is not None:
                return self.builder.address(self.builder.null_path, tag)
            return self.builder.const(0, tag)
        return value

    def _write(self, lvalue: LValue, value: OutputPort, vtype: CType,
               where=None) -> None:
        self._check_pointer_assignment(lvalue.ctype, vtype, where)
        if isinstance(lvalue, RegisterLValue):
            self.env[lvalue.symbol] = self._coerce_value(value,
                                                         lvalue.ctype)
            return
        assert isinstance(lvalue, MemoryLValue)
        if self.builder.null_path is not None:
            # Hazard model: a null constant written to memory must carry
            # the <null> pair, or the cell looks merely empty.
            value = self._coerce_value(value, lvalue.ctype)
        self.store = self.builder.update(lvalue.addr, self.store, value)

    def _check_pointer_assignment(self, target: CType, source: CType,
                                  expr) -> None:
        """Reject arithmetic-to-pointer flows other than null constants
        (the paper does not model pointer/non-pointer casts)."""
        target = decay(target)
        if not isinstance(target, PointerType):
            return
        source = decay(source)
        if isinstance(source, (PointerType, FunctionType)):
            return
        if expr is not None and _is_null_constant(expr, self.types):
            return
        if isinstance(source, VoidType):
            return
        raise UnsupportedFeatureError(
            "assignment of a non-pointer value to a pointer (casts "
            "between pointer and non-pointer types are not modeled, "
            "paper §2)", line=_line(expr) if expr is not None else None)

    # -- r-values ----------------------------------------------------------------------

    def _rvalue(self, node) -> Tuple[OutputPort, CType]:
        self.builder.set_origin(_origin(node))
        if isinstance(node, c_ast.Constant):
            return self._lower_constant(node)
        if isinstance(node, c_ast.ID):
            return self._lower_id(node)
        if isinstance(node, c_ast.UnaryOp):
            return self._lower_unary(node)
        if isinstance(node, c_ast.BinaryOp):
            return self._lower_binary(node)
        if isinstance(node, c_ast.Assignment):
            return self._lower_assignment(node)
        if isinstance(node, c_ast.TernaryOp):
            return self._lower_ternary(node)
        if isinstance(node, c_ast.FuncCall):
            return self._lower_call(node)
        if isinstance(node, c_ast.Cast):
            return self._lower_cast(node)
        if isinstance(node, (c_ast.ArrayRef, c_ast.StructRef)):
            return self._lower_access_rvalue(node)
        if isinstance(node, c_ast.ExprList):
            result: Optional[Tuple[OutputPort, CType]] = None
            for expr in node.exprs:
                result = self._rvalue(expr)
            if result is None:
                raise LoweringError("empty expression list",
                                    line=_line(node))
            return result
        if isinstance(node, c_ast.InitList):
            raise UnsupportedFeatureError(
                "compound literals are not supported", line=_line(node))
        raise UnsupportedFeatureError(
            f"unsupported expression {type(node).__name__}",
            line=_line(node))

    def _lower_access_rvalue(self, node) -> Tuple[OutputPort, CType]:
        if isinstance(node, c_ast.StructRef) and node.type == ".":
            # f().member: the base may be an aggregate value with no
            # storage; read through EXTRACT instead of memory.
            base_hint = self._expression_type_hint(node.name)
            if isinstance(base_hint, RecordType) and \
                    not self._is_lvalue_expression(node.name):
                base, btype = self._rvalue(node.name)
                record = self._strip(btype)
                mtype = record.member_type(node.field.name)
                port = self.builder.extract(
                    base, record.field_op(node.field.name),
                    mtype.value_tag(),
                    mtype.contains_pointers()
                    if mtype.value_tag() is ValueTag.AGGREGATE else None)
                return port, mtype
        lvalue = self._lvalue(node)
        return self._read(lvalue, node)

    def _is_lvalue_expression(self, node) -> bool:
        return isinstance(node, (c_ast.ID, c_ast.ArrayRef, c_ast.StructRef)) \
            or (isinstance(node, c_ast.UnaryOp) and node.op == "*")

    def _lower_constant(self, node: c_ast.Constant) -> Tuple[OutputPort, CType]:
        if node.type == "string":
            referent = self.module._string_storage(node.value)
            return self.builder.address(referent), PointerType(CHAR)
        if node.type == "char":
            return self.builder.const(_char_value(node.value)), CHAR
        if node.type in ("float", "double", "long double"):
            return (self.builder.const(float(node.value.rstrip("fFlL"))),
                    FloatType("double"))
        return self.builder.const(int_literal(node.value)), INT

    def _lower_id(self, node: c_ast.ID) -> Tuple[OutputPort, CType]:
        symbol = self.symbols.lookup(node.name)
        if symbol is None:
            if node.name in self.types.enum_constants:
                value = self.types.enum_constants[node.name]
                return self.builder.const(value), INT
            raise TypeError_(f"undeclared identifier {node.name!r}",
                             line=_line(node))
        if symbol.kind is SymbolKind.ENUM_CONSTANT:
            return self.builder.const(symbol.value or 0), INT
        if symbol.kind is SymbolKind.FUNCTION:
            return self._function_value(symbol, node)
        return self._read(self._lvalue(node), node)

    def _function_value(self, symbol: Symbol,
                        node) -> Tuple[OutputPort, CType]:
        link_name = symbol.link_name or symbol.name
        loc = self.program.function_locations.get(link_name)
        if loc is None:
            # Taking the address of an undefined external function.
            self.module.warn(
                f"address of external function {symbol.name!r} taken; "
                f"calls through it resolve to nothing", node)
            loc = function_location(symbol.name)
            self.program.register_location(loc)
            self.program.function_locations[symbol.name] = loc
        port = self.builder.address(location_path(loc), ValueTag.FUNCTION)
        return port, pointer_to(symbol.ctype)

    # -- unary ------------------------------------------------------------------------------

    def _lower_unary(self, node: c_ast.UnaryOp) -> Tuple[OutputPort, CType]:
        op = node.op
        if op == "&":
            return self._lower_address_of(node)
        if op == "*":
            return self._read(self._lvalue(node), node)
        if op == "sizeof":
            if isinstance(node.expr, c_ast.Typename):
                size = self.types.type_of(node.expr).size_of()
            else:
                hint = self._expression_type_hint(node.expr)
                size = hint.size_of() if hint is not None else 8
            return self.builder.const(size), IntType("long", signed=False)
        if op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(node)
        value, vtype = self._rvalue(node.expr)
        if op in ("-", "+", "~"):
            return (self.builder.primop(f"unary{op}", [value]),
                    vtype if vtype.is_scalar_arith else INT)
        if op == "!":
            return self.builder.primop("not", [value]), INT
        raise UnsupportedFeatureError(f"unsupported unary operator {op!r}",
                                      line=_line(node))

    def _lower_address_of(self, node: c_ast.UnaryOp) -> Tuple[OutputPort, CType]:
        target = node.expr
        # &*e is just e; &f is the function value.
        if isinstance(target, c_ast.UnaryOp) and target.op == "*":
            value, vtype = self._rvalue(target.expr)
            return value, decay(vtype)
        if isinstance(target, c_ast.ID):
            symbol = self.symbols.lookup(target.name)
            if symbol is not None and symbol.kind is SymbolKind.FUNCTION:
                return self._function_value(symbol, node)
        lvalue = self._lvalue(target)
        if not isinstance(lvalue, MemoryLValue):
            raise LoweringError(
                f"address taken of register variable "
                f"{getattr(lvalue, 'symbol', '?')!r} (pre-pass missed it)",
                line=_line(node))
        return lvalue.addr, pointer_to(lvalue.ctype)

    def _lower_incdec(self, node: c_ast.UnaryOp) -> Tuple[OutputPort, CType]:
        lvalue = self._lvalue(node.expr)
        old, vtype = self._read(lvalue, node.expr)
        one = self.builder.const(1)
        if isinstance(decay(vtype), PointerType):
            new = self._ptradd(old, one)
            new_type = decay(vtype)
        else:
            op = "add" if node.op in ("++", "p++") else "sub"
            new = self.builder.primop(op, [old, one])
            new_type = vtype
        self._write(lvalue, new, new_type, None)
        if node.op in ("p++", "p--"):
            return old, decay(vtype)
        return new, new_type

    # -- binary -----------------------------------------------------------------------------

    def _lower_binary(self, node: c_ast.BinaryOp) -> Tuple[OutputPort, CType]:
        op = node.op
        if op in ("&&", "||"):
            return self._lower_short_circuit(node)
        left, ltype = self._rvalue(node.left)
        right, rtype = self._rvalue(node.right)
        left_ptr = isinstance(decay(ltype), PointerType)
        right_ptr = isinstance(decay(rtype), PointerType)
        if op == "+" and (left_ptr or right_ptr):
            if left_ptr and right_ptr:
                raise TypeError_("pointer + pointer", line=_line(node))
            ptr, offset = (left, right) if left_ptr else (right, left)
            ptype = decay(ltype) if left_ptr else decay(rtype)
            return self._ptradd(ptr, offset), ptype
        if op == "-" and left_ptr:
            if right_ptr:
                return (self.builder.primop("ptrdiff", [left, right]),
                        IntType("long"))
            return self._ptradd(left, right), decay(ltype)
        tag_type = ltype if ltype.is_scalar_arith else INT
        if op in ("<", ">", "<=", ">=", "==", "!=",):
            return self.builder.primop(f"cmp{op}", [left, right]), INT
        name = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
                "<<": "shl", ">>": "shr", "&": "and", "|": "or",
                "^": "xor"}.get(op)
        if name is None:
            raise UnsupportedFeatureError(
                f"unsupported binary operator {op!r}", line=_line(node))
        return self.builder.primop(name, [left, right]), tag_type

    def _lower_short_circuit(self, node: c_ast.BinaryOp
                             ) -> Tuple[OutputPort, CType]:
        left, _ = self._rvalue(node.left)
        self._control(left)
        before_right = self._snapshot()
        right, _ = self._rvalue(node.right)
        after_right = self._snapshot()
        # The right operand may or may not execute: join the two states.
        self._join([before_right, after_right], pred=left)
        op = "logand" if node.op == "&&" else "logor"
        return self.builder.primop(op, [left, right]), INT

    # -- assignment --------------------------------------------------------------------------

    def _lower_assignment(self, node: c_ast.Assignment
                          ) -> Tuple[OutputPort, CType]:
        lvalue = self._lvalue(node.lvalue)
        if node.op == "=":
            value, vtype = self._rvalue(node.rvalue)
            self._write(lvalue, value, vtype, node.rvalue)
            return value, lvalue.ctype
        op = node.op[:-1]
        old, old_type = self._read(lvalue, node.lvalue)
        rhs, rhs_type = self._rvalue(node.rvalue)
        if isinstance(decay(old_type), PointerType) and op in ("+", "-"):
            new = self._ptradd(old, rhs)
            new_type = decay(old_type)
        else:
            name = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                    "%": "mod", "<<": "shl", ">>": "shr", "&": "and",
                    "|": "or", "^": "xor"}.get(op)
            if name is None:
                raise UnsupportedFeatureError(
                    f"unsupported compound assignment {node.op!r}",
                    line=_line(node))
            new = self.builder.primop(name, [old, rhs])
            new_type = old_type if old_type.is_scalar_arith else INT
        self._write(lvalue, new, new_type, None)
        return new, lvalue.ctype

    # -- ?: -----------------------------------------------------------------------------------

    def _lower_ternary(self, node: c_ast.TernaryOp) -> Tuple[OutputPort, CType]:
        pred, _ = self._rvalue(node.cond)
        self._control(pred)
        entry = self._snapshot()
        then_value, then_type = self._rvalue(node.iftrue)
        then_state = self._snapshot()
        self._restore(entry)
        else_value, else_type = self._rvalue(node.iffalse)
        else_state = self._snapshot()
        self._join([then_state, else_state])
        if then_value is else_value:
            value = then_value
        else:
            value = self.builder.merge([then_value, else_value], pred=pred)
        result_type = then_type if not then_type.is_scalar_arith or \
            else_type.is_scalar_arith else else_type
        if isinstance(decay(else_type), PointerType):
            result_type = else_type
        if isinstance(decay(then_type), PointerType):
            result_type = then_type
        return value, decay(result_type)

    # -- casts ----------------------------------------------------------------------------------

    def _lower_cast(self, node: c_ast.Cast) -> Tuple[OutputPort, CType]:
        to_type = self.types.type_of(node.to_type)
        if isinstance(to_type, VoidType):
            self._rvalue(node.expr)
            return self.builder.undef(), VOID
        if isinstance(to_type, PointerType):
            if _is_null_constant(node.expr, self.types):
                return self.builder.null_pointer(), to_type
            value, vtype = self._rvalue(node.expr)
            vtype = decay(vtype)
            if isinstance(vtype, (PointerType, FunctionType)):
                return value, to_type  # pointer-to-pointer: retype only
            raise UnsupportedFeatureError(
                "cast of a non-pointer value to a pointer type is not "
                "modeled (paper §2)", line=_line(node))
        value, vtype = self._rvalue(node.expr)
        vtype = decay(vtype)
        if isinstance(vtype, (PointerType, FunctionType)):
            raise UnsupportedFeatureError(
                "cast of a pointer value to a non-pointer type is not "
                "modeled (paper §2)", line=_line(node))
        return value, to_type

    # -- calls -------------------------------------------------------------------------------------

    def _lower_call(self, node: c_ast.FuncCall) -> Tuple[OutputPort, CType]:
        callee = node.name
        if isinstance(callee, c_ast.ID):
            symbol = self.symbols.lookup(callee.name)
            if (symbol is not None
                    and symbol.kind is SymbolKind.FUNCTION
                    and not symbol.defined
                    and self.module.linkage is not None
                    and callee.name
                    in self.module.linkage.defined_functions):
                # Defined in another translation unit of this build.
                symbol.defined = True
                symbol.link_name = callee.name
            if symbol is None or (symbol.kind is SymbolKind.FUNCTION
                                  and not symbol.defined):
                model = model_for(callee.name)
                if model is not None:
                    return self._lower_library_call(node, model)
                if symbol is None:
                    self.module.warn(
                        f"call to undeclared function {callee.name!r} "
                        f"treated as store-identity", node)
                    return self._lower_unknown_extern(node, INT)
                self.module.warn(
                    f"call to unmodeled external function "
                    f"{callee.name!r} treated as store-identity", node)
                return self._lower_unknown_extern(
                    node, symbol.ctype.return_type
                    if isinstance(symbol.ctype, FunctionType) else INT)
            if symbol.kind is SymbolKind.FUNCTION:
                fcn, ftype_ptr = self._function_value(symbol, node)
                return self._emit_call(node, fcn, symbol.ctype)
            # A variable of function-pointer type.
            value, vtype = self._read(self._lvalue(callee), callee)
            return self._call_through_value(node, value, vtype)
        # (*fp)(...) or any computed callee.
        value, vtype = self._rvalue(callee)
        return self._call_through_value(node, value, vtype)

    def _call_through_value(self, node, value: OutputPort,
                            vtype: CType) -> Tuple[OutputPort, CType]:
        vtype = decay(vtype)
        ftype: Optional[FunctionType] = None
        if isinstance(vtype, PointerType) and isinstance(
                vtype.pointee, FunctionType):
            ftype = vtype.pointee
        elif isinstance(vtype, FunctionType):
            ftype = vtype
        if ftype is None:
            raise TypeError_("call through a non-function value",
                             line=_line(node))
        return self._emit_call(node, value, ftype)

    def _emit_call(self, node, fcn: OutputPort,
                   ftype: FunctionType) -> Tuple[OutputPort, CType]:
        args = self._lower_arguments(node)
        return_type = ftype.return_type
        tag = return_type.value_tag()
        carries = return_type.contains_pointers() \
            if tag is ValueTag.AGGREGATE else None
        result, self.store = self.builder.call(
            fcn, args, self.store, tag, carries)
        return result, return_type

    def _lower_arguments(self, node: c_ast.FuncCall) -> List[OutputPort]:
        args: List[OutputPort] = []
        if node.args is not None:
            for expr in node.args.exprs:
                value, _ = self._rvalue(expr)
                args.append(value)
        return args

    def _lower_library_call(self, node: c_ast.FuncCall,
                            model: LibModel) -> Tuple[OutputPort, CType]:
        if model.kind == "unsupported":
            raise UnsupportedFeatureError(
                f"call to {model.name!r}: {model.reason}", line=_line(node))
        args: List[Tuple[OutputPort, CType]] = []
        if node.args is not None:
            for expr in node.args.exprs:
                args.append(self._rvalue(expr))
        # The call is the identity function on the store (§5.1.2) but
        # genuinely consumes its arguments: thread the store through an
        # explicit node so argument evaluation stays live in the VDG.
        self.store = self.builder.library_store(
            model.name, [port for port, _ in args], self.store)
        if model.kind == "alloc":
            loc = self.module.heap_site(node, self.name, model.name)
            port = self.builder.address(location_path(loc))
            return port, PointerType(VOID)
        if model.kind == "returns_arg":
            if model.arg_index < len(args):
                value, vtype = args[model.arg_index]
                return self.builder.copy(
                    value, op=f"lib:{model.name}:ret"), decay(vtype)
            return self.builder.null_pointer(), PointerType(VOID)
        # opaque: pointer-free scalar result.
        return self.builder.const(0, ValueTag.SCALAR), INT

    def _lower_unknown_extern(self, node: c_ast.FuncCall,
                              return_type: CType) -> Tuple[OutputPort, CType]:
        arg_ports: List[OutputPort] = []
        if node.args is not None:
            for expr in node.args.exprs:
                port, _ = self._rvalue(expr)
                arg_ports.append(port)
        name = node.name.name if isinstance(node.name, c_ast.ID) \
            else "<extern>"
        self.store = self.builder.library_store(name, arg_ports, self.store)
        tag = return_type.value_tag()
        if tag in (ValueTag.POINTER, ValueTag.FUNCTION, ValueTag.AGGREGATE):
            # An unknown extern returning pointers would be unsound to
            # fabricate; the result points at nothing (recorded above as
            # a warning).
            return self.builder.null_pointer(), return_type
        return self.builder.const(0), return_type

    # -- typing hints -------------------------------------------------------------------------------

    def _expression_type_hint(self, node) -> Optional[CType]:
        """Best-effort type of an expression *without* lowering it (used
        to steer array-vs-pointer and value-vs-storage decisions)."""
        if isinstance(node, c_ast.ID):
            symbol = self.symbols.lookup(node.name)
            return symbol.ctype if symbol is not None else None
        if isinstance(node, c_ast.ArrayRef):
            base = self._expression_type_hint(node.name)
            base = decay(base) if base is not None else None
            if isinstance(base, PointerType):
                return base.pointee
            return None
        if isinstance(node, c_ast.StructRef):
            if node.type == "->":
                base = self._expression_type_hint(node.name)
                base = decay(base) if base is not None else None
                if isinstance(base, PointerType) and isinstance(
                        base.pointee, RecordType):
                    return base.pointee.member_type(node.field.name)
                return None
            base = self._expression_type_hint(node.name)
            if isinstance(base, RecordType):
                return base.member_type(node.field.name)
            return None
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "*":
                base = self._expression_type_hint(node.expr)
                base = decay(base) if base is not None else None
                if isinstance(base, PointerType):
                    return base.pointee
                return None
            if node.op == "&":
                inner = self._expression_type_hint(node.expr)
                return pointer_to(inner) if inner is not None else None
            return None
        if isinstance(node, c_ast.FuncCall):
            if isinstance(node.name, c_ast.ID):
                symbol = self.symbols.lookup(node.name.name)
                if symbol is not None and isinstance(symbol.ctype,
                                                     FunctionType):
                    return symbol.ctype.return_type
            return None
        if isinstance(node, c_ast.Cast):
            return self.types.type_of(node.to_type)
        if isinstance(node, c_ast.Constant):
            if node.type == "string":
                return PointerType(CHAR)
            return INT
        return None


def _is_null_constant(expr, types: TypeContext) -> bool:
    """Whether an expression is a null pointer constant (0, '\\0',
    (void*)0, an enum constant equal to 0, ...)."""
    try:
        return types.const_eval(expr) == 0
    except TypeError_:
        return False


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def lower_ast(ast: c_ast.FileAST, name: str = "<program>",
              **options) -> Program:
    """Lower a parsed translation unit to an analyzable program."""
    program = ModuleLowerer(ast, name, **options).run()
    program.source_lines = 0
    return program


def lower_source(source: str, name: str = "<source>",
                 include_dirs: Sequence = (),
                 defines: Optional[Dict[str, str]] = None,
                 **options) -> Program:
    """Preprocess, parse, and lower C source text."""
    ast = _parse_source(source, filename=name, include_dirs=include_dirs,
                        defines=defines)
    program = lower_ast(ast, name=name, **options)
    program.source_lines = _count_source_lines(source)
    return program


def _finish_frontend_extras(program: Program, timer, cache_status: str
                            ) -> Program:
    """Record frontend phase timings and the cache outcome on the
    program, for telemetry records assembled further up the stack."""
    program.extras["phases"] = timer.as_dict()
    program.extras["cache"] = cache_status
    return program


def lower_file(path, include_dirs: Sequence = (),
               defines: Optional[Dict[str, str]] = None,
               cache: object = None,
               **options) -> Program:
    """Preprocess, parse, and lower a C file.

    ``cache`` enables the persistent lowering cache: ``True`` uses the
    default directory (``$REPRO_CACHE_DIR`` or ``./.repro-cache``), a
    path selects a specific directory, and ``None``/``False`` (the
    default) lowers from scratch.  Cached entries are keyed by the
    content hash of the preprocessor-reported dependency set — the
    file itself plus every ``#include``\\ d header it actually opened —
    and the lowering options, so edits to any of them invalidate
    entries automatically (see :mod:`repro.frontend.cache`).

    Frontend phase timings (``preprocess``/``parse``/``lower``, or
    ``cache_load`` on a hit) and the cache outcome land in
    ``program.extras`` for telemetry.
    """
    from .cache import compute_key, load_program, resolve_cache_dir, \
        store_program
    from .preprocess import Preprocessor
    from ..perf import PhaseTimer

    path = Path(path)
    timer = PhaseTimer()
    cache_dir = resolve_cache_dir(cache)
    pre = Preprocessor(include_dirs=include_dirs, defines=defines)
    with timer.phase("preprocess"):
        processed = pre.process_file(path)
    key = None
    if cache_dir is not None:
        key = compute_key(pre.dependencies, include_dirs, defines, options)
        with timer.phase("cache_load"):
            cached = load_program(cache_dir, key)
        if cached is not None:
            return _finish_frontend_extras(cached, timer, "hit")
    with timer.phase("parse"):
        ast = parse_preprocessed(processed, str(path))
    with timer.phase("lower"):
        program = lower_ast(ast, name=path.name, **options)
    program.source_lines = _count_source_lines(pre.dependencies[0][1].decode())
    _finish_frontend_extras(program, timer,
                            "miss" if cache_dir is not None else "off")
    if cache_dir is not None:
        store_program(cache_dir, key, program)
    return program


def lower_files(paths: Sequence, include_dirs: Sequence = (),
                defines: Optional[Dict[str, str]] = None,
                name: Optional[str] = None, cache: object = None,
                **options) -> Program:
    """Link several translation units into one analyzable program.

    External-linkage globals share storage by name, calls resolve to
    definitions in other files, TU-local ``static`` names never
    collide, and recursion detection runs over the merged call graph —
    so footnote 4's weakly-updateable locals apply to mutual recursion
    that crosses file boundaries too.

    ``cache`` works as in :func:`lower_file`, keyed over every input
    file's dependency set (headers included).
    """
    from .cache import compute_key, load_program, resolve_cache_dir, \
        store_program
    from .preprocess import Preprocessor
    from ..perf import PhaseTimer

    path_list = [Path(p) for p in paths]
    if not path_list:
        raise LoweringError("lower_files needs at least one file")
    timer = PhaseTimer()
    # One fresh Preprocessor per translation unit (macro state must not
    # leak across TUs), dependencies concatenated for the cache key.
    processed_texts: List[str] = []
    dependencies: List[Tuple[str, bytes]] = []
    with timer.phase("preprocess"):
        for path in path_list:
            pre = Preprocessor(include_dirs=include_dirs, defines=defines)
            processed_texts.append(pre.process_file(path))
            dependencies.extend(pre.dependencies)
    cache_dir = resolve_cache_dir(cache)
    key = None
    if cache_dir is not None:
        cache_options = dict(options)
        if name is not None:
            cache_options["name"] = name
        key = compute_key(dependencies, include_dirs, defines, cache_options)
        with timer.phase("cache_load"):
            cached = load_program(cache_dir, key)
        if cached is not None:
            return _finish_frontend_extras(cached, timer, "hit")
    program_name = name or "+".join(p.name for p in path_list)
    program = Program(program_name)
    linkage = Linkage(program)

    lowerers: List[ModuleLowerer] = []
    for path, processed in zip(path_list, processed_texts):
        with timer.phase("parse"):
            ast = parse_preprocessed(processed, str(path))
        with timer.phase("lower"):
            lowerer = ModuleLowerer(ast, program_name, linkage=linkage,
                                    tu_name=path.stem, **options)
            lowerer.collect()
        lowerers.append(lowerer)

    with timer.phase("lower"):
        _link_recursion(lowerers, linkage)
        for lowerer in lowerers:
            lowerer.lower_bodies()

        finisher = next(
            (lw for lw in lowerers
             if "main" in lw.func_source_names.values()), lowerers[0])
        for lowerer in lowerers:
            if lowerer is not finisher:
                finisher.warnings.extend(lowerer.warnings)
        finisher.finish()
    program.source_lines = sum(_count_source_lines(p.read_text())
                               for p in path_list)
    _finish_frontend_extras(program, timer,
                            "miss" if cache_dir is not None else "off")
    if cache_dir is not None:
        store_program(cache_dir, key, program)
    return program


def _link_recursion(lowerers: List["ModuleLowerer"],
                    linkage: Linkage) -> None:
    """Recompute recursion over the merged (cross-TU) call graph."""
    from .prepasses import _tarjan_sccs

    # Map each TU's source-name call edges onto program names.
    graph: Dict[str, set] = {}
    address_taken: set = set()
    indirect_callers: set = set()

    def resolve(lowerer: "ModuleLowerer", callee: str) -> Optional[str]:
        for prog_name, src in lowerer.func_source_names.items():
            if src == callee:
                return prog_name  # TU-local definition (maybe static)
        if callee in linkage.defined_functions:
            return callee
        return None

    for lowerer in lowerers:
        for prog_name, src in lowerer.func_source_names.items():
            edges = graph.setdefault(prog_name, set())
            for callee in lowerer.prepass.direct_calls.get(src, ()):
                target = resolve(lowerer, callee)
                if target is not None:
                    edges.add(target)
            if src in lowerer.prepass.has_indirect_call:
                indirect_callers.add(prog_name)
        for fn in lowerer.prepass.address_taken_functions:
            target = resolve(lowerer, fn)
            if target is not None:
                address_taken.add(target)

    if address_taken:
        for caller in indirect_callers:
            graph.setdefault(caller, set()).update(address_taken)

    recursive: set = set()
    for scc in _tarjan_sccs(graph):
        if len(scc) > 1:
            recursive.update(scc)
        elif scc[0] in graph.get(scc[0], set()):
            recursive.add(scc[0])
    for lowerer in lowerers:
        lowerer.linked_recursive = recursive


def _count_source_lines(text: str) -> int:
    """Non-blank source lines, the paper's Figure 2 "lines" metric."""
    return sum(1 for line in text.splitlines() if line.strip())
