"""Scoped symbol tables for the lowering pass."""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from ..errors import TypeError_
from .ctypes import CType


class SymbolKind(enum.Enum):
    VARIABLE = "variable"
    FUNCTION = "function"
    ENUM_CONSTANT = "enum-constant"


class Symbol:
    """One declared name.  Identity matters: the lowerer keys its SSA
    environment and storage bindings by Symbol object, so shadowed
    variables in inner scopes never collide with their shadowers."""

    __slots__ = ("name", "ctype", "kind", "is_global", "storage", "value",
                 "defined", "link_name")

    def __init__(self, name: str, ctype: CType, kind: SymbolKind,
                 is_global: bool = False, storage: str = "",
                 value: Optional[int] = None) -> None:
        self.name = name
        self.ctype = ctype
        self.kind = kind
        self.is_global = is_global
        self.storage = storage  # "", "static", "extern", "register"
        self.value = value      # enum constants
        self.defined = False    # functions: has a body been seen?
        #: Program-level name for functions (differs from ``name`` for
        #: TU-local statics in linked multi-file programs).
        self.link_name: Optional[str] = None

    def __repr__(self) -> str:
        return f"<{self.kind.value} {self.name}: {self.ctype!r}>"


class SymbolTable:
    """A stack of lexical scopes."""

    def __init__(self) -> None:
        self._scopes: List[Dict[str, Symbol]] = [{}]

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> Dict[str, Symbol]:
        if len(self._scopes) == 1:
            raise TypeError_("cannot pop the global scope")
        return self._scopes.pop()

    @property
    def depth(self) -> int:
        return len(self._scopes)

    @property
    def at_global_scope(self) -> bool:
        return len(self._scopes) == 1

    def define(self, symbol: Symbol, allow_redeclare: bool = False) -> Symbol:
        scope = self._scopes[-1]
        existing = scope.get(symbol.name)
        if existing is not None:
            if allow_redeclare:
                return existing
            raise TypeError_(f"redeclaration of {symbol.name!r}")
        scope[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        for scope in reversed(self._scopes):
            symbol = scope.get(name)
            if symbol is not None:
                return symbol
        return None

    def require(self, name: str, line: Optional[int] = None) -> Symbol:
        symbol = self.lookup(name)
        if symbol is None:
            raise TypeError_(f"undeclared identifier {name!r}", line=line)
        return symbol
