"""Models for C library functions.

The paper (Section 5.1.2) models "library procedures known not to
affect the points-to solution ... as the identity function on stores";
heap allocators get "a single representative base-location for each
invocation site of heap memory allocators (malloc, realloc, etc.)".

Each model describes the call's effect on points-to facts:

* ``alloc`` — returns a pointer to a fresh heap base-location named
  after the static call site; store unchanged.
* ``returns_arg`` — returns (a pointer into) one of its arguments,
  e.g. ``strcpy``/``strchr``/``fgets``; pairs of that argument flow to
  the result; store unchanged (character data carries no pointers).
* ``opaque`` — returns a pointer-free scalar; store unchanged.
* ``unsupported`` — the paper's excluded features (``signal``,
  ``longjmp``) plus calls that invoke function pointers we cannot see
  (``qsort``, ``bsearch``); lowering raises
  :class:`~repro.errors.UnsupportedFeatureError`.

Anything *declared but not defined and not listed here* falls under the
lowerer's ``extern_policy`` (warn-and-treat-as-opaque by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class LibModel:
    """The points-to behaviour of one library function."""

    name: str
    kind: str  # "alloc" | "returns_arg" | "opaque" | "unsupported"
    arg_index: int = 0  # for returns_arg
    reason: str = ""    # for unsupported


def _models() -> Dict[str, LibModel]:
    table: Dict[str, LibModel] = {}

    def alloc(*names: str) -> None:
        for name in names:
            table[name] = LibModel(name, "alloc")

    def returns_arg(index: int, *names: str) -> None:
        for name in names:
            table[name] = LibModel(name, "returns_arg", arg_index=index)

    def opaque(*names: str) -> None:
        for name in names:
            table[name] = LibModel(name, "opaque")

    def unsupported(reason: str, *names: str) -> None:
        for name in names:
            table[name] = LibModel(name, "unsupported", reason=reason)

    # Heap allocators: one base-location per static call site (§2).
    alloc("malloc", "calloc", "realloc", "valloc", "alloca", "strdup",
          "strndup")
    # Stream handles are opaque heap objects.
    alloc("fopen", "freopen", "tmpfile", "fdopen", "opendir")
    # getenv returns a pointer into environment storage we summarize
    # per call site.
    alloc("getenv")

    # String/memory routines returning (a pointer into) an argument.
    returns_arg(0, "strcpy", "strncpy", "strcat", "strncat", "memcpy",
                "memmove", "memset", "fgets", "gets", "strtok")
    returns_arg(0, "strchr", "strrchr", "strstr", "strpbrk", "index",
                "rindex", "memchr")

    # Pure/observational routines: identity on the store, scalar result.
    opaque("free", "cfree", "fclose", "closedir",
           "strlen", "strcmp", "strncmp", "strcasecmp", "strncasecmp",
           "strspn", "strcspn", "strcoll", "memcmp",
           "atoi", "atol", "atof", "strtol", "strtoul", "strtod",
           "abs", "labs", "div", "ldiv", "rand", "srand", "random",
           "srandom",
           "printf", "fprintf", "sprintf", "snprintf", "vprintf",
           "vfprintf", "vsprintf",
           "scanf", "fscanf", "sscanf",
           "puts", "fputs", "putchar", "putc", "fputc", "ungetc",
           "getchar", "getc", "fgetc",
           "fread", "fwrite", "fflush", "fseek", "ftell", "rewind",
           "feof", "ferror", "clearerr", "perror", "remove", "rename",
           "exit", "abort", "_exit", "assert", "system",
           "isalpha", "isdigit", "isalnum", "isspace", "isupper",
           "islower", "ispunct", "isprint", "iscntrl", "isxdigit",
           "toupper", "tolower",
           "pow", "sqrt", "exp", "log", "log10", "sin", "cos", "tan",
           "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
           "ceil", "floor", "fabs", "fmod", "ldexp", "frexp", "modf",
           "time", "clock", "difftime", "getpid", "sleep", "usleep")

    # Paper §2 caveats and higher-order callbacks we cannot see through.
    unsupported("signal handlers are not modeled (paper §2)", "signal",
                "sigaction", "raise", "kill")
    unsupported("longjmp is not modeled (paper §2)", "setjmp", "longjmp",
                "_setjmp", "_longjmp", "sigsetjmp", "siglongjmp")
    unsupported("calls back through a hidden function pointer",
                "qsort", "bsearch", "atexit", "on_exit")
    return table


LIBRARY_MODELS: Dict[str, LibModel] = _models()


def model_for(name: str) -> Optional[LibModel]:
    """The library model for ``name``, or None if it is not modeled."""
    return LIBRARY_MODELS.get(name)
