"""Persistent lowering cache.

Lowering dominates a cold suite sweep (preprocess → parse → lower is
an order of magnitude slower than the CI fixpoint itself), and the
lowered :class:`~repro.ir.graph.Program` is a pure function of the
source text plus lowering options.  This module memoizes that function
on disk: programs are pickled under a content-hash key, so repeat
analyses of unchanged sources skip the whole frontend.

Key properties:

* **Content-hash keys over the true dependency set** — sha256 over the
  lowering version, the interpreter version, the bytes of *every file
  the mini-preprocessor actually opened* (the named inputs plus each
  transitively ``#include``\\ d header, as reported by
  ``Preprocessor.dependencies``), and the lowering options.  Editing a
  source file, any header it pulls in, or the options misses cleanly;
  bumping :data:`LOWERING_VERSION` (do this whenever lowering output
  changes shape) invalidates every prior entry at once.
* **Identity-safe pickling** — interned objects (access paths, access
  operators, points-to pairs) re-intern on load via their
  ``__reduce__`` hooks, so a cached program is indistinguishable from
  a freshly lowered one to the identity-based analyses.
* **Failure-transparent** — a corrupt, truncated, or version-skewed
  entry is treated as a miss (and deleted best-effort), never an
  error; cache *writes* are atomic (temp file + ``os.replace``) so a
  killed process cannot leave a half-written entry behind.  Temp files
  orphaned by a process killed between ``mkstemp`` and ``os.replace``
  are swept opportunistically on later writes — rate-limited to one
  directory glob per minute — and by :func:`clear_cache`; writers
  retry once if a concurrent sweeper reclaims their live temp file
  mid-write.
"""

from __future__ import annotations

import gc
import hashlib
import itertools
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..ir.graph import Program

#: Bump whenever the lowering pipeline's output changes shape —
#: invalidates every previously cached program.  v2: keys hash the
#: preprocessor-reported dependency set (headers included), not just
#: the named input files.  v3: programs may carry dense fact-table /
#: SCC-order extras, and entries are written with pickle protocol 5.
#: v4: word-packed fact sets (PackedBits) and SCC-level / seed-plan /
#: dispatch extras in cached programs.  v5: the summary layer
#: (``analysis/incremental.py``) persists per-SCC analysis summaries
#: next to cached programs — bumped so lowered programs and the
#: summary store they anchor start from one coherent generation.
LOWERING_VERSION = 5

#: Default cache directory (relative to the working directory), and
#: the environment variables that override/disable it.
CACHE_DIR_NAME = ".repro-cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"


def caching_disabled() -> bool:
    """Global opt-out: ``REPRO_NO_CACHE=1`` disables all cache use."""
    return os.environ.get(NO_CACHE_ENV, "") not in ("", "0")


def resolve_cache_dir(cache: object = True) -> Optional[Path]:
    """Map a ``cache=`` argument to a directory, or ``None`` for off.

    ``True`` selects ``$REPRO_CACHE_DIR`` or ``./.repro-cache``;
    a string or path selects that directory; ``False``/``None``
    disables caching, as does ``REPRO_NO_CACHE=1``.
    """
    if not cache or caching_disabled():
        return None
    if isinstance(cache, (str, os.PathLike)):
        return Path(cache)
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(CACHE_DIR_NAME)


def compute_key(sources: Sequence[Tuple[str, bytes]],
                include_dirs: Sequence = (),
                defines: Optional[Dict[str, str]] = None,
                options: Optional[dict] = None) -> str:
    """Content-hash key for one lowering invocation.

    ``sources`` is the full ``(name, bytes)`` dependency set —
    callers on the lowering path pass ``Preprocessor.dependencies``
    so edits to ``#include``\\ d headers change the key.
    """
    h = hashlib.sha256()
    h.update(f"lowering-v{LOWERING_VERSION}".encode())
    h.update(f"py{sys.version_info[0]}.{sys.version_info[1]}".encode())
    for name, data in sources:
        h.update(b"\x00file\x00")
        h.update(name.encode(errors="replace"))
        h.update(b"\x00")
        h.update(data)
    for inc in include_dirs:
        h.update(f"\x00inc\x00{inc}".encode(errors="replace"))
    for key, value in sorted((defines or {}).items()):
        h.update(f"\x00def\x00{key}={value}".encode(errors="replace"))
    for key, value in sorted((options or {}).items()):
        h.update(f"\x00opt\x00{key}={value!r}".encode(errors="replace"))
    return h.hexdigest()


def key_for_files(paths: Sequence, include_dirs: Sequence = (),
                  defines: Optional[Dict[str, str]] = None,
                  options: Optional[dict] = None) -> str:
    """Key over exactly the given files (reads each file's bytes).

    For self-contained sources this equals the key the lowering path
    computes; sources that ``#include`` other files hash additional
    dependencies, so prefer :func:`compute_key` over
    ``Preprocessor.dependencies`` when exactness matters.
    """
    sources = [(str(p), Path(p).read_bytes()) for p in paths]
    return compute_key(sources, include_dirs, defines, options)


def _entry_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.pkl"


#: In-process memo over disk entries: ``(cache_dir, key)`` → (disk
#: entry's stat signature, loaded program).  Repeat loads within one
#: process — benchmark repeats, a suite sweep re-reading a shared
#: header's program, the report runner — skip unpickling entirely
#: (which costs several milliseconds per program).  Each memo hit is
#: validated against the entry's current ``(st_size, st_mtime_ns)``,
#: so an entry rewritten, corrupted, or deleted on disk behaves
#: exactly as it would with no memo.
_MEMO: Dict[Tuple[str, str], Tuple[Tuple[int, int], Program]] = {}


def load_program(cache_dir: Path, key: str) -> Optional[Program]:
    """Fetch a cached program, or ``None`` on miss or *any* failure.

    Corrupt entries (truncated pickle, wrong object type, unpicklable
    bytes) are silently removed and reported as a miss — the caller
    re-lowers and overwrites them.
    """
    path = _entry_path(cache_dir, key)
    memo_key = (str(cache_dir), key)
    try:
        stat = os.stat(path)
    except OSError:
        _MEMO.pop(memo_key, None)
        return None
    signature = (stat.st_size, stat.st_mtime_ns)
    memoized = _MEMO.get(memo_key)
    if memoized is not None and memoized[0] == signature:
        return memoized[1]
    try:
        with open(path, "rb") as fh:
            # A program unpickles as one burst of small acyclic-until-
            # proven-otherwise allocations; keeping the cyclic GC out
            # of that burst is a measurable win on large graphs.
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                program = pickle.load(fh)
            finally:
                if was_enabled:
                    gc.enable()
    except FileNotFoundError:
        _MEMO.pop(memo_key, None)
        return None
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        _MEMO.pop(memo_key, None)
        return None
    if not isinstance(program, Program):
        try:
            path.unlink()
        except OSError:
            pass
        _MEMO.pop(memo_key, None)
        return None
    _MEMO[memo_key] = (signature, program)
    return program


#: Orphaned ``*.tmp`` files older than this are reclaimed on cache
#: writes; young ones may belong to a live concurrent writer.
_STALE_TMP_AGE_SECONDS = 3600.0

#: Minimum seconds between stale-tmp sweeps of one cache directory.
#: The sweep is a full directory glob; paying it on *every* store made
#: write-heavy sweeps O(entries) per write for a cleanup whose point
#: is reclaiming hour-old leftovers.
_SWEEP_INTERVAL_SECONDS = 60.0

#: Cache directory → monotonic time of its last sweep (process-local).
_last_sweep: Dict[str, float] = {}


def _sweep_stale_tmps(cache_dir: Path,
                      max_age: float = _STALE_TMP_AGE_SECONDS) -> int:
    """Best-effort removal of temp files orphaned by killed writers
    (a process that died between ``mkstemp`` and ``os.replace``).
    ``max_age <= 0`` removes every temp file regardless of age."""
    removed = 0
    try:
        now = time.time()
        for tmp in cache_dir.glob("*.tmp"):
            try:
                if max_age <= 0 or now - tmp.stat().st_mtime > max_age:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
    except OSError:
        pass
    return removed


def _maybe_sweep_stale_tmps(cache_dir: Path) -> int:
    """Rate-limited :func:`_sweep_stale_tmps`: at most one sweep per
    directory per :data:`_SWEEP_INTERVAL_SECONDS`, so back-to-back
    stores don't re-glob the directory for nothing."""
    marker = str(cache_dir)
    now = time.monotonic()
    last = _last_sweep.get(marker)
    if last is not None and now - last < _SWEEP_INTERVAL_SECONDS:
        return 0
    _last_sweep[marker] = now
    return _sweep_stale_tmps(cache_dir)


def store_program(cache_dir: Path, key: str, program: Program) -> bool:
    """Write a program to the cache atomically; returns success.

    Failures (unwritable directory, unpicklable payload, recursion
    depth on pathological graphs) are swallowed: the cache is an
    optimization, never a correctness dependency.
    """
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        _maybe_sweep_stale_tmps(cache_dir)
        # One retry: a concurrent process's stale-tmp sweep can (with
        # a skewed clock, or a writer stalled past the age cutoff)
        # reclaim *this* writer's live temp file between mkstemp and
        # os.replace — the publish then raises FileNotFoundError.  The
        # write is idempotent, so a second attempt with a fresh temp
        # file recovers instead of silently dropping the store.
        for attempt in (0, 1):
            fd, tmp_name = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
            try:
                # Port/node graphs are deeply linked; give pickle
                # headroom.
                limit = sys.getrecursionlimit()
                sys.setrecursionlimit(max(limit, 100_000))
                try:
                    with os.fdopen(fd, "wb") as fh:
                        # Protocol 5 explicitly: framed out-of-band-
                        # capable format with the fastest load path,
                        # independent of what HIGHEST_PROTOCOL
                        # resolves to.
                        pickle.dump(program, fh, protocol=5)
                finally:
                    sys.setrecursionlimit(limit)
                entry = _entry_path(cache_dir, key)
                try:
                    os.replace(tmp_name, entry)
                except FileNotFoundError:
                    if attempt == 0:
                        continue
                    return False
                try:
                    stat = os.stat(entry)
                    _MEMO[(str(cache_dir), key)] = (
                        (stat.st_size, stat.st_mtime_ns), program)
                except OSError:
                    pass
                return True
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return False
    except Exception:
        return False


def forget_loaded(cache: object = True) -> int:
    """Drop in-process memo entries for a cache directory, leaving the
    disk entries intact; returns the number dropped.

    The next :func:`load_program` for each dropped key re-unpickles
    from disk and yields a *fresh* ``Program`` object rather than the
    memoized one.  Tests and the fuzz deep checks use this to exercise
    the disk round-trip explicitly (and to avoid object aliasing
    between a stored program and its reload).
    """
    cache_dir = resolve_cache_dir(cache)
    if cache_dir is None:
        return 0
    prefix = str(cache_dir)
    stale = [k for k in _MEMO if k[0] == prefix]
    for memo_key in stale:
        del _MEMO[memo_key]
    return len(stale)


def clear_cache(cache: object = True) -> int:
    """Delete all cache entries (including orphaned temp files);
    returns the number removed."""
    cache_dir = resolve_cache_dir(cache)
    if cache_dir is None or not cache_dir.is_dir():
        return 0
    prefix = str(cache_dir)
    for memo_key in [k for k in _MEMO if k[0] == prefix]:
        del _MEMO[memo_key]
    removed = 0
    for entry in itertools.chain(cache_dir.glob("*.pkl"),
                                 cache_dir.glob("*.tmp")):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed
