"""A miniature C preprocessor.

pycparser consumes *preprocessed* C, and this reproduction runs
offline, so we implement the subset of cpp the benchmark suite (and any
reasonably self-contained C program) needs:

* comment stripping and line splicing;
* ``#include "file"`` with include-directory search and a depth limit
  (``#include <...>`` resolves only against explicitly provided system
  directories — there is no host libc to leak in);
* object-like and function-like ``#define``, ``#undef``, with
  recursion-safe expansion;
* ``#ifdef`` / ``#ifndef`` / ``#if`` / ``#elif`` / ``#else`` /
  ``#endif``, where ``#if`` expressions support integer arithmetic,
  comparisons, logical operators, and ``defined(...)``;
* ``# <line> "<file>"`` markers in the output so parser diagnostics
  point at original positions (pycparser understands them).

String and character literals are respected everywhere: no expansion,
comment detection, or directive parsing happens inside them.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import PreprocessorError

_MAX_INCLUDE_DEPTH = 64
_MAX_EXPANSIONS = 10_000

_IDENT = re.compile(r"[A-Za-z_]\w*")
_TOKEN = re.compile(
    r"""
    (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)*')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?[a-zA-Z]*)
  | (?P<punct>.)
    """,
    re.VERBOSE,
)


class Macro:
    """An object-like or function-like macro definition."""

    __slots__ = ("name", "params", "body", "varargs")

    def __init__(self, name: str, body: str,
                 params: Optional[Sequence[str]] = None,
                 varargs: bool = False) -> None:
        self.name = name
        self.body = body.strip()
        self.params = list(params) if params is not None else None
        self.varargs = varargs

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


def strip_comments(text: str, filename: str = "<text>") -> str:
    """Remove ``//`` and ``/* */`` comments, preserving line structure
    (block comments are replaced by spaces/newlines so line numbers
    survive)."""
    out: List[str] = []
    i, n = 0, len(text)
    line = 1
    while i < n:
        ch = text[i]
        if ch == '"' or ch == "'":
            quote = ch
            start = i
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == quote:
                    i += 1
                    break
                if text[i] == "\n":
                    raise PreprocessorError(
                        "unterminated literal", filename, line)
                i += 1
            out.append(text[start:i])
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                raise PreprocessorError(
                    "unterminated block comment", filename, line)
            comment = text[i:end + 2]
            out.append("".join("\n" if c == "\n" else " " for c in comment))
            line += comment.count("\n")
            i = end + 2
            continue
        if ch == "\n":
            line += 1
        out.append(ch)
        i += 1
    return "".join(out)


def splice_lines(text: str) -> str:
    """Join backslash-continued lines (preserving total line count by
    emitting blank lines is unnecessary; we re-mark positions)."""
    return text.replace("\\\n", " ")


class _CondState:
    """One level of the conditional-inclusion stack."""

    __slots__ = ("active", "taken", "in_else")

    def __init__(self, active: bool) -> None:
        self.active = active   # emitting lines in the current arm?
        self.taken = active    # has any arm of this #if been taken?
        self.in_else = False


class Preprocessor:
    """Drives preprocessing of one translation unit."""

    def __init__(self, include_dirs: Sequence = (),
                 system_dirs: Sequence = (),
                 defines: Optional[Dict[str, str]] = None) -> None:
        self.include_dirs = [Path(d) for d in include_dirs]
        self.system_dirs = [Path(d) for d in system_dirs]
        self.macros: Dict[str, Macro] = {}
        for name, body in (defines or {}).items():
            self.macros[name] = Macro(name, body)
        self._expansions = 0
        #: Every file this run actually opened — the named input plus
        #: each (transitively) ``#include``\ d file, with the exact
        #: bytes read, in open order.  The lowering cache hashes this
        #: set so a header edit invalidates dependent entries.
        self.dependencies: List[Tuple[str, bytes]] = []

    # -- public API --------------------------------------------------------

    def process_file(self, path) -> str:
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise PreprocessorError(f"cannot read {path}: {exc}") from exc
        self.dependencies.append((str(path), data))
        return self.process_text(data.decode(), str(path))

    def process_text(self, text: str, filename: str = "<text>") -> str:
        out: List[str] = []
        self._process(text, filename, depth=0, out=out)
        return "\n".join(out) + "\n"

    # -- core ----------------------------------------------------------------

    def _process(self, text: str, filename: str, depth: int,
                 out: List[str]) -> None:
        if depth > _MAX_INCLUDE_DEPTH:
            raise PreprocessorError("include depth limit exceeded", filename)
        text = splice_lines(strip_comments(text, filename))
        conds: List[_CondState] = []
        out.append(f'# 1 "{filename}"')
        emitted_line = 0
        for lineno, raw in enumerate(text.split("\n"), start=1):
            line = raw
            stripped = line.lstrip()
            active = all(c.active for c in conds)
            if stripped.startswith("#"):
                self._directive(stripped[1:].strip(), filename, lineno,
                                depth, conds, out, active)
                continue
            if not active:
                continue
            if not stripped:
                continue
            if emitted_line != lineno:
                out.append(f'# {lineno} "{filename}"')
            out.append(self.expand(line, filename, lineno))
            emitted_line = lineno + 1
        if conds:
            raise PreprocessorError("unterminated conditional", filename)

    def _directive(self, body: str, filename: str, lineno: int, depth: int,
                   conds: List[_CondState], out: List[str],
                   active: bool) -> None:
        match = _IDENT.match(body)
        name = match.group(0) if match else ""
        rest = body[len(name):].strip()

        if name == "ifdef" or name == "ifndef":
            if not rest or not _IDENT.fullmatch(rest.split()[0]):
                raise PreprocessorError(f"#{name} needs a name",
                                        filename, lineno)
            defined = rest.split()[0] in self.macros
            value = defined if name == "ifdef" else not defined
            conds.append(_CondState(active and value))
            return
        if name == "if":
            value = bool(self._evaluate(rest, filename, lineno)) if active \
                else False
            conds.append(_CondState(active and value))
            return
        if name == "elif":
            if not conds or conds[-1].in_else:
                raise PreprocessorError("#elif without #if", filename, lineno)
            state = conds[-1]
            outer_active = all(c.active for c in conds[:-1])
            if state.taken or not outer_active:
                state.active = False
            else:
                state.active = bool(self._evaluate(rest, filename, lineno))
                state.taken = state.taken or state.active
            return
        if name == "else":
            if not conds or conds[-1].in_else:
                raise PreprocessorError("#else without #if", filename, lineno)
            state = conds[-1]
            outer_active = all(c.active for c in conds[:-1])
            state.active = outer_active and not state.taken
            state.taken = True
            state.in_else = True
            return
        if name == "endif":
            if not conds:
                raise PreprocessorError("#endif without #if", filename, lineno)
            conds.pop()
            return

        if not active:
            return

        if name == "define":
            self._define(rest, filename, lineno)
            return
        if name == "undef":
            target = rest.split()[0] if rest else ""
            if not _IDENT.fullmatch(target):
                raise PreprocessorError("#undef needs a name",
                                        filename, lineno)
            self.macros.pop(target, None)
            return
        if name == "include":
            self._include(rest, filename, lineno, depth, out)
            return
        if name in ("pragma", "line"):
            return
        if name == "error":
            raise PreprocessorError(f"#error {rest}", filename, lineno)
        if name == "":
            return  # a lone '#' is a null directive
        raise PreprocessorError(f"unknown directive #{name}",
                                filename, lineno)

    # -- #define -----------------------------------------------------------------

    def _define(self, rest: str, filename: str, lineno: int) -> None:
        match = _IDENT.match(rest)
        if not match:
            raise PreprocessorError("#define needs a name", filename, lineno)
        name = match.group(0)
        after = rest[match.end():]
        if after.startswith("("):
            close = after.find(")")
            if close == -1:
                raise PreprocessorError("unterminated macro parameter list",
                                        filename, lineno)
            params_text = after[1:close].strip()
            params = []
            varargs = False
            if params_text:
                pieces = [p.strip() for p in params_text.split(",")]
                for index, param in enumerate(pieces):
                    if param == "...":
                        if index != len(pieces) - 1:
                            raise PreprocessorError(
                                "'...' must be the last macro parameter",
                                filename, lineno)
                        varargs = True
                        continue
                    if not _IDENT.fullmatch(param):
                        raise PreprocessorError(
                            f"bad macro parameter {param!r}", filename, lineno)
                    params.append(param)
            body = after[close + 1:]
            self.macros[name] = Macro(name, body, params, varargs)
        else:
            self.macros[name] = Macro(name, after)

    # -- #include -------------------------------------------------------------------

    def _include(self, rest: str, filename: str, lineno: int, depth: int,
                 out: List[str]) -> None:
        rest = self.expand(rest, filename, lineno).strip()
        if rest.startswith('"') and rest.endswith('"') and len(rest) >= 2:
            target, dirs = rest[1:-1], None
        elif rest.startswith("<") and rest.endswith(">"):
            target, dirs = rest[1:-1], self.system_dirs
            if not dirs:
                raise PreprocessorError(
                    f"system include <{target}> with no system include "
                    f"directories configured", filename, lineno)
        else:
            raise PreprocessorError(f"malformed #include {rest!r}",
                                    filename, lineno)
        path = self._resolve(target, filename, dirs)
        if path is None:
            raise PreprocessorError(f"cannot find include file {target!r}",
                                    filename, lineno)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise PreprocessorError(f"cannot read {path}: {exc}",
                                    filename, lineno) from exc
        self.dependencies.append((str(path), data))
        self._process(data.decode(), str(path), depth + 1, out)
        out.append(f'# {lineno + 1} "{filename}"')

    def _resolve(self, target: str, includer: str,
                 system_only: Optional[List[Path]]) -> Optional[Path]:
        candidates: List[Path] = []
        if system_only is None:
            includer_dir = Path(includer).parent
            candidates.append(includer_dir / target)
            candidates.extend(d / target for d in self.include_dirs)
            candidates.extend(d / target for d in self.system_dirs)
        else:
            candidates.extend(d / target for d in system_only)
        for candidate in candidates:
            if candidate.is_file():
                return candidate
        return None

    # -- macro expansion ---------------------------------------------------------------

    def expand(self, line: str, filename: str = "<text>",
               lineno: int = 0) -> str:
        return self._expand(line, filename, lineno, frozenset())

    def _expand(self, text: str, filename: str, lineno: int,
                active: frozenset) -> str:
        out: List[str] = []
        i, n = 0, len(text)
        while i < n:
            match = _TOKEN.match(text, i)
            if match is None:  # pragma: no cover - _TOKEN matches any char
                out.append(text[i])
                i += 1
                continue
            i = match.end()
            ident = match.group("ident")
            if ident is None:
                out.append(match.group(0))
                continue
            macro = self.macros.get(ident)
            if macro is None or ident in active:
                out.append(match.group(0))
                continue
            self._expansions += 1
            if self._expansions > _MAX_EXPANSIONS:
                raise PreprocessorError("macro expansion limit exceeded",
                                        filename, lineno)
            if macro.is_function_like:
                args, next_i = self._collect_args(text, i, filename, lineno)
                if args is None:
                    out.append(match.group(0))  # name not followed by '('
                    continue
                i = next_i
                if macro.varargs:
                    if len(args) < len(macro.params):
                        raise PreprocessorError(
                            f"macro {ident} expects at least "
                            f"{len(macro.params)} arguments, got "
                            f"{len(args)}", filename, lineno)
                elif len(args) != len(macro.params) and not (
                        len(macro.params) == 0 and args == [""]):
                    raise PreprocessorError(
                        f"macro {ident} expects {len(macro.params)} "
                        f"arguments, got {len(args)}", filename, lineno)
                body = self._substitute(macro, args, filename, lineno, active)
                out.append(self._expand(body, filename, lineno,
                                        active | {ident}))
            else:
                out.append(self._expand(macro.body, filename, lineno,
                                        active | {ident}))
        return "".join(out)

    def _collect_args(self, text: str, i: int, filename: str,
                      lineno: int) -> Tuple[Optional[List[str]], int]:
        n = len(text)
        while i < n and text[i] in " \t":
            i += 1
        if i >= n or text[i] != "(":
            return None, i
        i += 1
        args: List[str] = []
        depth = 1
        current: List[str] = []
        while i < n:
            ch = text[i]
            if ch in "\"'":
                match = _TOKEN.match(text, i)
                if match is None or (match.group("string") is None
                                     and match.group("char") is None):
                    raise PreprocessorError("bad literal in macro arguments",
                                            filename, lineno)
                current.append(match.group(0))
                i = match.end()
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    return args, i + 1
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
                i += 1
                continue
            current.append(ch)
            i += 1
        raise PreprocessorError("unterminated macro argument list",
                                filename, lineno)

    def _substitute(self, macro: Macro, args: List[str], filename: str,
                    lineno: int, active: frozenset) -> str:
        if macro.varargs:
            fixed = args[:len(macro.params)]
            rest = args[len(macro.params):]
            args = fixed + [", ".join(rest)]
            param_names = macro.params + ["__VA_ARGS__"]
        else:
            param_names = macro.params
        expanded_args = [self._expand(a, filename, lineno, active)
                         for a in args]
        by_name = dict(zip(param_names, expanded_args))
        raw_by_name = dict(zip(param_names, args))
        out: List[str] = []
        i, n = 0, len(macro.body)
        pending_paste = False
        while i < n:
            match = _TOKEN.match(macro.body, i)
            if match is None:  # pragma: no cover
                out.append(macro.body[i])
                i += 1
                continue
            token = match.group(0)
            ident = match.group("ident")
            i = match.end()

            # '#param' stringifies the raw (unexpanded) argument.
            if token == "#" and not pending_paste:
                rest = macro.body[i:]
                stripped = rest.lstrip()
                inner = _IDENT.match(stripped)
                if inner and inner.group(0) in raw_by_name:
                    raw = raw_by_name[inner.group(0)]
                    escaped = raw.replace("\\", "\\\\").replace('"', '\\"')
                    out.append(f'"{escaped}"')
                    i += (len(rest) - len(stripped)) + inner.end()
                    continue
                if stripped.startswith("#"):
                    # '##': paste the next token onto the previous one.
                    i += (len(rest) - len(stripped)) + 1
                    while out and not out[-1].strip():
                        out.pop()
                    pending_paste = True
                    continue
                out.append(token)
                continue

            if ident is not None and ident in by_name:
                replacement = (raw_by_name if pending_paste
                               else by_name)[ident]
            else:
                replacement = token
            if pending_paste:
                if replacement.strip():
                    if out:
                        out[-1] = out[-1] + replacement.strip()
                    else:
                        out.append(replacement.strip())
                    pending_paste = False
                # skip pure whitespace between ## and the next token
            else:
                out.append(replacement)
        return "".join(out)

    # -- #if expression evaluation --------------------------------------------------------

    def _evaluate(self, expression: str, filename: str, lineno: int) -> int:
        expression = self._replace_defined(expression)
        expression = self.expand(expression, filename, lineno)
        # Any identifier surviving expansion evaluates to 0 (C semantics).
        tokens = _tokenize_if(expression, filename, lineno)
        parser = _IfParser(tokens, filename, lineno)
        value = parser.parse()
        return value

    def _replace_defined(self, expression: str) -> str:
        def repl(match: re.Match) -> str:
            name = match.group(1) or match.group(2)
            return "1" if name in self.macros else "0"

        pattern = re.compile(
            r"defined\s*\(\s*([A-Za-z_]\w*)\s*\)|defined\s+([A-Za-z_]\w*)")
        return pattern.sub(repl, expression)


# -- tiny Pratt parser for #if expressions ------------------------------------

_IF_OPS = ["||", "&&", "==", "!=", "<=", ">=", "<<", ">>",
           "<", ">", "|", "^", "&", "+", "-", "*", "/", "%", "!", "~",
           "(", ")", "?", ":"]

_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}


def _tokenize_if(text: str, filename: str, lineno: int) -> List[str]:
    tokens: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] == "."):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append("0")  # surviving identifier: value 0
            i = j
            continue
        if ch == "'":
            match = _TOKEN.match(text, i)
            if match is None or match.group("char") is None:
                raise PreprocessorError("bad character constant in #if",
                                        filename, lineno)
            body = match.group(0)[1:-1]
            value = ord(body[-1]) if body else 0
            tokens.append(str(value))
            i = match.end()
            continue
        for op in _IF_OPS:
            if text.startswith(op, i):
                tokens.append(op)
                i += len(op)
                break
        else:
            raise PreprocessorError(f"bad token {ch!r} in #if expression",
                                    filename, lineno)
    return tokens


def _parse_int(token: str, filename: str, lineno: int) -> int:
    cleaned = token.rstrip("uUlL")
    try:
        return int(cleaned, 0)
    except ValueError as exc:
        raise PreprocessorError(f"bad number {token!r} in #if",
                                filename, lineno) from exc


class _IfParser:
    """Precedence-climbing parser for integer #if expressions."""

    def __init__(self, tokens: List[str], filename: str, lineno: int) -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.lineno = lineno

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PreprocessorError("unexpected end of #if expression",
                                    self.filename, self.lineno)
        self.pos += 1
        return token

    def parse(self) -> int:
        value = self._ternary()
        if self._peek() is not None:
            raise PreprocessorError(
                f"trailing tokens in #if expression: {self._peek()!r}",
                self.filename, self.lineno)
        return value

    def _ternary(self) -> int:
        condition = self._binary(0)
        if self._peek() == "?":
            self._next()
            then_value = self._ternary()
            if self._next() != ":":
                raise PreprocessorError("expected ':' in ?:",
                                        self.filename, self.lineno)
            else_value = self._ternary()
            return then_value if condition else else_value
        return condition

    def _binary(self, min_precedence: int) -> int:
        left = self._unary()
        while True:
            op = self._peek()
            precedence = _BINARY_PRECEDENCE.get(op or "")
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._binary(precedence + 1)
            left = self._apply(op, left, right)

    def _unary(self) -> int:
        token = self._next()
        if token == "!":
            return int(not self._unary())
        if token == "~":
            return ~self._unary()
        if token == "-":
            return -self._unary()
        if token == "+":
            return self._unary()
        if token == "(":
            value = self._ternary()
            if self._next() != ")":
                raise PreprocessorError("expected ')'",
                                        self.filename, self.lineno)
            return value
        if token[0].isdigit():
            return _parse_int(token, self.filename, self.lineno)
        raise PreprocessorError(f"unexpected token {token!r} in #if",
                                self.filename, self.lineno)

    def _apply(self, op: str, left: int, right: int) -> int:
        if op == "||":
            return int(bool(left) or bool(right))
        if op == "&&":
            return int(bool(left) and bool(right))
        if op in ("/", "%") and right == 0:
            raise PreprocessorError("division by zero in #if",
                                    self.filename, self.lineno)
        table = {
            "|": lambda: left | right, "^": lambda: left ^ right,
            "&": lambda: left & right, "==": lambda: int(left == right),
            "!=": lambda: int(left != right), "<": lambda: int(left < right),
            ">": lambda: int(left > right), "<=": lambda: int(left <= right),
            ">=": lambda: int(left >= right), "<<": lambda: left << right,
            ">>": lambda: left >> right, "+": lambda: left + right,
            "-": lambda: left - right, "*": lambda: left * right,
            "/": lambda: int(left / right) if (left < 0) != (right < 0)
                 and left % right else left // right,
            "%": lambda: left - right * (
                int(left / right) if (left < 0) != (right < 0)
                and left % right else left // right),
        }
        return table[op]()


def preprocess(text: str, filename: str = "<text>",
               include_dirs: Sequence = (),
               defines: Optional[Dict[str, str]] = None) -> str:
    """One-shot convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(include_dirs=include_dirs,
                        defines=defines).process_text(text, filename)
