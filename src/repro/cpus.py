"""CPU availability, as the *scheduler* sees it.

``os.cpu_count()`` reports the machine's logical CPUs, which
overcounts badly inside cgroup- or affinity-restricted containers (a
2-core CI slot on a 64-core host reports 64) and makes pool sizing
oversubscribe.  :func:`available_cpus` asks progressively less precise
sources:

1. ``os.process_cpu_count()`` (Python 3.13+) — respects both CPU
   affinity and, from 3.13, ``-X cpu_count``/``PYTHON_CPU_COUNT``;
2. ``len(os.sched_getaffinity(0))`` — the scheduler's affinity mask
   (Linux; absent on macOS/Windows);
3. ``os.cpu_count()`` — the machine-wide count, last resort.

Both the process-pool sizing in :mod:`repro.runner` and the SCC-level
thread sharding in :mod:`repro.analysis.insensitive` size themselves
from this.
"""

from __future__ import annotations

import os


def available_cpus() -> int:
    """CPUs this process may actually run on (always ≥ 1)."""
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        count = probe()
        if count:
            return count
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            count = len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            count = 0
        if count:
            return count
    return os.cpu_count() or 1
