"""repro — reproduction of Ruf, *Context-Insensitive Alias Analysis
Reconsidered* (PLDI 1995).

A points-to analysis framework for C built on a VDG-style sparse IR,
with both the paper's context-insensitive (Figure 1) and maximally
context-sensitive (Figure 5) algorithms, the benchmark suite, and the
statistics machinery that regenerates every figure in the evaluation.

Quickstart::

    import repro

    program = repro.parse_source('''
        int g; int *p;
        void set(int **q) { *q = &g; }
        int main(void) { set(&p); *p = 1; return 0; }
    ''')
    ci = repro.analyze(program)                        # Figure 1
    cs = repro.analyze(program, sensitivity="sensitive")  # Figure 5
"""

from .analysis import (
    AnalysisResult,
    PointsToSolution,
    analyze_insensitive,
    analyze_sensitive,
)
from .errors import (
    AnalysisError,
    FrontendError,
    IRError,
    ParseError,
    PreprocessorError,
    ReproError,
    SuiteError,
    UnsupportedFeatureError,
)
from .ir import GraphBuilder, Program

__version__ = "1.0.0"


def analyze(program: Program, sensitivity: str = "insensitive",
            **kwargs) -> AnalysisResult:
    """Run a points-to analysis over a lowered program.

    ``sensitivity`` selects the algorithm: ``"insensitive"`` (paper
    Section 3), ``"sensitive"`` (Section 4), or ``"flowinsensitive"``
    (the Weihl-style program-wide baseline).
    """
    if sensitivity == "insensitive":
        return analyze_insensitive(program, **kwargs)
    if sensitivity == "sensitive":
        return analyze_sensitive(program, **kwargs)
    if sensitivity == "flowinsensitive":
        from .analysis.flowinsensitive import analyze_flowinsensitive
        return analyze_flowinsensitive(program, **kwargs)
    raise ValueError(f"unknown sensitivity {sensitivity!r}")


def parse_source(source: str, name: str = "<source>", **kwargs) -> Program:
    """Preprocess, parse, and lower C source text to an analyzable
    :class:`~repro.ir.Program`."""
    from .frontend import lower_source

    return lower_source(source, name=name, **kwargs)


def parse_file(path, **kwargs) -> Program:
    """Preprocess, parse, and lower a C file."""
    from .frontend import lower_file

    return lower_file(path, **kwargs)


def parse_files(paths, **kwargs) -> Program:
    """Link several C files into one analyzable program (external
    globals share storage, calls resolve across files, ``static``
    names stay file-local)."""
    from .frontend import lower_files

    return lower_files(paths, **kwargs)


__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "FrontendError",
    "GraphBuilder",
    "IRError",
    "ParseError",
    "PointsToSolution",
    "PreprocessorError",
    "Program",
    "ReproError",
    "SuiteError",
    "UnsupportedFeatureError",
    "analyze",
    "analyze_insensitive",
    "analyze_sensitive",
    "parse_file",
    "parse_files",
    "parse_source",
    "__version__",
]
