"""Greedy minimizer for failing generated programs.

Works on the generator's structured :class:`ProgramSpec`, not on raw
text, so every candidate is still a syntactically valid program built
from the same UB-free statement vocabulary.  Reduction moves, tried
last statement first:

* delete one removable statement (an ``if``/``while`` goes with its
  whole body; the generator's atomic ``malloc``+init line goes as a
  unit);
* unwrap a conditional or loop, splicing its body in its place;
* delete one unreferenced local declaration.

After every successful move :func:`~repro.fuzz.generator.prune_unused`
sweeps now-unreferenced helpers, globals, prototypes, struct
definitions, and the ``malloc`` extern, which is what collapses a
50-line program into a handful of lines once the failing core is
isolated.

A candidate is kept only when the caller's ``still_fails`` predicate
accepts the re-rendered source — the CLI and tests pass a predicate
that re-runs the differential check and compares the violation
*signature*, so shrinking preserves the original failure kind rather
than trading it for a different bug.  Predicates that raise (the
candidate no longer parses, lowers, or executes) reject the candidate.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from .generator import GeneratedProgram, ProgramSpec, Stmt, prune_unused

#: A reduction candidate: ("stmt"|"unwrap", func index, trail) or
#: ("decl", func index, decl index).  A trail walks nested bodies:
#: each element is ("body"|"orelse", index).
Candidate = Tuple[str, int, tuple]


def _walk(stmts: List[Stmt], prefix: tuple,
          list_name: str = "body") -> Iterator[Tuple[tuple, Stmt]]:
    for index, stmt in enumerate(stmts):
        here = prefix + ((list_name, index),)
        yield here, stmt
        if stmt.kind in ("if", "while"):
            yield from _walk(stmt.body, here, "body")
            yield from _walk(stmt.orelse, here, "orelse")


def _resolve(spec: ProgramSpec, func_index: int,
             trail: tuple) -> Tuple[List[Stmt], int]:
    """The (statement list, index) a trail addresses inside ``spec``.

    Each hop is ``(list-name, index)``; a hop's list lives on the
    statement the *previous* hop selected, and the list-name is
    recorded on the *next* hop (the first hop is always in the
    function body).
    """
    stmts = spec.funcs[func_index].body
    for hop, (which, index) in enumerate(trail):
        if hop == len(trail) - 1:
            return stmts, index
        nxt = trail[hop + 1][0]
        stmt = stmts[index]
        stmts = stmt.orelse if nxt == "orelse" else stmt.body
    raise IndexError("empty trail")  # pragma: no cover


def _candidates(spec: ProgramSpec) -> List[Candidate]:
    found: List[Candidate] = []
    for func_index, func in enumerate(spec.funcs):
        for trail, stmt in _walk(func.body, ()):
            if stmt.removable:
                found.append(("stmt", func_index, trail))
            if stmt.kind in ("if", "while") and stmt.removable \
                    and (stmt.body or stmt.orelse):
                found.append(("unwrap", func_index, trail))
        for decl_index in range(len(func.decls)):
            found.append(("decl", func_index, decl_index))
    return found


def _apply(spec: ProgramSpec, candidate: Candidate) -> bool:
    kind, func_index, where = candidate[0], candidate[1], candidate[2]
    func = spec.funcs[func_index]
    if kind == "decl":
        if where >= len(func.decls):
            return False
        del func.decls[where]
        return True
    try:
        stmts, index = _resolve(spec, func_index, where)
    except (IndexError, AttributeError):
        return False
    if index >= len(stmts):
        return False
    stmt = stmts[index]
    if kind == "stmt":
        del stmts[index]
        return True
    if kind == "unwrap":
        stmts[index:index + 1] = list(stmt.body) + list(stmt.orelse)
        return True
    return False  # pragma: no cover


def _line_count(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())


def shrink_program(program: GeneratedProgram,
                   still_fails: Callable[[str], bool],
                   max_attempts: int = 2000) -> GeneratedProgram:
    """Greedily minimize ``program`` while ``still_fails`` holds.

    Returns a new :class:`GeneratedProgram` whose source is the
    smallest found; the input is never mutated.  ``still_fails`` is
    called with candidate source text and must return True when the
    original failure reproduces; exceptions count as False.
    """

    def safe(text: str) -> bool:
        try:
            return bool(still_fails(text))
        except Exception:
            return False

    spec = program.spec.clone()
    prune_unused(spec)
    best = spec.render()
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in reversed(_candidates(spec)):
            if attempts >= max_attempts:
                break
            trial = spec.clone()
            if not _apply(trial, candidate):
                continue
            prune_unused(trial)
            text = trial.render()
            if _line_count(text) >= _line_count(best):
                continue
            attempts += 1
            if safe(text):
                spec, best = trial, text
                progress = True
                break
    return GeneratedProgram(name=f"{program.name}-shrunk",
                            seed=program.seed, source=best,
                            features=dict(program.features), spec=spec)
