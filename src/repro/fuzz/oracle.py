"""Differential soundness checker.

For one program the oracle establishes, memory operation by memory
operation, the inclusion lattice the paper's claims rest on:

    concrete ⊆ CS ⊆ CI ⊆ flow-insensitive

* **CS ⊆ CI ⊆ FI** is checked per *node*: the three analyses run over
  the same lowered :class:`~repro.ir.graph.Program`, so their
  ``op_locations`` sets share interned :class:`AccessPath` identities
  and plain set inclusion is exact.
* **concrete ⊆ CS** is checked per *source line*: the interpreter and
  the lowering parse the same text through the same frontend, so a
  recorded access at ``(line, kind)`` must be covered by the union of
  the CS ``op_locations`` of the lookups/updates lowered from that
  line.  Coverage is segment-wise: same base label, and one operator
  path a prefix of the other (the lowering may expand an aggregate
  copy field-wise, or keep it whole — both directions are sound).
  Note the abstract side includes *direct* operations too: a
  syntactic dereference whose pointer is register-bound constant-folds
  to a direct op, and its referent set still must cover the concrete
  access.

On top of the lattice the oracle asserts determinism — the batched,
FIFO, SCC-priority, and thread-sharded SCC-parallel solvers must
reach byte-identical solutions — and
re-checks each solution with the declarative fixpoint verifier.  A
checker leg re-lowers the program under the hazard model and holds the
bug checkers to the same standard: schedule-stable finding digests,
and a same-line finding for every concrete null-dereference or
uninitialized-read trap, under CI and CS alike.  The
separate :func:`deep_checks` entry (used by the CLI every N-th
program) additionally crosses process and cache boundaries: analyses
fanned out with ``--jobs 2`` and lowerings replayed through a
cache miss/hit cycle must digest identically.
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis import (
    analyze_flowinsensitive,
    analyze_insensitive,
    analyze_sensitive,
    verify_solution,
)
from ..analysis.common import AnalysisResult
from ..frontend.cache import forget_loaded
from ..frontend.lower import lower_file, lower_source
from ..ir.nodes import LookupNode, UpdateNode
from .concrete import ConcreteTrap, interpret_source

#: Abstract access rendering: (base label, operator renderings).
Rendered = Tuple[str, Tuple[str, ...]]


@dataclass
class Violation:
    """One failed soundness/determinism obligation."""

    kind: str        # "lattice" | "concrete" | "determinism" | "fixpoint"
                     # | "trap" | "error" | "checker" | "slice"
    detail: str
    line: Optional[int] = None

    def __str__(self) -> str:
        where = f" (line {self.line})" if self.line is not None else ""
        return f"[{self.kind}]{where} {self.detail}"


@dataclass
class CheckReport:
    """Everything one program's differential check produced."""

    name: str
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    digests: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def signature(self) -> frozenset:
        """Which obligation kinds failed — the shrinker preserves this."""
        return frozenset(v.kind for v in self.violations)


def solution_digest(result: AnalysisResult) -> str:
    """Canonical content hash of a solution, stable across processes.

    Node uids are assigned deterministically by the lowering and pair
    reprs contain no ids, so equal solutions of equal programs digest
    equally even after pickling across a process pool or a cache
    round-trip.
    """
    lines = []
    for output, pairs in result.solution.items():
        node = output.node
        rendered = ";".join(sorted(repr(p) for p in pairs))
        lines.append(f"{node.graph.name}|{node.kind}#{node.uid}|"
                     f"{output.name}|{rendered}")
    lines.sort()
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def _origin_line(node) -> Optional[int]:
    origin = getattr(node, "origin", None)
    if not origin:
        return None
    tail = origin.rsplit(":", 1)[-1]
    return int(tail) if tail.isdigit() else None


def _render_paths(paths) -> Set[Rendered]:
    rendered = set()
    for path in paths:
        if path.base is None:  # pragma: no cover - referents are based
            continue
        rendered.add((path.base.describe(),
                      tuple(repr(op) for op in path.ops)))
    return rendered


def _covered(concrete: Rendered, abstract: Set[Rendered]) -> bool:
    c_label, c_ops = concrete
    for a_label, a_ops in abstract:
        if a_label != c_label:
            continue
        shorter = min(len(a_ops), len(c_ops))
        if a_ops[:shorter] == c_ops[:shorter]:
            return True
    return False


#: Trap classification → the checker that must have predicted it.
def _trap_hazard(trap: ConcreteTrap) -> Optional[str]:
    message = str(trap)
    if message.startswith("uninitialized read"):
        return "uninit"
    if "non-pointer" in message:   # *p / p-> where p is null (or junk)
        return "nullderef"
    return None


def check_program(source: str, name: str = "<fuzz>", *,
                  schedules: bool = True,
                  fixpoint: bool = True,
                  checkers: bool = True,
                  slices: bool = True,
                  summaries: bool = False,
                  expect_trap: Optional[str] = None,
                  step_budget: Optional[int] = None) -> CheckReport:
    """Run the full differential check on one C source text.

    ``expect_trap`` flips the concrete leg's contract for mutated
    programs: instead of treating a :class:`ConcreteTrap` as a
    generator bug, the named hazard (``"uninit"``/``"nullderef"``)
    *must* occur — and the checker leg must cover it (see below).

    ``checkers=True`` adds the checker-client oracle: the program is
    re-lowered under the hazard model, the bug checkers sweep the CI
    and CS results, finding digests must agree across the batched,
    FIFO, and SCC schedules, and any concrete null-dereference or
    uninitialized-read trap must be covered by a same-line finding of
    the matching checker under *both* flavors — a missed concrete
    hazard is a hard soundness failure (kind ``"checker"``).

    ``slices=True`` adds the dependence-graph oracle: the concrete
    interpreter's def→use flows (the line that last wrote a cell → a
    pointer read of it) must each be covered by a ``mem`` edge of the
    CI dependence graph between those lines, and the graph digest must
    agree across the batched/FIFO/SCC schedules (kind ``"slice"``).
    Flows whose endpoints lower to sparse SSA edges rather than store
    operations are skipped — only flows with an update node at the def
    line and a lookup node at the use line are obligations.

    ``summaries=True`` adds the summary-equivalence leg: against a
    private cache directory, a cold incremental run must populate the
    summary store, a second run over a fresh lowering must fully
    replay (``sccs_resolved == 0``), and a third run after evicting
    one persisted CI entry must recover — all three digest-identical
    to the whole-program CI/CS/FI solutions (kind ``"summary"``).
    """
    report = CheckReport(name=name)
    # simplify=False: the simplifier deletes dead lookups, which would
    # leave concretely-executed reads with no abstract counterpart.
    program = lower_source(source, name=name, simplify=False)
    ci = analyze_insensitive(program)
    cs = analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    report.stats["nodes"] = program.node_count()
    report.stats["functions"] = len(program.functions)

    # -- CS ⊆ CI ⊆ FI, per memory operation ------------------------------
    op_count = 0
    indirect_count = 0
    line_map: Dict[Tuple[int, str], Set[Rendered]] = {}
    line_ops: Dict[Tuple[int, str], int] = {}
    for graph in program.functions.values():
        for node in graph.memory_operations():
            op_count += 1
            if node.is_indirect:
                indirect_count += 1
            cs_locs = cs.op_locations(node)
            ci_locs = ci.op_locations(node)
            fi_locs = fi.op_locations(node)
            if not cs_locs <= ci_locs:
                extra = ", ".join(sorted(repr(p) for p in cs_locs - ci_locs))
                report.violations.append(Violation(
                    "lattice", f"CS ⊄ CI at {graph.name}:{node!r}: "
                    f"CS-only locations {{{extra}}}", _origin_line(node)))
            if not ci_locs <= fi_locs:
                extra = ", ".join(sorted(repr(p) for p in ci_locs - fi_locs))
                report.violations.append(Violation(
                    "lattice", f"CI ⊄ FI at {graph.name}:{node!r}: "
                    f"CI-only locations {{{extra}}}", _origin_line(node)))
            line = _origin_line(node)
            if line is not None:
                kind = "read" if isinstance(node, LookupNode) else "write"
                key = (line, kind)
                line_map.setdefault(key, set()).update(
                    _render_paths(cs_locs))
                line_ops[key] = line_ops.get(key, 0) + 1
    report.stats["memory_ops"] = op_count
    report.stats["indirect_ops"] = indirect_count

    # -- concrete ⊆ CS, per source line ----------------------------------
    trap: Optional[ConcreteTrap] = None
    try:
        kwargs = {} if step_budget is None else {"step_budget": step_budget}
        trace = interpret_source(source, name=name, **kwargs)
    except ConcreteTrap as caught:
        trap = caught
        trace = None
        if expect_trap is None:
            report.violations.append(Violation(
                "trap", f"concrete execution trapped: {trap}",
                trap.line))
    if expect_trap is not None:
        if trap is None:
            report.violations.append(Violation(
                "trap", f"expected a concrete {expect_trap} trap but "
                "execution completed cleanly"))
        elif _trap_hazard(trap) != expect_trap:
            report.violations.append(Violation(
                "trap", f"expected a concrete {expect_trap} trap but "
                f"got: {trap}", trap.line))
    if trace is not None:
        report.stats["concrete_steps"] = trace.steps
        report.stats["concrete_accesses"] = trace.total_accesses()
        report.stats["concrete_calls"] = trace.calls
        for (line, kind), accesses in sorted(trace.accesses.items()):
            abstract = line_map.get((line, kind), set())
            if not line_ops.get((line, kind)):
                sample = ", ".join(sorted(l + "".join(o)
                                          for l, o in accesses))
                report.violations.append(Violation(
                    "concrete", f"executed a pointer {kind} with no "
                    f"lowered memory operation (touched {{{sample}}})",
                    line))
                continue
            for access in sorted(accesses):
                if not _covered(access, abstract):
                    have = ", ".join(sorted(l + "".join(o)
                                            for l, o in abstract)) or "∅"
                    report.violations.append(Violation(
                        "concrete",
                        f"concrete {kind} touched "
                        f"{access[0] + ''.join(access[1])!r} but CS "
                        f"op_locations only cover {{{have}}}", line))

    # -- schedule determinism --------------------------------------------
    report.digests["ci"] = solution_digest(ci)
    report.digests["cs"] = solution_digest(cs)
    report.digests["fi"] = solution_digest(fi)
    if schedules:
        for other in ("fifo", "scc"):
            ci_alt = analyze_insensitive(program, schedule=other)
            cs_alt = analyze_sensitive(program, ci_result=ci_alt,
                                       schedule=other)
            fi_alt = analyze_flowinsensitive(program, schedule=other)
            for flavor, alt in (("ci", ci_alt), ("cs", cs_alt),
                                ("fi", fi_alt)):
                digest = solution_digest(alt)
                if digest != report.digests[flavor]:
                    report.violations.append(Violation(
                        "determinism",
                        f"{flavor.upper()} solution differs between "
                        f"batched ({report.digests[flavor][:12]}…) and "
                        f"{other} ({digest[:12]}…) schedules"))
        # The thread-sharded SCC solver must land on the same CI
        # fixpoint regardless of worker interleaving.
        ci_par = analyze_insensitive(program, schedule="scc",
                                     parallel_scc=True)
        digest = solution_digest(ci_par)
        if digest != report.digests["ci"]:
            report.violations.append(Violation(
                "determinism",
                f"CI solution differs between batched "
                f"({report.digests['ci'][:12]}…) and scc-parallel "
                f"({digest[:12]}…) solving"))

    # -- independent fixpoint re-check -----------------------------------
    if fixpoint:
        for flavor, result in (("CI", ci), ("CS", cs)):
            for violation in verify_solution(result):
                report.violations.append(Violation(
                    "fixpoint", f"{flavor}: {violation}"))

    # -- slice soundness: concrete flows ⊆ dependence mem edges ----------
    if slices:
        _check_slices(program, ci, trace, report, schedules=schedules)

    # -- summary-based solving must reproduce whole-program solving ------
    if summaries:
        _check_summaries(source, name, report)

    # -- checker clients over the hazard-model lowering ------------------
    if checkers:
        _check_checkers(source, name, report, trap, trace,
                        schedules=schedules)
    return report


def _check_slices(program, ci: AnalysisResult, trace,
                  report: CheckReport, schedules: bool = True) -> None:
    """The dependence-graph oracle leg (see :func:`check_program`).

    A concrete flow ``(def_line, use_line)`` obligates a ``mem`` edge
    between *some* update node at the def line and *some* lookup node
    at the use line.  The defining write concretely reached the read —
    no intervening write overwrote the cell — so a correct analysis
    cannot have strongly killed that definition, and the alias test
    between the update's written paths and the lookup's footprint must
    succeed (both cover the same concrete storage).  Either an unsound
    strong update or a broken alias test in the graph builder (the
    ``drop-alias-deps`` mutation) breaks the edge and is reported.
    """
    from ..analysis.depgraph import build_depgraph

    graph = build_depgraph(ci)
    report.digests["depgraph"] = graph.digest()
    report.stats["depgraph_edges"] = len(graph.edges)

    def tail_line(origin: str) -> Optional[int]:
        tail = origin.rsplit(":", 1)[-1]
        return int(tail) if tail.isdigit() else None

    updates_at: Dict[int, Set[str]] = {}
    lookups_at: Dict[int, Set[str]] = {}
    for key, (_, kind, origin) in graph.nodes.items():
        if not origin or kind not in ("update", "lookup"):
            continue
        line = tail_line(origin)
        if line is None:
            continue
        bucket = updates_at if kind == "update" else lookups_at
        bucket.setdefault(line, set()).add(key)
    mem_pairs = {(src, dst) for src, dst, kind in graph.edges
                 if kind == "mem"}

    checked = 0
    for def_line, use_line in sorted(trace.flows if trace else ()):
        updates = updates_at.get(def_line)
        lookups = lookups_at.get(use_line)
        if not updates or not lookups:
            continue     # lowered as sparse SSA edges, not store ops
        checked += 1
        if not any((u, l) in mem_pairs
                   for u in updates for l in lookups):
            report.violations.append(Violation(
                "slice",
                f"concrete value flow from the line-{def_line} write "
                f"to the line-{use_line} read has no mem dependence "
                f"edge", use_line))
    report.stats["slice_flows_checked"] = checked

    if schedules:
        for other in ("fifo", "scc"):
            alt = build_depgraph(analyze_insensitive(
                program, schedule=other))
            digest = alt.digest()
            if digest != report.digests["depgraph"]:
                report.violations.append(Violation(
                    "slice",
                    f"dependence graph differs between batched "
                    f"({report.digests['depgraph'][:12]}…) and {other} "
                    f"({digest[:12]}…) schedules"))


#: (incremental flavor name, report digest key) for the summary leg.
_SUMMARY_FLAVORS = (("insensitive", "ci"), ("sensitive", "cs"),
                    ("flowinsensitive", "fi"))


def _check_summaries(source: str, name: str, report: CheckReport) -> None:
    """The summary-equivalence oracle leg (see :func:`check_program`).

    Exercises all three store regimes against a throwaway cache:
    cold populate, full replay from a *fresh* lowering (proving the
    structural serialization round-trips across program objects), and
    recovery after evicting one persisted CI entry (the partial /
    fallback path).  Every run must be digest-identical to the
    whole-program baseline already recorded in ``report.digests``.
    """
    import glob
    import os
    import tempfile

    from ..analysis.incremental import analyze_incremental

    def run_and_compare(cache_dir: str, leg: str,
                        expect_replay: bool = False) -> None:
        program = lower_source(source, name=name, simplify=False)
        results = analyze_incremental(program, cache=cache_dir)
        for flavor, short in _SUMMARY_FLAVORS:
            digest = solution_digest(results[flavor])
            if digest != report.digests[short]:
                report.violations.append(Violation(
                    "summary",
                    f"{short.upper()} summary-composed solution "
                    f"({leg}) differs from whole-program solving "
                    f"({digest[:12]}… vs "
                    f"{report.digests[short][:12]}…)"))
            dense = results[flavor].extras.get("dense", {})
            if expect_replay and dense.get("sccs_resolved") != 0:
                report.violations.append(Violation(
                    "summary",
                    f"{short.upper()} re-run over an unchanged program "
                    f"re-solved {dense.get('sccs_resolved')} SCC(s) "
                    f"instead of replaying"))

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-sum-") as tmp:
        run_and_compare(tmp, "cold")
        run_and_compare(tmp, "replay", expect_replay=True)
        entries = sorted(glob.glob(
            os.path.join(tmp, "summaries", "insensitive-*.pkl")))
        if entries:
            os.unlink(entries[len(entries) // 2])
        run_and_compare(tmp, "after eviction")


def _covers_trap(findings, hazard: str, line: Optional[int]) -> bool:
    return any(f.checker == hazard
               and (line is None or f.line == line)
               for f in findings)


def _check_checkers(source: str, name: str, report: CheckReport,
                    trap: Optional[ConcreteTrap], trace,
                    schedules: bool = True) -> None:
    """The checker-client oracle leg (see :func:`check_program`)."""
    from ..analysis.checkers import findings_digest, run_checkers

    program = lower_source(source, name=name, simplify=False,
                           hazard_model=True)
    ci = analyze_insensitive(program)
    cs = analyze_sensitive(program, ci_result=ci)
    findings = {"ci": run_checkers(ci), "cs": run_checkers(cs)}
    digests = {flavor: findings_digest(found)
               for flavor, found in findings.items()}
    report.digests["check_ci"] = digests["ci"]
    report.digests["check_cs"] = digests["cs"]
    report.stats["checker_findings_ci"] = len(findings["ci"])
    report.stats["checker_findings_cs"] = len(findings["cs"])

    if schedules:
        for other in ("fifo", "scc"):
            ci_alt = analyze_insensitive(program, schedule=other)
            cs_alt = analyze_sensitive(program, ci_result=ci_alt,
                                       schedule=other)
            for flavor, alt in (("ci", ci_alt), ("cs", cs_alt)):
                digest = findings_digest(run_checkers(alt))
                if digest != digests[flavor]:
                    report.violations.append(Violation(
                        "checker",
                        f"{flavor.upper()} findings differ between "
                        f"batched ({digests[flavor][:12]}…) and {other} "
                        f"({digest[:12]}…) schedules"))

    # A concrete hazard the analysis-side checkers did not predict is
    # unsoundness, under the stripped CS result just as under CI.
    hazard = _trap_hazard(trap) if trap is not None else None
    if hazard is not None:
        for flavor in ("ci", "cs"):
            if not _covers_trap(findings[flavor], hazard, trap.line):
                report.violations.append(Violation(
                    "checker",
                    f"concrete {hazard} trap ({trap}) has no covering "
                    f"{hazard} finding under {flavor.upper()}",
                    trap.line))

    # Label CI findings against the one concrete path we have: a
    # finding matching the observed trap is a confirmed true positive;
    # on a clean run every finding is (for this input) a false alarm.
    observed = {(hazard, trap.line)} if hazard is not None else set()
    true_pos = sum(1 for f in findings["ci"]
                   if (f.checker, f.line) in observed)
    report.stats["checker_true_positives"] = true_pos
    if trace is not None or hazard is not None:
        report.stats["checker_false_positives"] = \
            len(findings["ci"]) - true_pos


def deep_checks(programs: Sequence[Tuple[str, str]],
                jobs: int = 2) -> List[Violation]:
    """Cross-process and cache determinism for a batch of programs.

    ``programs`` is ``[(name, source), ...]``; needs at least two
    entries for the ``jobs``-fan-out leg to actually cross a process
    boundary.  Each program's CI/CS solutions must digest identically
    when analyzed inline (``jobs=1``) and across a process pool, and
    when its lowering is replayed through a cache miss then a cache
    hit.
    """
    from ..runner import run_files_report

    violations: List[Violation] = []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        tmpdir = Path(tmp)
        paths = []
        for prog_name, source in programs:
            path = tmpdir / f"{prog_name}.c"
            path.write_text(source, encoding="utf-8")
            paths.append(path)

        flavors = ("insensitive", "sensitive")
        inline = run_files_report(paths, flavors=flavors, jobs=1)
        # force_pool: the runner folds tiny sweeps back into the
        # calling process for speed, which would silently turn this
        # leg into a second inline run — here the process boundary
        # *is* the thing under test.
        pooled = run_files_report(paths, flavors=flavors, jobs=jobs,
                                  force_pool=True)
        for one, two in zip(inline.outcomes, pooled.outcomes):
            if not one.ok or not two.ok:
                detail = one.error or two.error
                violations.append(Violation(
                    "error", f"analysis failed during jobs check: {detail}"))
                continue
            for flavor in flavors:
                a = solution_digest(one.results[flavor])
                b = solution_digest(two.results[flavor])
                if a != b:
                    violations.append(Violation(
                        "determinism",
                        f"{one.name}: {flavor} solution differs between "
                        f"jobs=1 ({a[:12]}…) and jobs={jobs} ({b[:12]}…)"))

        cache_dir = tmpdir / "cache"
        for path in paths:
            cold = lower_file(path, cache=cache_dir)
            cold_status = cold.extras.get("cache")
            # Drop the in-process memo so the warm load genuinely
            # re-unpickles from disk (and is a distinct object whose
            # extras can't alias cold's).
            forget_loaded(cache_dir)
            warm = lower_file(path, cache=cache_dir)
            statuses = (cold_status, warm.extras.get("cache"))
            if statuses != ("miss", "hit"):
                violations.append(Violation(
                    "determinism",
                    f"{path.name}: expected cache miss then hit, got "
                    f"{statuses}"))
            a = solution_digest(analyze_insensitive(cold))
            b = solution_digest(analyze_insensitive(warm))
            if a != b:
                violations.append(Violation(
                    "determinism",
                    f"{path.name}: CI solution differs between cache miss "
                    f"({a[:12]}…) and cache hit ({b[:12]}…)"))

        # -- SCC-priority schedule cross-check ------------------------
        # The per-program oracle already crosses batched vs fifo; here
        # the third schedule runs on a *fresh* lowering (its own fact
        # table and SCC order) and must land on the same solutions.
        for path, (prog_name, source) in zip(paths, programs):
            program = lower_file(path, cache=False)
            ci_b = analyze_insensitive(program)
            cs_b = analyze_sensitive(program, ci_result=ci_b)
            ci_s = analyze_insensitive(program, schedule="scc")
            cs_s = analyze_sensitive(program, ci_result=ci_s,
                                     schedule="scc")
            for flavor, batched, scc in (("ci", ci_b, ci_s),
                                         ("cs", cs_b, cs_s)):
                a = solution_digest(batched)
                b = solution_digest(scc)
                if a != b:
                    violations.append(Violation(
                        "determinism",
                        f"{prog_name}: {flavor} solution differs between "
                        f"batched ({a[:12]}…) and scc ({b[:12]}…) "
                        f"schedules"))
            ci_p = analyze_insensitive(program, schedule="scc",
                                       parallel_scc=True)
            a = solution_digest(ci_b)
            b = solution_digest(ci_p)
            if a != b:
                violations.append(Violation(
                    "determinism",
                    f"{prog_name}: ci solution differs between batched "
                    f"({a[:12]}…) and scc-parallel ({b[:12]}…) solving"))
    return violations
