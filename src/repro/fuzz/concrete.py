"""Concrete-execution oracle: interpret a generated C program.

The interpreter executes the pycparser AST directly — it shares the
*parser* with the lowering (so source coordinates agree) but none of
the lowering, IR, or solver code, which is what makes it an
independent ground truth.  While executing it records, for every
memory access that goes **through a pointer value**, the abstract
rendering of the storage it touched:

    ``BaseLocation.describe()``-style label + field/index operators,
    with concrete array indices collapsed to ``[*]``

keyed by ``(source line, "read" | "write")``.  The oracle then checks
that each recorded access is covered by the analyses' ``op_locations``
at the memory operations lowered from the same line.

Label construction mirrors :meth:`repro.memory.base.BaseLocation.describe`:
globals render as ``name``, locals and parameters as ``proc::name``,
and heap objects as ``<heap:malloc@function:line>`` (one label per
static allocation site, freshly instantiated per execution of the
site).  Recursive activations create distinct instances that share a
label — exactly the collapse the analyses' single base-location per
local performs.

The generator promises programs free of undefined behaviour; any
uninitialized read, out-of-bounds index, or exhausted step budget
raises :class:`ConcreteTrap`, which the oracle reports as a generator
bug rather than an analysis unsoundness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from pycparser import c_ast

from ..frontend.parser import parse_source

#: Default interpretation budget, in executed statements/expressions.
DEFAULT_STEP_BUDGET = 500_000


class ConcreteTrap(Exception):
    """The program did something the generator promised it never would.

    ``line`` is the source line of the innermost statement that was
    executing when the trap fired (attached as the trap unwinds), so
    the checker oracle can match a concrete hazard against the
    findings reported at that line.
    """

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        super().__init__(message)
        self.line = line


class _Return(Exception):
    """Non-local exit carrying a function's return value."""

    def __init__(self, value) -> None:
        self.value = value


_UNINIT = object()


class StructVal(dict):
    """A struct value: field name → value."""


class ArrayVal(dict):
    """An array value: int index → value."""


@dataclass(frozen=True)
class FuncRef:
    """A function designator value (the referent of a function name)."""

    name: str


class Instance:
    """One concrete storage object (a base location instance).

    ``writes`` maps a field/index operator path inside this object to
    the source line of the last statement that (re)defined that cell —
    the provenance the slice oracle turns into def→use flows.  Writing
    a path clobbers the records of everything beneath it (the copied
    value replaces the whole subtree), while records above it survive
    (defining one field does not redefine the struct)."""

    __slots__ = ("label", "value", "writes")

    def __init__(self, label: str, value=_UNINIT) -> None:
        self.label = label
        self.value = value
        self.writes: Dict[Tuple[Tuple[str, object], ...], int] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instance {self.label}>"


@dataclass(frozen=True)
class Address:
    """A pointer value: an instance plus a field/index operator path."""

    instance: Instance
    ops: Tuple[Tuple[str, object], ...] = ()

    def extend(self, op: Tuple[str, object]) -> "Address":
        return Address(self.instance, self.ops + (op,))

    def abstract(self) -> Tuple[str, Tuple[str, ...]]:
        """(label, op renderings) with indices collapsed to ``[*]`` —
        the shape :class:`repro.memory.access.AccessPath` renders to."""
        return (self.instance.label,
                tuple(f".{key}" if kind == "f" else "[*]"
                      for kind, key in self.ops))

    def render(self) -> str:
        label, ops = self.abstract()
        return label + "".join(ops)


def _copy_value(value):
    if isinstance(value, StructVal):
        return StructVal({k: _copy_value(v) for k, v in value.items()})
    if isinstance(value, ArrayVal):
        return ArrayVal({k: _copy_value(v) for k, v in value.items()})
    return value


@dataclass
class ConcreteTrace:
    """Everything one execution recorded."""

    #: (line, "read" | "write") → set of (label, op renderings).
    accesses: Dict[Tuple[int, str], Set[Tuple[str, Tuple[str, ...]]]] = \
        field(default_factory=dict)
    #: Observed def→use flows: (line of the defining write, line of a
    #: pointer read that received the value).  The slice oracle checks
    #: these against the dependence graph's ``mem`` edges.
    flows: Set[Tuple[int, int]] = field(default_factory=set)
    steps: int = 0
    calls: int = 0
    allocations: int = 0

    def record(self, line: Optional[int], kind: str, address: Address) -> None:
        if line is None:  # pragma: no cover - defensive
            raise ConcreteTrap("pointer access with no source coordinate")
        self.accesses.setdefault((line, kind), set()).add(address.abstract())

    def total_accesses(self) -> int:
        return sum(len(s) for s in self.accesses.values())


class Interpreter:
    """Executes one translation unit starting from ``main``."""

    def __init__(self, ast: c_ast.FileAST,
                 step_budget: int = DEFAULT_STEP_BUDGET) -> None:
        self.ast = ast
        self.step_budget = step_budget
        self.trace = ConcreteTrace()
        self.functions: Dict[str, c_ast.FuncDef] = {}
        self.structs: Dict[str, List[Tuple[str, c_ast.Node]]] = {}
        self.globals: Dict[str, Instance] = {}
        self._collect()

    # -- setup -----------------------------------------------------------

    def _collect(self) -> None:
        for ext in self.ast.ext:
            if isinstance(ext, c_ast.FuncDef):
                self.functions[ext.decl.name] = ext
            self._collect_structs(ext)

    def _collect_structs(self, node) -> None:
        for _, child in node.children():
            if isinstance(child, c_ast.Struct) and child.decls:
                self.structs[child.name] = [
                    (d.name, d.type) for d in child.decls]
            self._collect_structs(child)

    def _init_globals(self) -> None:
        for ext in self.ast.ext:
            if not isinstance(ext, c_ast.Decl):
                continue
            if isinstance(ext.type, c_ast.FuncDecl):
                continue            # prototype
            if "extern" in (ext.storage or []):
                continue            # the malloc declaration
            inst = Instance(ext.name)
            self.globals[ext.name] = inst
            if ext.init is not None:
                inst.value = self._eval_init(ext.init, ext.type,
                                             self.globals)
                self._note_write(Address(inst), self._line(ext))
            else:  # zero-initialized, as C guarantees for statics
                inst.value = self._zero_value(ext.type)

    # -- declarations and initializers -----------------------------------

    def _struct_fields(self, type_node) -> Optional[List[Tuple[str, c_ast.Node]]]:
        """Field list when ``type_node`` names a struct, else None."""
        ty = type_node
        while isinstance(ty, c_ast.TypeDecl):
            ty = ty.type
        if isinstance(ty, c_ast.Struct):
            fields = self.structs.get(ty.name)
            if fields is None:
                raise ConcreteTrap(f"unknown struct {ty.name!r}")
            return fields
        return None

    def _zero_value(self, type_node):
        if isinstance(type_node, c_ast.ArrayDecl):
            length = int(type_node.dim.value)
            return ArrayVal({i: self._zero_value(type_node.type)
                             for i in range(length)})
        fields = self._struct_fields(type_node)
        if fields is not None:
            return StructVal({name: self._zero_value(ty)
                              for name, ty in fields})
        return 0          # ints and (null) pointers

    def _eval_init(self, init, type_node, env: Dict[str, Instance]):
        if isinstance(init, c_ast.InitList):
            if isinstance(type_node, c_ast.ArrayDecl):
                return ArrayVal({
                    i: self._eval_init(expr, type_node.type, env)
                    for i, expr in enumerate(init.exprs)})
            fields = self._struct_fields(type_node)
            if fields is None:
                raise ConcreteTrap("initializer list for a scalar")
            return StructVal({
                name: self._eval_init(expr, fty, env)
                for (name, fty), expr in zip(fields, init.exprs)})
        return _copy_value(self.eval(init, env))

    # -- storage access --------------------------------------------------

    def read(self, address: Address):
        value = address.instance.value
        for kind, key in address.ops:
            if not isinstance(value, dict) or key not in value:
                raise ConcreteTrap(
                    f"bad access path {address.render()!r}")
            value = value[key]
        if value is _UNINIT:
            raise ConcreteTrap(f"uninitialized read of {address.render()!r}")
        return value

    def write(self, address: Address, value) -> None:
        if not address.ops:
            address.instance.value = value
            return
        container = address.instance.value
        for kind, key in address.ops[:-1]:
            if not isinstance(container, dict) or key not in container:
                raise ConcreteTrap(
                    f"bad access path {address.render()!r}")
            container = container[key]
        kind, key = address.ops[-1]
        if not isinstance(container, dict):
            raise ConcreteTrap(f"bad access path {address.render()!r}")
        container[key] = value

    # -- write provenance (def→use flows for the slice oracle) -----------

    def _note_write(self, address: Address,
                    line: Optional[int]) -> None:
        """Record ``line`` as the definition of the cell at ``address``
        and clobber the records of the subtree it overwrote."""
        if line is None:
            return
        writes = address.instance.writes
        ops = address.ops
        stale = [known for known in writes
                 if len(known) > len(ops) and known[:len(ops)] == ops]
        for known in stale:
            del writes[known]
        writes[ops] = line

    def _def_line(self, address: Address) -> Optional[int]:
        """Longest-prefix provenance lookup: the line of the write that
        last covered the cell at ``address`` (an exact write, or the
        nearest enclosing aggregate copy), or None when the value
        predates any recorded write (zero init, parameter binding)."""
        writes = address.instance.writes
        best: Optional[int] = None
        best_len = -1
        for ops, line in writes.items():
            if (len(ops) <= len(address.ops) and len(ops) > best_len
                    and address.ops[:len(ops)] == ops):
                best, best_len = line, len(ops)
        return best

    def _record_read(self, line: Optional[int],
                     address: Address) -> None:
        """Record a pointer read, plus its def→use flow when the cell's
        defining write is known."""
        self.trace.record(line, "read", address)
        def_line = self._def_line(address)
        if def_line is not None and line is not None:
            self.trace.flows.add((def_line, line))

    # -- expression evaluation -------------------------------------------

    def _tick(self) -> None:
        self.trace.steps += 1
        if self.trace.steps > self.step_budget:
            raise ConcreteTrap("step budget exhausted (non-termination?)")

    def _line(self, node) -> Optional[int]:
        coord = getattr(node, "coord", None)
        return getattr(coord, "line", None)

    def lvalue(self, expr, env: Dict[str, Instance]
               ) -> Tuple[Address, bool]:
        """Resolve to (address, reached-through-a-pointer?)."""
        if isinstance(expr, c_ast.ID):
            inst = env.get(expr.name) or self.globals.get(expr.name)
            if inst is None:
                raise ConcreteTrap(f"unknown variable {expr.name!r}")
            return Address(inst), False
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "*":
            target = self.eval(expr.expr, env)
            if not isinstance(target, Address):
                raise ConcreteTrap("dereference of a non-pointer")
            return target, True
        if isinstance(expr, c_ast.StructRef):
            if expr.type == "->":
                target = self.eval(expr.name, env)
                if not isinstance(target, Address):
                    raise ConcreteTrap("-> on a non-pointer")
                return target.extend(("f", expr.field.name)), True
            base, via = self.lvalue(expr.name, env)
            return base.extend(("f", expr.field.name)), via
        if isinstance(expr, c_ast.ArrayRef):
            index = self.eval(expr.subscript, env)
            if not isinstance(index, int):
                raise ConcreteTrap("non-integer array index")
            base, via = self.lvalue(expr.name, env)
            container = self._peek(base)
            if isinstance(container, Address):
                # Indexing a pointer: reading the pointer itself is a
                # direct access; the element access goes through it.
                # p[i] is *(p + i) — offset the element the pointer
                # already designates instead of nesting a second index.
                if container.ops and container.ops[-1][0] == "ix":
                    kind, key = container.ops[-1]
                    return Address(
                        container.instance,
                        container.ops[:-1] + (("ix", key + index),)), True
                if index == 0:
                    return container, True
                raise ConcreteTrap(
                    "pointer arithmetic past a non-array cell")
            return base.extend(("ix", index)), via
        raise ConcreteTrap(f"unsupported lvalue {type(expr).__name__}")

    def _peek(self, address: Address):
        """Read without the uninitialized check (for decay decisions)."""
        value = address.instance.value
        for _, key in address.ops:
            if not isinstance(value, dict) or key not in value:
                return None
            value = value[key]
        return value

    def eval(self, expr, env: Dict[str, Instance]):
        self._tick()
        if isinstance(expr, c_ast.Constant):
            return int(expr.value, 0)
        if isinstance(expr, c_ast.ID):
            inst = env.get(expr.name) or self.globals.get(expr.name)
            if inst is None:
                if expr.name in self.functions:
                    return FuncRef(expr.name)
                raise ConcreteTrap(f"unknown identifier {expr.name!r}")
            value = inst.value
            if isinstance(value, ArrayVal):
                return Address(inst).extend(("ix", 0))   # array decay
            if value is _UNINIT:
                raise ConcreteTrap(f"uninitialized read of {expr.name!r}")
            return value
        if isinstance(expr, c_ast.UnaryOp):
            if expr.op == "&":
                address, _ = self.lvalue(expr.expr, env)
                return address
            if expr.op == "*":
                target = self.eval(expr.expr, env)
                if not isinstance(target, Address):
                    raise ConcreteTrap("dereference of a non-pointer")
                self._record_read(self._line(expr), target)
                value = self.read(target)
                if isinstance(value, ArrayVal):
                    return target.extend(("ix", 0))
                return value
            if expr.op == "sizeof":
                return 4
            if expr.op == "-":
                return -self.eval(expr.expr, env)
            if expr.op == "!":
                return int(not self.eval(expr.expr, env))
            raise ConcreteTrap(f"unsupported unary op {expr.op!r}")
        if isinstance(expr, c_ast.BinaryOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            return self._binop(expr.op, left, right)
        if isinstance(expr, (c_ast.ArrayRef, c_ast.StructRef)):
            address, via = self.lvalue(expr, env)
            if via:
                self._record_read(self._line(expr), address)
            value = self.read(address)
            if isinstance(value, ArrayVal):
                return address.extend(("ix", 0))
            return value
        if isinstance(expr, c_ast.FuncCall):
            return self.call(expr, env)
        if isinstance(expr, c_ast.Cast):
            return self.eval(expr.expr, env)
        raise ConcreteTrap(f"unsupported expression {type(expr).__name__}")

    @staticmethod
    def _binop(op: str, left, right):
        if op in ("+", "-") and isinstance(left, int) and isinstance(right, int):
            return left + right if op == "+" else left - right
        table = {"<": lambda: left < right, ">": lambda: left > right,
                 "<=": lambda: left <= right, ">=": lambda: left >= right,
                 "==": lambda: left == right, "!=": lambda: left != right}
        if op in table:
            try:
                return int(table[op]())
            except TypeError:
                raise ConcreteTrap(f"unordered comparison {op!r}")
        raise ConcreteTrap(f"unsupported binary op {op!r}")

    # -- calls -----------------------------------------------------------

    def call(self, expr: c_ast.FuncCall, env: Dict[str, Instance],
             caller: str = "?"):
        name_node = expr.name
        target: Optional[str] = None
        if isinstance(name_node, c_ast.ID):
            if name_node.name in env or name_node.name in self.globals:
                value = self.eval(name_node, env)
                if not isinstance(value, FuncRef):
                    raise ConcreteTrap("call through a non-function value")
                target = value.name
            else:
                target = name_node.name
        else:
            value = self.eval(name_node, env)
            if not isinstance(value, FuncRef):
                raise ConcreteTrap("call through a non-function value")
            target = value.name

        args = [self.eval(arg, env) for arg in (expr.args.exprs
                                                if expr.args else [])]
        if target == "malloc":
            line = self._line(expr)
            function = env.get("__function__")
            fname = function.value if function is not None else "?"
            self.trace.allocations += 1
            return Address(Instance(f"<heap:malloc@{fname}:{line}>"))
        func = self.functions.get(target)
        if func is None:
            raise ConcreteTrap(f"call to unknown function {target!r}")
        return self.run_function(func, args)

    def run_function(self, func: c_ast.FuncDef, args):
        self.trace.calls += 1
        name = func.decl.name
        env: Dict[str, Instance] = {"__function__": Instance("", name)}
        params = []
        decl_type = func.decl.type
        if decl_type.args is not None:
            params = [p for p in decl_type.args.params
                      if isinstance(p, c_ast.Decl)]
        if len(params) != len(args):
            raise ConcreteTrap(
                f"arity mismatch calling {name}: "
                f"{len(args)} args for {len(params)} params")
        for param, value in zip(params, args):
            inst = Instance(f"{name}::{param.name}", _copy_value(value))
            env[param.name] = inst
        try:
            self.exec_block(func.body, env, name)
        except _Return as ret:
            return ret.value
        return None

    # -- statements ------------------------------------------------------

    def exec_block(self, block, env: Dict[str, Instance],
                   function: str) -> None:
        if block is None:
            return
        items = block.block_items or []
        for stmt in items:
            self.exec_stmt(stmt, env, function)

    def exec_stmt(self, stmt, env: Dict[str, Instance],
                  function: str) -> None:
        try:
            self._exec_stmt(stmt, env, function)
        except ConcreteTrap as trap:
            if trap.line is None:
                trap.line = self._line(stmt)
            raise

    def _exec_stmt(self, stmt, env: Dict[str, Instance],
                   function: str) -> None:
        self._tick()
        if isinstance(stmt, c_ast.Decl):
            inst = Instance(f"{function}::{stmt.name}")
            env[stmt.name] = inst
            if stmt.init is not None:
                inst.value = self._eval_init(stmt.init, stmt.type, env)
                self._note_write(Address(inst), self._line(stmt))
            return
        if isinstance(stmt, c_ast.Assignment):
            if stmt.op != "=":
                raise ConcreteTrap(f"unsupported assignment {stmt.op!r}")
            value = self.eval(stmt.rvalue, env)
            address, via = self.lvalue(stmt.lvalue, env)
            if via:
                self.trace.record(self._line(stmt.lvalue), "write", address)
            self.write(address, _copy_value(value))
            self._note_write(address, self._line(stmt.lvalue))
            return
        if isinstance(stmt, c_ast.If):
            if self.eval(stmt.cond, env):
                self.exec_stmt(stmt.iftrue, env, function)
            elif stmt.iffalse is not None:
                self.exec_stmt(stmt.iffalse, env, function)
            return
        if isinstance(stmt, c_ast.While):
            while self.eval(stmt.cond, env):
                self.exec_stmt(stmt.stmt, env, function)
            return
        if isinstance(stmt, c_ast.Compound):
            self.exec_block(stmt, env, function)
            return
        if isinstance(stmt, c_ast.Return):
            raise _Return(self.eval(stmt.expr, env)
                          if stmt.expr is not None else None)
        if isinstance(stmt, c_ast.FuncCall):
            self.call(stmt, env)
            return
        if isinstance(stmt, c_ast.EmptyStatement):
            return
        raise ConcreteTrap(f"unsupported statement {type(stmt).__name__}")

    # -- entry point -----------------------------------------------------

    def run(self) -> ConcreteTrace:
        self._init_globals()
        main = self.functions.get("main")
        if main is None:
            raise ConcreteTrap("no main function")
        self.run_function(main, [])
        return self.trace


def interpret_source(source: str, name: str = "<fuzz>",
                     step_budget: int = DEFAULT_STEP_BUDGET) -> ConcreteTrace:
    """Parse (with the analysis' own frontend, so source coordinates
    match the lowering) and concretely execute ``source``."""
    ast = parse_source(source, filename=name)
    return Interpreter(ast, step_budget=step_budget).run()
