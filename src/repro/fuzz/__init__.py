"""Differential fuzzing of the points-to analyses.

The subsystem has four parts, mirroring the classic ground-truth
cross-checking methodology (cut-shortcut, GPG):

* :mod:`repro.fuzz.generator` — a seeded random generator of small,
  well-typed, UB-free pointer-manipulating C programs, emitting both
  the source text and an expected-feature manifest;
* :mod:`repro.fuzz.concrete` — a concrete interpreter over the
  pycparser AST (independent of the lowering *and* of the generator's
  internal representation) that records the exact set of abstract
  locations each indirect read/write touches during execution;
* :mod:`repro.fuzz.oracle` — the differential checker asserting the
  soundness lattice concrete ⊆ CS ⊆ CI ⊆ flow-insensitive at every
  indirect memory operation, plus determinism across worklist
  schedules, lowering-cache hit/miss, and ``--jobs`` fan-out;
* :mod:`repro.fuzz.shrink` — a greedy statement-tree minimizer that
  reduces any failing program before it is reported.

:mod:`repro.fuzz.mutations` provides named, deliberately broken
transfer rules used to prove the oracle actually catches unsoundness
(and that the shrinker produces small reproducers).
"""

from .generator import GeneratedProgram, generate_program
from .oracle import CheckReport, Violation, check_program
from .shrink import shrink_program

__all__ = [
    "CheckReport",
    "GeneratedProgram",
    "Violation",
    "check_program",
    "generate_program",
    "shrink_program",
]
