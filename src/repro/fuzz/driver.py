"""Fuzz campaign driver: generate → check → shrink → report.

One campaign runs ``count`` seeds starting at ``--seed``.  Every
program goes through the full differential oracle
(:func:`repro.fuzz.oracle.check_program`); failures are minimized by
the shrinker and written out as replayable artifacts::

    <artifacts>/<name>/
        original.c      the generated program that failed
        shrunk.c        the minimized reproducer
        manifest.json   seed, max_nodes, mutation, violations

Replaying is just ``repro fuzz --seed S --count 1`` (determinism is
part of the generator's contract) or ``repro analyze shrunk.c``.

``--mutate NAME`` installs one of the deliberately broken transfer
rules from :mod:`repro.fuzz.mutations` for the whole campaign — the
self-test proving the oracles can actually catch analysis bugs.

``--deep-every N`` additionally batches every N-th window of programs
through :func:`repro.fuzz.oracle.deep_checks`, which exercises the
parallel driver (``--jobs``) and the persistent lowering cache for
digest-level determinism.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .generator import GeneratedProgram, generate_program
from .mutations import MUTATIONS, SOURCE_MUTATIONS
from .oracle import CheckReport, Violation, check_program, deep_checks
from .shrink import shrink_program


@dataclass
class FuzzOutcome:
    """Result of checking one generated program."""

    name: str
    seed: int
    ok: bool
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    shrunk_lines: Optional[int] = None
    artifact_dir: Optional[str] = None


@dataclass
class FuzzReport:
    """A whole campaign: per-seed outcomes plus telemetry records."""

    outcomes: List[FuzzOutcome] = field(default_factory=list)
    deep_violations: List[Violation] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.deep_violations
                and all(outcome.ok for outcome in self.outcomes))

    @property
    def failures(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if not o.ok]


def _non_blank_lines(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())


def _write_artifacts(directory: Path, program: GeneratedProgram,
                     shrunk: Optional[GeneratedProgram],
                     outcome: FuzzOutcome,
                     mutation: Optional[str]) -> str:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "original.c").write_text(program.source)
    if shrunk is not None:
        (directory / "shrunk.c").write_text(shrunk.source)
    manifest = dict(program.manifest())
    manifest["mutation"] = mutation
    manifest["violations"] = [
        {"kind": v.kind, "line": v.line, "detail": v.detail}
        for v in outcome.violations]
    if shrunk is not None:
        manifest["shrunk_lines"] = outcome.shrunk_lines
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return str(directory)


def _shrink_failure(program: GeneratedProgram,
                    report: CheckReport) -> Optional[GeneratedProgram]:
    """Minimize, preserving the failure signature (set of violation
    kinds must stay a subset of the original's)."""
    signature = report.signature()

    def still_fails(source: str) -> bool:
        check = check_program(source, name="shrink")
        return (not check.ok) and check.signature() <= signature

    return shrink_program(program, still_fails)


def run_fuzz(start_seed: int = 0, count: int = 50, *,
             max_nodes: int = 80,
             mutate: Optional[str] = None,
             shrink: bool = True,
             deep_every: int = 0,
             deep_jobs: int = 2,
             artifacts: Optional[str] = None,
             fail_fast: bool = False,
             progress=None,
             summaries: bool = False) -> FuzzReport:
    """Run one fuzz campaign over ``count`` consecutive seeds.

    ``progress`` is an optional callable invoked with each
    :class:`FuzzOutcome` as it completes (the CLI prints from it).
    ``summaries=True`` adds the per-seed summary-equivalence leg
    (incremental solving must reproduce whole-program digests; see
    :func:`repro.fuzz.oracle.check_program`).
    """
    from ..telemetry import fuzz_record

    known = set(MUTATIONS) | set(SOURCE_MUTATIONS)
    if mutate is not None and mutate not in known:
        raise ValueError(f"unknown mutation {mutate!r}; expected one of "
                         f"{', '.join(sorted(known))}")
    source_mutation = SOURCE_MUTATIONS.get(mutate) if mutate else None
    context = MUTATIONS[mutate]() if mutate in MUTATIONS \
        else contextlib.nullcontext()
    report = FuzzReport()
    window: List[GeneratedProgram] = []

    with context:
        for index in range(count):
            seed = start_seed + index
            program = generate_program(seed, max_nodes=max_nodes)
            started = time.perf_counter()
            if source_mutation is not None:
                mutated = source_mutation(program.source)
                if mutated is None:
                    # No init whose removal yields an observed deref of
                    # an uninitialized pointer: nothing to assert here.
                    outcome = FuzzOutcome(
                        name=program.name, seed=seed, ok=True,
                        stats={"mutation_skipped": 1},
                        elapsed_seconds=time.perf_counter() - started)
                    report.outcomes.append(outcome)
                    report.records.append(
                        fuzz_record(outcome, mutation=mutate))
                    if progress is not None:
                        progress(outcome)
                    continue
                program = GeneratedProgram(
                    name=program.name, seed=program.seed, source=mutated,
                    features=dict(program.features), spec=program.spec)
                check = check_program(program.source, name=program.name,
                                      expect_trap="uninit",
                                      summaries=summaries)
            else:
                check = check_program(program.source, name=program.name,
                                      summaries=summaries)
            outcome = FuzzOutcome(
                name=program.name, seed=seed, ok=check.ok,
                violations=list(check.violations),
                stats=dict(check.stats),
                elapsed_seconds=time.perf_counter() - started)
            if not check.ok:
                # Source mutants are not shrunk: the shrinker's
                # signature check would chase the (expected) trap, not
                # the checker miss under investigation.
                shrink_this = shrink and source_mutation is None
                shrunk = _shrink_failure(program, check) \
                    if shrink_this else None
                if shrunk is not None:
                    outcome.shrunk_lines = _non_blank_lines(shrunk.source)
                if artifacts is not None:
                    outcome.artifact_dir = _write_artifacts(
                        Path(artifacts) / program.name, program, shrunk,
                        outcome, mutate)
            report.outcomes.append(outcome)
            report.records.append(fuzz_record(outcome, mutation=mutate))
            if progress is not None:
                progress(outcome)
            if not outcome.ok and fail_fast:
                return report

            if deep_every > 0 and check.ok and source_mutation is None:
                window.append(program)
                if len(window) >= deep_every:
                    deep = deep_checks(
                        [(p.name, p.source) for p in window],
                        jobs=deep_jobs)
                    report.deep_violations.extend(deep)
                    window.clear()
                    if deep and fail_fast:
                        return report
    return report
