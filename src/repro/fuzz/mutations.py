"""Deliberately broken transfer rules, as named context managers.

These exist to prove the oracles have teeth.  Each mutation is a
reversible monkey-patch installing one plausible analysis bug:

* ``overeager-strong-updates`` — every based access path reports
  itself strongly updateable, so updates through array elements, heap
  summaries, and recursive locals *kill* store pairs that other
  instances still hold.  Crucially, this patches the
  :class:`AccessPath` property that the CI/CS/FI solvers **and**
  :mod:`repro.analysis.verify` all consult — every analysis is wrong
  the same way, the solution is still a self-consistent fixpoint, and
  only the concrete-execution oracle can notice (a real execution
  reads a value the analyses swear was overwritten).  This is exactly
  the bug class the fixpoint verifier is documented not to catch.

* ``drop-alias-deps`` — the dependence-graph builder's alias test is
  narrowed to path *identity*, so a store reaches a load only when the
  written path and the load's footprint path are the same interned
  object.  Aggregate copies feeding later field reads, and any
  prefix/summary-aliased def→use pair, silently lose their ``mem``
  edges.  Solutions, checkers, and the fixpoint verifier are all
  untouched — only the slice oracle's concrete def→use flows (and the
  cross-schedule graph digest, which still agrees) can notice, which
  is exactly the tooth it exists to prove.

* ``cs-survive-dom`` — the context-sensitive survive rule tests plain
  ``dom`` instead of ``strong_dom``, so a may-alias location pair is
  treated as a must-overwrite and qualified store pairs vanish from
  update outputs.  The CI result is untouched, which makes this the
  regression target for :func:`repro.analysis.verify.verify_qualified`:
  the qualified-pair fixpoint check must flag the missing facts.

Interned paths/pairs are process-global, but both patches replace pure
*behaviour* (a property, a bound method), not cached data, so entering
and exiting the context is side-effect free.

A second registry, :data:`SOURCE_MUTATIONS`, mutates the *program*
instead of the analysis: ``drop-null-init`` removes a pointer
initializer so the concrete interpreter hits a genuine uninitialized
pointer read — the self-test for the checker oracle, which must see
the ``uninit`` checker cover that concrete hazard on every mutated
seed.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from ..analysis.sensitive import SensitiveAnalysis
from ..memory.access import AccessPath
from ..memory.relations import dom
from ..analysis.qualified import QualifiedPair


@contextmanager
def overeager_strong_updates():
    """Every based path claims ``strongly_updateable`` (unsound kills)."""
    original = AccessPath.strongly_updateable
    AccessPath.strongly_updateable = property(
        lambda self: self.base is not None)
    try:
        yield
    finally:
        AccessPath.strongly_updateable = original


@contextmanager
def drop_alias_deps():
    """Dependence edges only for *identical* written/footprint paths.

    Patches the module-level :data:`repro.analysis.depgraph.MAY_ALIAS`
    binding — access paths are interned, so the identity test keeps
    exact-path edges (the mutation stays plausible) while every
    prefix-, dom-, or summary-aliased dependence disappears.
    """
    from ..analysis import depgraph

    original = depgraph.MAY_ALIAS
    depgraph.MAY_ALIAS = lambda a, b: a is b
    try:
        yield
    finally:
        depgraph.MAY_ALIAS = original


@contextmanager
def cs_survive_dom():
    """CS survive rule uses may-alias ``dom`` as if it were must-alias."""
    original = SensitiveAnalysis._update_survive

    def broken(self, node, lp, sp):
        if self.prune.cannot_modify(node, sp.pair.path):
            self.flow_out(node.ostore, sp)
            return
        if dom(lp.pair.referent, sp.pair.path):   # should be strong_dom
            return
        a_l = self._loc_assumptions(node, lp.assumptions)
        self.flow_out(node.ostore,
                      QualifiedPair(sp.pair, a_l | sp.assumptions))

    SensitiveAnalysis._update_survive = broken
    try:
        yield
    finally:
        SensitiveAnalysis._update_survive = original


#: Name → context-manager factory, for ``repro fuzz --mutate``.
MUTATIONS = {
    "overeager-strong-updates": overeager_strong_updates,
    "drop-alias-deps": drop_alias_deps,
    "cs-survive-dom": cs_survive_dom,
}


# -- source mutations -------------------------------------------------------

#: A scalar pointer declaration with an initializer, as the generator
#: emits them (``int *v3 = &g0;``, ``int **v7 = &v3;``,
#: ``struct S0 *v4 = &v1;``) — pointer arrays (``int *v5[2] = ...``)
#: deliberately do not match.
_PTR_INIT = re.compile(
    r"^(?P<indent>\s*)(?P<type>int\s*\*{1,2}|struct\s+\w+\s*\*)\s*"
    r"(?P<name>\w+)\s*=\s*[^;]+;\s*$")


def drop_null_init_candidates(source: str
                              ) -> Iterator[Tuple[str, str]]:
    """Every single-init-removal mutant of ``source``.

    Yields ``(dropped variable, mutated source)`` with exactly one
    pointer declaration's initializer removed, leaving the variable
    genuinely uninitialized; line numbering is preserved so source
    coordinates in the original and the mutant agree.
    """
    lines = source.splitlines()
    for index, line in enumerate(lines):
        match = _PTR_INIT.match(line)
        if match is None:
            continue
        indent, ctype, name = match.group("indent", "type", "name")
        mutated = list(lines)
        mutated[index] = f"{indent}{ctype}{name};"
        yield name, "\n".join(mutated) + "\n"


def apply_drop_null_init(source: str) -> Optional[str]:
    """Pick a mutant whose execution provably reads the dropped
    pointer through a dereference.

    Runs each candidate concretely and keeps the first whose trap is
    an uninitialized read *of the dropped variable* at a line that
    dereferences it (``*v``, ``v->``, ``v[``) — i.e. a line the
    lowering gives a memory operation, so the ``uninit`` checker has a
    node to report.  A read that is a plain pointer copy traps
    concretely but has no memory operation (copies are sparse SSA
    edges), so those candidates are skipped.  Returns ``None`` when no
    candidate qualifies; the driver skips such seeds.
    """
    from .concrete import ConcreteTrap, interpret_source

    for name, mutated in drop_null_init_candidates(source):
        try:
            interpret_source(mutated, name="<mutant>")
        except ConcreteTrap as trap:
            message = str(trap)
            if not message.startswith(f"uninitialized read of '{name}"):
                continue
            if trap.line is None:
                continue
            text = mutated.splitlines()[trap.line - 1]
            if (f"*{name}" in text or f"{name}->" in text
                    or f"{name}[" in text):
                return mutated
    return None


#: Name → ``source -> mutated source | None``, for ``repro fuzz
#: --mutate``.  Unlike :data:`MUTATIONS` these break the *program*,
#: not the analysis: the oracle is expected to observe the injected
#: hazard (``expect_trap``), and a checker that misses it is the bug.
SOURCE_MUTATIONS = {
    "drop-null-init": apply_drop_null_init,
}
