"""Deliberately broken transfer rules, as named context managers.

These exist to prove the oracles have teeth.  Each mutation is a
reversible monkey-patch installing one plausible analysis bug:

* ``overeager-strong-updates`` — every based access path reports
  itself strongly updateable, so updates through array elements, heap
  summaries, and recursive locals *kill* store pairs that other
  instances still hold.  Crucially, this patches the
  :class:`AccessPath` property that the CI/CS/FI solvers **and**
  :mod:`repro.analysis.verify` all consult — every analysis is wrong
  the same way, the solution is still a self-consistent fixpoint, and
  only the concrete-execution oracle can notice (a real execution
  reads a value the analyses swear was overwritten).  This is exactly
  the bug class the fixpoint verifier is documented not to catch.

* ``cs-survive-dom`` — the context-sensitive survive rule tests plain
  ``dom`` instead of ``strong_dom``, so a may-alias location pair is
  treated as a must-overwrite and qualified store pairs vanish from
  update outputs.  The CI result is untouched, which makes this the
  regression target for :func:`repro.analysis.verify.verify_qualified`:
  the qualified-pair fixpoint check must flag the missing facts.

Interned paths/pairs are process-global, but both patches replace pure
*behaviour* (a property, a bound method), not cached data, so entering
and exiting the context is side-effect free.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..analysis.sensitive import SensitiveAnalysis
from ..memory.access import AccessPath
from ..memory.relations import dom
from ..analysis.qualified import QualifiedPair


@contextmanager
def overeager_strong_updates():
    """Every based path claims ``strongly_updateable`` (unsound kills)."""
    original = AccessPath.strongly_updateable
    AccessPath.strongly_updateable = property(
        lambda self: self.base is not None)
    try:
        yield
    finally:
        AccessPath.strongly_updateable = original


@contextmanager
def cs_survive_dom():
    """CS survive rule uses may-alias ``dom`` as if it were must-alias."""
    original = SensitiveAnalysis._update_survive

    def broken(self, node, lp, sp):
        if self.prune.cannot_modify(node, sp.pair.path):
            self.flow_out(node.ostore, sp)
            return
        if dom(lp.pair.referent, sp.pair.path):   # should be strong_dom
            return
        a_l = self._loc_assumptions(node, lp.assumptions)
        self.flow_out(node.ostore,
                      QualifiedPair(sp.pair, a_l | sp.assumptions))

    SensitiveAnalysis._update_survive = broken
    try:
        yield
    finally:
        SensitiveAnalysis._update_survive = original


#: Name → context-manager factory, for ``repro fuzz --mutate``.
MUTATIONS = {
    "overeager-strong-updates": overeager_strong_updates,
    "cs-survive-dom": cs_survive_dom,
}
