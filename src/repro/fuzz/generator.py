"""Seeded random generator of small, well-typed pointer C programs.

Programs are generated constructively so that three invariants hold on
every execution path — which is what lets the concrete interpreter be
used as a soundness oracle without ever tripping undefined behaviour:

* **no uninitialized reads** — every variable is initialized at its
  declaration, every ``malloc`` result is written immediately, and
  assignments preserve type validity;
* **no dangling pointers** — the address of a local is taken only in
  ``main`` (whose frame outlives every other frame), helpers take
  addresses of globals only, and nothing is ever freed;
* **termination** — loops count a reserved counter up to a small
  constant bound and recursive helpers decrement a depth argument.

The generated feature space covers the paper's pointer-usage
vocabulary: address-of (globals and ``main`` locals), one- and
two-level dereferences, structs (including a nested struct member),
arrays and pointer arrays, struct arrays, heap allocation, function
pointers, direct and recursive calls, branches, and loops.

Each program is emitted as source text plus an *expected-feature
manifest* (static counts of the constructs the generator placed), and
a structured :class:`ProgramSpec` that the shrinker edits.
"""

from __future__ import annotations

import copy
import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Struct definitions shared by every generated program that uses them.
STRUCT_LINES = [
    "struct S0 { int a; int *q; };",
    "struct S1 { int a; struct S0 in; int *r; };",
]

MALLOC_EXTERN = "extern void *malloc(unsigned long n);"

#: The one helper signature function pointers may target.
FPTR_SIG = "int *(*{name})(int *, int)"


# ---------------------------------------------------------------------------
# Structured program representation (what the shrinker edits)
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """One statement; ``if``/``while`` carry nested bodies."""

    kind: str = "simple"            # "simple" | "if" | "while"
    text: str = ""                  # simple statement line
    cond: str = ""                  # if/while condition
    body: List["Stmt"] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)
    init: str = ""                  # loop counter reset line
    step: str = ""                  # loop counter increment line
    removable: bool = True

    def render(self, out: List[str], indent: int) -> None:
        pad = "    " * indent
        if self.kind == "simple":
            out.append(pad + self.text)
        elif self.kind == "if":
            out.append(pad + f"if ({self.cond}) {{")
            for stmt in self.body:
                stmt.render(out, indent + 1)
            if self.orelse:
                out.append(pad + "} else {")
                for stmt in self.orelse:
                    stmt.render(out, indent + 1)
            out.append(pad + "}")
        elif self.kind == "while":
            out.append(pad + self.init)
            out.append(pad + f"while ({self.cond}) {{")
            for stmt in self.body:
                stmt.render(out, indent + 1)
            out.append("    " * (indent + 1) + self.step)
            out.append(pad + "}")
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown statement kind {self.kind!r}")


@dataclass
class FuncSpec:
    """One function: header, declarations, body tree, return line."""

    name: str
    header: str                      # e.g. "int *h0(int *a, int b)"
    decls: List[Tuple[str, str]] = field(default_factory=list)  # (var, line)
    body: List[Stmt] = field(default_factory=list)
    ret: Optional[str] = None        # final return line (None for void)

    def render(self, out: List[str]) -> None:
        out.append(self.header + " {")
        for _, line in self.decls:
            out.append("    " + line)
        for stmt in self.body:
            stmt.render(out, 1)
        if self.ret is not None:
            out.append("    " + self.ret)
        out.append("}")


@dataclass
class ProgramSpec:
    """A whole generated program in re-renderable, shrinkable form."""

    struct_lines: List[str] = field(default_factory=list)
    extern_lines: List[str] = field(default_factory=list)
    protos: List[str] = field(default_factory=list)
    globals_: List[Tuple[str, str]] = field(default_factory=list)
    funcs: List[FuncSpec] = field(default_factory=list)

    def render(self) -> str:
        out: List[str] = []
        out.extend(self.struct_lines)
        out.extend(self.extern_lines)
        out.extend(self.protos)
        for _, line in self.globals_:
            out.append(line)
        for func in self.funcs:
            func.render(out)
        return "\n".join(out) + "\n"

    def clone(self) -> "ProgramSpec":
        return copy.deepcopy(self)


@dataclass
class GeneratedProgram:
    """One generated program: source + manifest + shrinkable spec."""

    name: str
    seed: int
    source: str
    features: Dict[str, int]
    spec: ProgramSpec

    def manifest(self) -> Dict[str, object]:
        return {"name": self.name, "seed": self.seed,
                "features": dict(self.features)}


# ---------------------------------------------------------------------------
# Typed variable pool
# ---------------------------------------------------------------------------

#: Generator-internal type codes.
INT, PINT, PPINT, AINT, APINT, S0, S1, AS0, PS0, FPTR = (
    "int", "pint", "ppint", "aint", "apint", "s0", "s1", "as0", "ps0", "fp")

#: Menu of extra-variable types with generation weights.
_GLOBAL_MENU = [(INT, 4), (PINT, 4), (PPINT, 2), (AINT, 2), (APINT, 2),
                (S0, 2), (S1, 1), (AS0, 1), (PS0, 2), (FPTR, 1)]
_MAIN_MENU = _GLOBAL_MENU
_HELPER_MENU = [(INT, 4), (PINT, 4), (PPINT, 1), (PS0, 1)]


@dataclass
class Var:
    name: str
    ty: str
    scope: str           # "global" | function name
    #: Loop counters: readable, but never written or address-taken by
    #: generated statements (termination depends on it).
    reserved: bool = False


class _Weighted:
    """Deterministic weighted choice over (item, weight) pairs."""

    def __init__(self, rng: random.Random, items) -> None:
        self.rng = rng
        self.items = [it for it, _ in items]
        self.weights = [w for _, w in items]

    def pick(self):
        return self.rng.choices(self.items, weights=self.weights, k=1)[0]


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


class _Generator:
    def __init__(self, seed: int, max_nodes: int) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.max_nodes = max(16, max_nodes)
        self.features: Dict[str, int] = {
            "helpers": 0, "recursive_helpers": 0, "fptr_helpers": 0,
            "loops": 0, "conditionals": 0, "mallocs": 0, "calls": 0,
            "fptr_calls": 0, "indirect_reads": 0, "indirect_writes": 0,
            "address_of_local": 0, "struct_vars": 0, "array_vars": 0,
            "statements": 0, "globals": 0, "locals": 0,
        }
        self.spec = ProgramSpec()
        self.globals: List[Var] = []
        self._counter = 0

    # -- naming ----------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        name = f"{prefix}{self._counter}"
        self._counter += 1
        return name

    # -- variable pools --------------------------------------------------

    def vars_of(self, ty: str, scope: str, pool: List[Var]) -> List[Var]:
        """Visible variables of one type: globals plus ``scope`` locals."""
        return [v for v in self.globals + pool
                if v.ty == ty and v.scope in ("global", scope)]

    # -- declaration rendering -------------------------------------------

    def decl_line(self, var: Var, scope: str, pool: List[Var]) -> str:
        """Declaration with a guaranteed-valid initializer.

        ``pool`` holds the *earlier* declarations of the same scope, so
        initializers only ever reference storage that already exists.
        """
        rng = self.rng
        name = var.name
        if var.ty == INT:
            return f"int {name} = {rng.randrange(10)};"
        if var.ty == PINT:
            return f"int *{name} = {self.int_target(scope, pool)};"
        if var.ty == PPINT:
            target = self.pint_var_target(scope, pool)
            return f"int **{name} = {target};"
        if var.ty == AINT:
            vals = ", ".join(str(rng.randrange(10)) for _ in range(3))
            return f"int {name}[3] = {{{vals}}};"
        if var.ty == APINT:
            a = self.int_target(scope, pool)
            b = self.int_target(scope, pool)
            return f"int *{name}[2] = {{{a}, {b}}};"
        if var.ty == S0:
            return (f"struct S0 {name} = "
                    f"{{{rng.randrange(10)}, {self.int_target(scope, pool)}}};")
        if var.ty == S1:
            return (f"struct S1 {name} = {{{rng.randrange(10)}, "
                    f"{{{rng.randrange(10)}, {self.int_target(scope, pool)}}}, "
                    f"{self.int_target(scope, pool)}}};")
        if var.ty == AS0:
            one = f"{{{rng.randrange(10)}, {self.int_target(scope, pool)}}}"
            two = f"{{{rng.randrange(10)}, {self.int_target(scope, pool)}}}"
            return f"struct S0 {name}[2] = {{{one}, {two}}};"
        if var.ty == PS0:
            return f"struct S0 *{name} = {self.s0_target(scope, pool)};"
        if var.ty == FPTR:
            callee = rng.choice(self.fptr_helpers).name
            return FPTR_SIG.format(name=name) + f" = {callee};"
        raise ValueError(f"unknown type {var.ty!r}")  # pragma: no cover

    # -- address expressions ---------------------------------------------

    def _addressable(self, tys: Tuple[str, ...], scope: str,
                     pool: List[Var]) -> List[Var]:
        """Variables whose address may be taken in ``scope``: globals
        everywhere, locals only inside ``main`` (whose frame outlives
        all helper activity)."""
        ok_scopes = ("global", "main") if scope == "main" else ("global",)
        return [v for v in self.globals + pool
                if v.ty in tys and v.scope in ok_scopes and not v.reserved]

    def int_target(self, scope: str, pool: List[Var]) -> str:
        """An ``int *``-valued address expression that is always valid."""
        rng = self.rng
        choices = []
        for v in self._addressable((INT,), scope, pool):
            choices.append(f"&{v.name}")
            if v.scope != "global":
                choices.append(None)  # placeholder: count local-address
        for v in self._addressable((AINT,), scope, pool):
            choices.append(f"&{v.name}[{rng.randrange(3)}]")
            choices.append(v.name)           # array decay
        for v in self._addressable((S0,), scope, pool):
            choices.append(f"&{v.name}.a")
        choices = [c for c in choices if c is not None]
        text = rng.choice(choices) if choices else "&g0"
        if text.startswith("&") and "::" not in text:
            stripped = text[1:].split("[")[0].split(".")[0]
            if any(v.name == stripped and v.scope == "main"
                   for v in pool) and scope == "main":
                self.features["address_of_local"] += 1
        return text

    def pint_var_target(self, scope: str, pool: List[Var]) -> str:
        """An ``int **``-valued address expression (``&p``)."""
        candidates = self._addressable((PINT,), scope, pool)
        if not candidates:
            return "&gp"
        return f"&{self.rng.choice(candidates).name}"

    def s0_target(self, scope: str, pool: List[Var]) -> str:
        """A ``struct S0 *``-valued address expression."""
        rng = self.rng
        choices = []
        for v in self._addressable((S0,), scope, pool):
            choices.append(f"&{v.name}")
        for v in self._addressable((AS0,), scope, pool):
            choices.append(f"&{v.name}[{rng.randrange(2)}]")
        for v in self._addressable((S1,), scope, pool):
            choices.append(f"&{v.name}.in")
        return rng.choice(choices) if choices else "&gs"

    # -- expressions -----------------------------------------------------

    def int_expr(self, scope: str, pool: List[Var], depth: int = 0) -> str:
        rng = self.rng
        atoms = [str(rng.randrange(10))]
        for v in self.vars_of(INT, scope, pool):
            atoms.append(v.name)
        for v in self.vars_of(AINT, scope, pool):
            atoms.append(f"{v.name}[{rng.randrange(3)}]")
        for v in self.vars_of(S0, scope, pool):
            atoms.append(f"{v.name}.a")
        for v in self.vars_of(S1, scope, pool):
            atoms.append(rng.choice([f"{v.name}.a", f"{v.name}.in.a"]))
        for v in self.vars_of(AS0, scope, pool):
            atoms.append(f"{v.name}[{rng.randrange(2)}].a")
        derefs = []
        for v in self.vars_of(PINT, scope, pool):
            derefs.append(f"*{v.name}")
        for v in self.vars_of(PS0, scope, pool):
            derefs.append(f"{v.name}->a")
        for v in self.vars_of(PPINT, scope, pool):
            derefs.append(f"**{v.name}")
        if derefs and rng.random() < 0.55:
            text = rng.choice(derefs)
            self.features["indirect_reads"] += 2 if text.startswith("**") else 1
            atoms = [text]
        if depth < 1 and rng.random() < 0.3:
            op = rng.choice(["+", "-"])
            return (f"({rng.choice(atoms)} {op} "
                    f"{self.int_expr(scope, pool, depth + 1)})")
        return rng.choice(atoms)

    def pint_expr(self, scope: str, pool: List[Var]) -> str:
        rng = self.rng
        choices = []
        for v in self.vars_of(PINT, scope, pool):
            choices.append((v.name, 0))
        for v in self.vars_of(S0, scope, pool):
            choices.append((f"{v.name}.q", 0))
        for v in self.vars_of(S1, scope, pool):
            choices.append((rng.choice([f"{v.name}.r", f"{v.name}.in.q"]), 0))
        for v in self.vars_of(AS0, scope, pool):
            choices.append((f"{v.name}[{rng.randrange(2)}].q", 0))
        for v in self.vars_of(APINT, scope, pool):
            choices.append((f"{v.name}[{rng.randrange(2)}]", 0))
        for v in self.vars_of(PS0, scope, pool):
            choices.append((f"{v.name}->q", 1))
        for v in self.vars_of(PPINT, scope, pool):
            choices.append((f"*{v.name}", 1))
        choices.append((self.int_target(scope, pool), 0))
        text, derefs = rng.choice(choices)
        self.features["indirect_reads"] += derefs
        return text

    def cond_expr(self, scope: str, pool: List[Var]) -> str:
        rng = self.rng
        ints = [v.name for v in self.vars_of(INT, scope, pool)]
        left = rng.choice(ints) if ints else str(rng.randrange(3))
        op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
        right = (rng.choice(ints) if ints and rng.random() < 0.4
                 else str(rng.randrange(6)))
        return f"{left} {op} {right}"

    # -- statements ------------------------------------------------------

    def statement(self, scope: str, pool: List[Var]) -> Optional[Stmt]:
        """One random simple statement valid in ``scope``."""
        rng = self.rng
        kinds: List[Tuple[str, int]] = [
            ("int_write", 5), ("ptr_write", 5), ("ptr_reseat", 3),
            ("pp_write", 2), ("struct_write", 2), ("struct_copy", 1),
        ]
        if scope == "main" or self.vars_of(PINT, scope, pool):
            kinds.append(("malloc", 1))
        if self.callable_helpers(scope):
            kinds.append(("call", 2))
        # Function-pointer calls only from main: a helper calling
        # through a global fp could re-enter itself unboundedly.
        if scope == "main" and self.vars_of(FPTR, scope, pool):
            kinds.append(("fptr_call", 2))
        kind = _Weighted(rng, kinds).pick()
        builder = getattr(self, f"_stmt_{kind}")
        return builder(scope, pool)

    def _int_lvalue(self, scope: str, pool: List[Var]) -> Tuple[str, int]:
        rng = self.rng
        choices: List[Tuple[str, int]] = []
        for v in self.vars_of(INT, scope, pool):
            if not v.reserved:
                choices.append((v.name, 0))
        for v in self.vars_of(AINT, scope, pool):
            choices.append((f"{v.name}[{rng.randrange(3)}]", 0))
        for v in self.vars_of(S0, scope, pool):
            choices.append((f"{v.name}.a", 0))
        for v in self.vars_of(S1, scope, pool):
            choices.append((f"{v.name}.in.a", 0))
        for v in self.vars_of(PINT, scope, pool):
            choices.append((f"*{v.name}", 1))
        for v in self.vars_of(PS0, scope, pool):
            choices.append((f"{v.name}->a", 1))
        for v in self.vars_of(PPINT, scope, pool):
            choices.append((f"**{v.name}", 2))
        return rng.choice(choices) if choices else ("g0", 0)

    def _stmt_int_write(self, scope, pool) -> Stmt:
        lval, derefs = self._int_lvalue(scope, pool)
        self.features["indirect_writes"] += 1 if derefs else 0
        self.features["indirect_reads"] += max(0, derefs - 1)
        return Stmt(text=f"{lval} = {self.int_expr(scope, pool)};")

    def _pint_lvalue(self, scope: str, pool: List[Var]) -> Tuple[str, int]:
        rng = self.rng
        choices: List[Tuple[str, int]] = []
        for v in self.vars_of(S0, scope, pool):
            choices.append((f"{v.name}.q", 0))
        for v in self.vars_of(S1, scope, pool):
            choices.append((rng.choice([f"{v.name}.r", f"{v.name}.in.q"]), 0))
        for v in self.vars_of(APINT, scope, pool):
            choices.append((f"{v.name}[{rng.randrange(2)}]", 0))
        for v in self.vars_of(AS0, scope, pool):
            choices.append((f"{v.name}[{rng.randrange(2)}].q", 0))
        for v in self.vars_of(PS0, scope, pool):
            choices.append((f"{v.name}->q", 1))
        for v in self.vars_of(PPINT, scope, pool):
            choices.append((f"*{v.name}", 1))
        return rng.choice(choices) if choices else ("gp", 0)

    def _stmt_ptr_write(self, scope, pool) -> Stmt:
        lval, derefs = self._pint_lvalue(scope, pool)
        self.features["indirect_writes"] += 1 if derefs else 0
        return Stmt(text=f"{lval} = {self.pint_expr(scope, pool)};")

    def _stmt_ptr_reseat(self, scope, pool) -> Optional[Stmt]:
        candidates = self.vars_of(PINT, scope, pool)
        if not candidates:
            return self._stmt_int_write(scope, pool)
        var = self.rng.choice(candidates)
        return Stmt(text=f"{var.name} = {self.pint_expr(scope, pool)};")

    def _stmt_pp_write(self, scope, pool) -> Optional[Stmt]:
        candidates = self.vars_of(PPINT, scope, pool)
        if not candidates:
            return self._stmt_ptr_reseat(scope, pool)
        var = self.rng.choice(candidates)
        return Stmt(
            text=f"{var.name} = {self.pint_var_target(scope, pool)};")

    def _stmt_struct_write(self, scope, pool) -> Optional[Stmt]:
        candidates = self.vars_of(PS0, scope, pool)
        if not candidates:
            return self._stmt_ptr_write(scope, pool)
        var = self.rng.choice(candidates)
        return Stmt(text=f"{var.name} = {self.s0_target(scope, pool)};")

    def _stmt_struct_copy(self, scope, pool) -> Optional[Stmt]:
        s0_vars = self.vars_of(S0, scope, pool)
        ps0_vars = self.vars_of(PS0, scope, pool)
        rng = self.rng
        if s0_vars and ps0_vars and rng.random() < 0.6:
            dst = rng.choice(ps0_vars)
            src = rng.choice(s0_vars)
            self.features["indirect_writes"] += 1
            return Stmt(text=f"*{dst.name} = {src.name};")
        if len(s0_vars) >= 2:
            dst, src = rng.sample(s0_vars, 2)
            return Stmt(text=f"{dst.name} = {src.name};")
        return self._stmt_ptr_write(scope, pool)

    def _stmt_malloc(self, scope, pool) -> Optional[Stmt]:
        candidates = self.vars_of(PINT, scope, pool)
        if not candidates:
            return self._stmt_int_write(scope, pool)
        var = self.rng.choice(candidates)
        self.features["mallocs"] += 1
        self.features["indirect_writes"] += 1
        # One line on purpose: the immediate initializing write keeps
        # every later read through an alias defined, and an atomic
        # malloc+init survives shrinking as a unit.
        return Stmt(text=f"{var.name} = malloc(sizeof(int)); "
                         f"*{var.name} = {self.rng.randrange(10)};")

    def callable_helpers(self, scope: str) -> List["_Helper"]:
        if scope == "main":
            return list(self.helpers)
        # helpers only call earlier helpers (no accidental cycles)
        index = next((i for i, h in enumerate(self.helpers)
                      if h.name == scope), 0)
        return self.helpers[:index]

    def _stmt_call(self, scope, pool) -> Optional[Stmt]:
        callable_ = self.callable_helpers(scope)
        if not callable_:
            return self._stmt_int_write(scope, pool)
        helper = self.rng.choice(callable_)
        self.features["calls"] += 1
        return Stmt(text=self._call_text(helper.name, helper.sig, scope, pool))

    def _call_text(self, name: str, sig: str, scope, pool) -> str:
        rng = self.rng
        if sig == "A":      # int *f(int *, int)
            arg = self.pint_expr(scope, pool)
            depth = rng.randrange(4)
            targets = self.vars_of(PINT, scope, pool)
            if targets:
                return f"{rng.choice(targets).name} = {name}({arg}, {depth});"
            return f"{name}({arg}, {depth});"
        # sig "B": int f(int *, int *)
        a = self.pint_expr(scope, pool)
        b = self.pint_expr(scope, pool)
        targets = [v for v in self.vars_of(INT, scope, pool)
                   if not v.reserved]
        if targets:
            return f"{rng.choice(targets).name} = {name}({a}, {b});"
        return f"{name}({a}, {b});"

    def _stmt_fptr_call(self, scope, pool) -> Optional[Stmt]:
        fps = self.vars_of(FPTR, scope, pool)
        if not fps:
            return self._stmt_int_write(scope, pool)
        rng = self.rng
        fp = rng.choice(fps)
        if rng.random() < 0.4 and self.fptr_helpers:
            return Stmt(text=f"{fp.name} = "
                             f"{rng.choice(self.fptr_helpers).name};")
        self.features["fptr_calls"] += 1
        arg = self.pint_expr(scope, pool)
        targets = self.vars_of(PINT, scope, pool)
        if targets:
            return Stmt(text=f"{rng.choice(targets).name} = "
                             f"{fp.name}({arg}, {rng.randrange(3)});")
        return Stmt(text=f"{fp.name}({arg}, {rng.randrange(3)});")

    # -- blocks ----------------------------------------------------------

    def block(self, scope: str, pool: List[Var], budget: int,
              depth: int, loop_vars: List[str]) -> List[Stmt]:
        stmts: List[Stmt] = []
        rng = self.rng
        while budget > 0:
            roll = rng.random()
            if depth < 2 and roll < 0.12 and budget >= 3:
                cond = self.cond_expr(scope, pool)
                body = self.block(scope, pool, min(budget - 2, 3),
                                  depth + 1, loop_vars)
                orelse = []
                if rng.random() < 0.5:
                    orelse = self.block(scope, pool, min(budget - 2, 2),
                                        depth + 1, loop_vars)
                self.features["conditionals"] += 1
                stmts.append(Stmt(kind="if", cond=cond, body=body,
                                  orelse=orelse))
                budget -= 2 + len(body) + len(orelse)
            elif depth < 1 and loop_vars and roll < 0.22 and budget >= 4:
                counter = loop_vars.pop()
                bound = rng.randrange(1, 4)
                body = self.block(scope, pool, min(budget - 3, 4),
                                  depth + 1, [])
                self.features["loops"] += 1
                stmts.append(Stmt(
                    kind="while", cond=f"{counter} < {bound}",
                    init=f"{counter} = 0;",
                    step=f"{counter} = {counter} + 1;", body=body))
                budget -= 3 + len(body)
            else:
                stmt = self.statement(scope, pool)
                if stmt is not None:
                    stmts.append(stmt)
                    self.features["statements"] += 1
                budget -= 1
        return stmts

    # -- functions -------------------------------------------------------

    def make_helpers(self) -> None:
        rng = self.rng
        count = rng.randrange(1, 4)
        self.helpers: List[_Helper] = []
        self.fptr_helpers: List[_Helper] = []
        for i in range(count):
            name = f"h{i}"
            if i == 0:
                sig = "A"       # guaranteed function-pointer target
            else:
                sig = rng.choice(["A", "A", "B", "R"])
            recursive = sig == "R"
            if recursive:
                sig = "A"       # same C signature, recursive body
            helper = _Helper(name, sig, recursive)
            self.helpers.append(helper)
            if sig == "A":
                self.fptr_helpers.append(helper)
            self.features["helpers"] += 1
            if recursive:
                self.features["recursive_helpers"] += 1
        self.features["fptr_helpers"] = len(self.fptr_helpers)

    def build_helper(self, helper: "_Helper") -> FuncSpec:
        rng = self.rng
        scope = helper.name
        if helper.sig == "A":
            header = f"int *{helper.name}(int *a, int b)"
            # In a recursive helper, b is the decreasing depth bound;
            # generated statements must never overwrite it.
            params = [Var("a", PINT, scope),
                      Var("b", INT, scope, reserved=helper.recursive)]
        else:
            header = f"int {helper.name}(int *a, int *b)"
            params = [Var("a", PINT, scope), Var("b", PINT, scope)]
        pool: List[Var] = list(params)
        func = FuncSpec(helper.name, header)
        for _ in range(rng.randrange(0, 3)):
            ty = _Weighted(rng, _HELPER_MENU).pick()
            var = Var(self.fresh("v"), ty, scope)
            func.decls.append((var.name, self.decl_line(var, scope, pool)))
            pool.append(var)
            self.features["locals"] += 1
        budget = rng.randrange(2, 5)
        if helper.recursive:
            # Depth-bounded self recursion: base case first, one
            # recursive tail call; the depth argument strictly decreases.
            func.body.append(Stmt(kind="if", cond="b <= 0",
                                  body=[Stmt(text="return a;",
                                             removable=False)],
                                  removable=False))
            # Clamp the depth: call sites pass arbitrary runtime ints,
            # and the concrete interpreter recurses on the host stack.
            func.body.append(Stmt(kind="if", cond="b > 8",
                                  body=[Stmt(text="b = 8;",
                                             removable=False)],
                                  removable=False))
            func.body.extend(self.block(scope, pool, budget, 0, []))
            self.features["calls"] += 1
            func.ret = (f"return {helper.name}"
                        f"({self.pint_expr(scope, pool)}, b - 1);")
        else:
            func.body.extend(self.block(scope, pool, budget, 0, []))
            if helper.sig == "A":
                ret = rng.choice(["a", self.pint_expr(scope, pool)])
                func.ret = f"return {ret};"
            else:
                func.ret = f"return {self.int_expr(scope, pool)};"
        return func

    def build_main(self) -> FuncSpec:
        rng = self.rng
        scope = "main"
        pool: List[Var] = []
        func = FuncSpec("main", "int main(void)")
        loop_vars = []
        for i in range(2):
            counter = f"li{i}"
            func.decls.append((counter, f"int {counter} = 0;"))
            pool.append(Var(counter, INT, scope, reserved=True))
            loop_vars.append(counter)
        for _ in range(rng.randrange(2, 7)):
            ty = _Weighted(rng, _MAIN_MENU).pick()
            var = Var(self.fresh("v"), ty, scope)
            func.decls.append((var.name, self.decl_line(var, scope, pool)))
            pool.append(var)
            self.features["locals"] += 1
            if ty in (S0, S1, AS0, PS0):
                self.features["struct_vars"] += 1
            if ty in (AINT, APINT, AS0):
                self.features["array_vars"] += 1
        budget = max(6, self.max_nodes // 2 - len(func.decls))
        func.body = self.block(scope, pool, budget, 0, loop_vars)
        func.ret = "return 0;"
        return func

    # -- assembly --------------------------------------------------------

    def generate(self, name: str) -> GeneratedProgram:
        rng = self.rng
        self.make_helpers()

        # Base globals every program can rely on as address targets.
        base = [
            (Var("g0", INT, "global"), "int g0 = 1;"),
            (Var("g1", INT, "global"), "int g1 = 2;"),
            (Var("ga", AINT, "global"), "int ga[3] = {1, 2, 3};"),
            (Var("gp", PINT, "global"), "int *gp = &g0;"),
            (Var("gs", S0, "global"), "struct S0 gs = {3, &g1};"),
        ]
        for var, line in base:
            self.globals.append(var)
            self.spec.globals_.append((var.name, line))
        for _ in range(rng.randrange(2, 7)):
            ty = _Weighted(rng, _GLOBAL_MENU).pick()
            var = Var(self.fresh("x"), ty, "global")
            line = self.decl_line(var, "global", [])
            self.globals.append(var)
            self.spec.globals_.append((var.name, line))
            if ty in (S0, S1, AS0, PS0):
                self.features["struct_vars"] += 1
            if ty in (AINT, APINT, AS0):
                self.features["array_vars"] += 1
        self.features["globals"] = len(self.globals)

        for helper in self.helpers:
            self.spec.funcs.append(self.build_helper(helper))
        self.spec.funcs.append(self.build_main())

        self.spec.struct_lines = list(STRUCT_LINES)
        self.spec.extern_lines = [MALLOC_EXTERN]
        for helper in self.helpers:
            if helper.sig == "A":
                self.spec.protos.append(
                    f"int *{helper.name}(int *a, int b);")
            else:
                self.spec.protos.append(
                    f"int {helper.name}(int *a, int *b);")

        prune_unused(self.spec)
        source = self.spec.render()
        return GeneratedProgram(name=name, seed=self.seed, source=source,
                                features=dict(self.features), spec=self.spec)


@dataclass
class _Helper:
    name: str
    sig: str            # "A": int *(int *, int);  "B": int (int *, int *)
    recursive: bool


# ---------------------------------------------------------------------------
# Spec pruning (shared with the shrinker)
# ---------------------------------------------------------------------------

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _words(text: str) -> set:
    return set(_WORD.findall(text))


def prune_unused(spec: ProgramSpec) -> bool:
    """Drop unreferenced helpers, globals, prototypes, and headers.

    Operates to a fixpoint; returns True when anything was removed.
    Keeps the spec closed: a declaration is retained while any other
    retained line mentions its name.
    """
    removed_any = False
    while True:
        body_words: set = set()
        for func in spec.funcs:
            lines: List[str] = []
            func.render(lines)
            for line in lines:
                body_words |= _words(line)
        for _, line in spec.globals_:
            body_words |= _words(line)

        removed = False
        keep_funcs = []
        for func in spec.funcs:
            if func.name == "main":
                keep_funcs.append(func)
                continue
            # referenced anywhere outside its own definition?
            own: List[str] = []
            func.render(own)
            own_words = set()
            for line in own:
                own_words |= _words(line)
            others: set = set()
            for other in spec.funcs:
                if other is func:
                    continue
                lines = []
                other.render(lines)
                for line in lines:
                    others |= _words(line)
            for _, line in spec.globals_:
                others |= _words(line)
            if func.name in others:
                keep_funcs.append(func)
            else:
                removed = True
        spec.funcs = keep_funcs

        used: set = set()
        for func in spec.funcs:
            lines = []
            func.render(lines)
            for line in lines:
                used |= _words(line)
        keep_globals = []
        for name, line in spec.globals_:
            other_inits = {n: l for n, l in spec.globals_ if n != name}
            refs = set()
            for l in other_inits.values():
                refs |= _words(l)
            if name in used or name in refs:
                keep_globals.append((name, line))
            else:
                removed = True
        # re-check: dropping a global may orphan another one's only use
        spec.globals_ = keep_globals

        all_words: set = set()
        for func in spec.funcs:
            lines = []
            func.render(lines)
            for line in lines:
                all_words |= _words(line)
        for _, line in spec.globals_:
            all_words |= _words(line)

        new_protos = [p for p in spec.protos
                      if _WORD.search(p) and
                      _WORD.search(p).group(0) in ("int",) and
                      any(f.name in _words(p) for f in spec.funcs)]
        if len(new_protos) != len(spec.protos):
            removed = True
        spec.protos = new_protos

        new_externs = [e for e in spec.extern_lines
                       if _words(e) & all_words - {"extern", "void",
                                                   "unsigned", "long", "n"}]
        if len(new_externs) != len(spec.extern_lines):
            removed = True
        spec.extern_lines = new_externs

        new_structs = []
        for line in spec.struct_lines:
            tag = line.split()[1]
            later_struct_use = any(tag in _words(other)
                                   for other in spec.struct_lines
                                   if other != line)
            if tag in all_words or later_struct_use:
                new_structs.append(line)
            else:
                removed = True
        spec.struct_lines = new_structs

        removed_any |= removed
        if not removed:
            return removed_any


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def generate_program(seed: int, max_nodes: int = 80,
                     name: Optional[str] = None) -> GeneratedProgram:
    """Generate one program deterministically from ``seed``.

    ``max_nodes`` bounds the statement budget (and hence, roughly, the
    lowered VDG size).  The same ``(seed, max_nodes)`` always produces
    byte-identical source.
    """
    return _Generator(seed, max_nodes).generate(
        name if name is not None else f"fuzz-{seed}")
