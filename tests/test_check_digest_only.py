"""The digest-only fast path of ``run_check_report``.

The serve daemon and determinism cross-checks compare finding digests
and never read a finding — shipping fully-pickled finding lists (one
per flavor per program) across the pool for that is pure IPC waste.
``digest_only=True`` computes the digests worker-side and drops the
findings; these tests pin the contract: identical digests, identical
telemetry (including the dense decode-call footprint — the fast path
must not sneak in extra bitset decodes), and no findings on the wire.
"""

from __future__ import annotations

import pickle

from repro.analysis.checkers import findings_digest
from repro.runner import run_check_report

NAMES = ("anagram", "part")
FLAVORS = ("insensitive", "flowinsensitive")


def _by_name(report):
    return {outcome.name: outcome for outcome in report.outcomes}


def test_digest_only_matches_full_findings(tmp_path):
    cache = str(tmp_path)
    full = _by_name(run_check_report(names=NAMES, flavors=FLAVORS,
                                     cache=cache))
    fast = _by_name(run_check_report(names=NAMES, flavors=FLAVORS,
                                     cache=cache, digest_only=True))
    assert set(full) == set(fast) == set(NAMES)
    for name in NAMES:
        want = {flavor: findings_digest(found)
                for flavor, found in full[name].findings.items()}
        assert fast[name].digests == want
        assert fast[name].findings is None  # nothing crossed the pipe


def test_digest_only_records_are_equivalent(tmp_path):
    """Same counts, same digests, same decode-call footprint: the fast
    path changes what is *shipped*, not what is *done*."""
    cache = str(tmp_path)
    full = run_check_report(names=NAMES, flavors=FLAVORS, cache=cache)
    fast = run_check_report(names=NAMES, flavors=FLAVORS, cache=cache,
                            digest_only=True)

    def comparable(report):
        rows = {}
        for rec in report.records:
            assert rec["kind"] == "check"
            dense = rec["dense"]
            # The digest must come for free: computing it worker-side
            # may not add a single bitset→object decode beyond the
            # checker sweep itself.
            rows[(rec["program"], rec["flavor"])] = (
                rec["findings"], rec["by_checker"], rec["by_severity"],
                rec["digest"],
                dense["decode_calls_after"] - dense["decode_calls_before"])
        return rows

    assert comparable(fast) == comparable(full)


def test_digest_only_shrinks_the_wire_format(tmp_path):
    """The outcome object itself must be materially smaller — that is
    the point of the fast path (pool workers return pickled outcomes)."""
    cache = str(tmp_path)
    full = _by_name(run_check_report(names=("anagram",),
                                     flavors=FLAVORS, cache=cache))
    fast = _by_name(run_check_report(names=("anagram",),
                                     flavors=FLAVORS, cache=cache,
                                     digest_only=True))
    full_size = len(pickle.dumps(full["anagram"]))
    fast_size = len(pickle.dumps(fast["anagram"]))
    assert fast_size < full_size


def test_digest_only_through_the_pool(tmp_path):
    """Same digests whether outcomes come back inline or pickled
    through worker processes."""
    cache = str(tmp_path)
    inline = _by_name(run_check_report(names=NAMES, flavors=FLAVORS,
                                       cache=cache, digest_only=True))
    pooled = _by_name(run_check_report(names=NAMES, flavors=FLAVORS,
                                       cache=cache, digest_only=True,
                                       jobs=2, force_pool=True))
    assert {n: o.digests for n, o in inline.items()} == \
        {n: o.digests for n, o in pooled.items()}
