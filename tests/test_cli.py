"""The command-line interface."""

import pytest

from repro.cli import main
from repro.suite.registry import program_path


@pytest.fixture
def tiny_c(tmp_path):
    path = tmp_path / "tiny.c"
    path.write_text("""
int g; int *p;
int main(void) { p = &g; *p = 1; return *p; }
""")
    return str(path)


class TestAnalyze:
    def test_both(self, tiny_c, capsys):
        assert main(["analyze", tiny_c]) == 0
        out = capsys.readouterr().out
        assert "[context-insensitive]" in out
        assert "[context-sensitive]" in out
        assert "spurious pairs:" in out

    def test_insensitive_only(self, tiny_c, capsys):
        assert main(["analyze", tiny_c,
                     "--sensitivity", "insensitive"]) == 0
        out = capsys.readouterr().out
        assert "[context-insensitive]" in out
        assert "[context-sensitive]" not in out

    def test_flowinsensitive(self, tiny_c, capsys):
        assert main(["analyze", tiny_c,
                     "--sensitivity", "flowinsensitive"]) == 0
        assert "[flow-insensitive]" in capsys.readouterr().out

    def test_show_pairs(self, tiny_c, capsys):
        assert main(["analyze", tiny_c, "--show-pairs",
                     "--sensitivity", "insensitive"]) == 0
        out = capsys.readouterr().out
        assert "(ε -> g)" in out

    def test_modref(self, tiny_c, capsys):
        assert main(["analyze", tiny_c, "--modref",
                     "--sensitivity", "insensitive"]) == 0
        out = capsys.readouterr().out
        assert "main: mod=" in out

    def test_suite_program(self, capsys):
        assert main(["analyze", str(program_path("part"))]) == 0
        out = capsys.readouterr().out
        assert "indirect ops identical: True" in out


class TestDump:
    def test_dump(self, tiny_c, capsys):
        assert main(["dump", tiny_c]) == 0
        out = capsys.readouterr().out
        assert "function main" in out
        assert "update" in out

    def test_dump_single_function(self, capsys):
        assert main(["dump", str(program_path("part")),
                     "--function", "cell_pop"]) == 0
        out = capsys.readouterr().out
        assert "function cell_pop" in out
        assert "function main" not in out

    def test_dump_dot(self, tiny_c, capsys):
        assert main(["dump", tiny_c, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert 'subgraph "cluster_main"' in out

    def test_dump_dot_single_function(self, tiny_c, capsys):
        assert main(["dump", tiny_c, "--dot", "--function", "main"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "main"')

    def test_dump_dot_unknown_function(self, tiny_c, capsys):
        assert main(["dump", tiny_c, "--dot", "--function", "nope"]) == 1
        assert "no function" in capsys.readouterr().err

    def test_dump_annotate(self, tiny_c, capsys):
        assert main(["dump", tiny_c, "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "-> {g}" in out.replace("'", "")


class TestExport:
    def test_export_json(self, tiny_c, capsys):
        import json
        assert main(["export", tiny_c]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flavor"] == "insensitive"
        assert "pairs" in payload

    def test_export_no_pairs_sensitive(self, tiny_c, capsys):
        import json
        assert main(["export", tiny_c, "--sensitivity", "sensitive",
                     "--no-pairs"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flavor"] == "sensitive"
        assert "pairs" not in payload


class TestExplain:
    def test_explain_indirect_op(self, tiny_c, capsys):
        assert main(["explain", tiny_c]) == 0
        out = capsys.readouterr().out
        assert "address constant" in out
        assert "memory write" in out or "lookup" in out

    def test_explain_function_filter(self, capsys):
        assert main(["explain", str(program_path("part")),
                     "--function", "cell_momentum"]) == 0
        out = capsys.readouterr().out
        assert "cell_momentum" in out
        assert "cell_push" not in out.split("argument")[0].split("\n")[0]

    def test_explain_no_match(self, tiny_c, capsys):
        assert main(["explain", tiny_c, "--line", "99999"]) == 1
        assert "no matching" in capsys.readouterr().err


class TestRunFlags:
    """--telemetry, --keep-going / --fail-fast on analyze."""

    @pytest.fixture
    def two_files(self, tmp_path):
        good = tmp_path / "good.c"
        good.write_text("int g; int *p = &g; int main(void){return *p;}")
        bad = tmp_path / "bad.c"
        bad.write_text("not C ((((")
        return good, bad

    def test_telemetry_inline(self, tiny_c, tmp_path, capsys):
        import json
        out_path = tmp_path / "t.jsonl"
        assert main(["analyze", tiny_c, "--telemetry",
                     str(out_path)]) == 0
        records = [json.loads(line)
                   for line in out_path.read_text().splitlines()]
        assert [r["flavor"] for r in records] \
            == ["insensitive", "sensitive"]
        assert all(r["kind"] == "analysis" for r in records)
        assert all(r["counters"]["transfers"] > 0 for r in records)

    def test_keep_going_is_default(self, two_files, tmp_path, capsys):
        good, bad = two_files
        out_path = tmp_path / "t.jsonl"
        code = main(["analyze", str(good), str(bad), "--jobs", "2",
                     "--sensitivity", "insensitive",
                     "--telemetry", str(out_path)])
        captured = capsys.readouterr()
        assert code == 1  # a failure is still a nonzero exit...
        assert "[context-insensitive]" in captured.out  # ...but good ran
        assert "bad.c" in captured.err
        import json
        kinds = [json.loads(line)["kind"]
                 for line in out_path.read_text().splitlines()]
        assert sorted(kinds) == ["analysis", "error"]

    def test_fail_fast(self, two_files, capsys):
        good, bad = two_files
        code = main(["analyze", str(bad), str(good), "--jobs", "2",
                     "--sensitivity", "insensitive", "--fail-fast"])
        assert code == 1
        assert "bad.c" in capsys.readouterr().err

    def test_flags_mutually_exclusive(self, tiny_c, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", tiny_c, "--fail-fast", "--keep-going"])


class TestExperimentRunFlags:
    def test_experiment_telemetry_and_keep_going(self, tmp_path,
                                                 monkeypatch, capsys):
        import json
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FAULT_INJECT", "span=raise")
        out_path = tmp_path / "t.jsonl"
        code = main(["experiment", "cost", "--jobs", "2",
                     "--telemetry", str(out_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "span" in captured.err
        # Survivors still render in the cost table.
        assert "anagram" in captured.out
        records = [json.loads(line)
                   for line in out_path.read_text().splitlines()]
        assert any(r["kind"] == "error" and r["program"] == "span"
                   for r in records)
        assert any(r["kind"] == "analysis" and r["program"] == "anagram"
                   for r in records)

    def test_experiment_fail_fast(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FAULT_INJECT", "anagram=raise")
        code = main(["experiment", "cost", "--jobs", "2", "--fail-fast"])
        assert code == 1
        assert "anagram" in capsys.readouterr().err


class TestOther:
    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "allroots" in out and "yacr2" in out

    def test_experiment_gap(self, capsys):
        assert main(["experiment", "gap"]) == 0
        out = capsys.readouterr().out
        assert "CS wins" in out
        assert "call sites" in out

    def test_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main(void) { goto x; x: return 0; }")
        assert main(["analyze", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
