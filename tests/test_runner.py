"""The parallel suite driver: worker fan-out and result fidelity."""

import os

import pytest

from repro.errors import ReproError
from repro.runner import (
    INLINE_TASK_THRESHOLD,
    run_files,
    run_suite,
    run_suite_report,
)

NAMES = ["anagram", "backprop", "span"]


def _snapshot(result):
    """Structural summary that is comparable across processes (ports
    differ by identity between object graphs, so compare censuses)."""
    return (result.counters.as_dict(),
            sorted(len(result.solution.pairs(o))
                   for o in result.solution.outputs()))


class TestRunSuite:
    def test_inline_matches_parallel(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        inline = run_suite(names=NAMES, jobs=1)
        fanned = run_suite(names=NAMES, jobs=2)
        assert set(inline) == set(fanned) == set(NAMES)
        for name in NAMES:
            for flavor in ("insensitive", "sensitive"):
                a, b = inline[name][flavor], fanned[name][flavor]
                assert _snapshot(a)[1] == _snapshot(b)[1]
            # CI counters are schedule- and process-invariant.
            assert inline[name]["insensitive"].counters.as_dict() \
                == fanned[name]["insensitive"].counters.as_dict()

    def test_results_are_identity_consistent(self, tmp_path, monkeypatch):
        """CI and CS results for one program must reference the same
        shipped object graph — ports from one index into the other."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        results = run_suite(names=["anagram"], jobs=2)["anagram"]
        ci, cs = results["insensitive"], results["sensitive"]
        assert ci.program is cs.program
        for output in ci.solution.outputs():
            assert output.node.graph.name in ci.program.functions \
                or output.node.graph is not None

    def test_flavor_selection(self):
        results = run_suite(names=["span"], jobs=1,
                            flavors=("flowinsensitive",))
        assert set(results["span"]) == {"flowinsensitive"}

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ReproError, match="unknown analysis flavor"):
            run_suite(names=["span"], flavors=("optimistic",))

    def test_fifo_schedule_passthrough(self):
        batched = run_suite(names=["span"], jobs=1)
        fifo = run_suite(names=["span"], jobs=1, schedule="fifo")
        assert _snapshot(batched["span"]["insensitive"])[1] \
            == _snapshot(fifo["span"]["insensitive"])[1]


class TestInlineFallback:
    """Tiny sweeps skip the process pool (executor setup dominates and
    a 3-program parallel sweep used to *lose* to the serial one)."""

    def test_tiny_sweep_runs_in_caller(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert len(NAMES) <= INLINE_TASK_THRESHOLD
        report = run_suite_report(names=NAMES, jobs=2)
        pids = {record["worker_pid"] for record in report.records}
        assert pids == {os.getpid()}

    def test_force_pool_crosses_processes(self, tmp_path, monkeypatch):
        # Two tasks: ``jobs`` clamps to the task count, so a single
        # task always runs inline no matter what.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_suite_report(names=["span", "anagram"], jobs=2,
                                  force_pool=True)
        pids = {record["worker_pid"] for record in report.records}
        assert os.getpid() not in pids

    def test_fault_injection_env_disables_inline(self, tmp_path,
                                                 monkeypatch):
        """Fault-injection sweeps must get real worker processes even
        when tiny — an injected ``os._exit`` would otherwise take the
        test runner down with it.  An *unknown* injection spec is
        harmless, so it proves routing without injecting anything."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FAULT_INJECT", "noop:never")
        report = run_suite_report(names=["span", "anagram"], jobs=2)
        pids = {record["worker_pid"] for record in report.records}
        assert os.getpid() not in pids


class TestRunFiles:
    def test_files_are_independent_programs(self, tmp_path):
        a = tmp_path / "a.c"
        a.write_text("int x; int *p = &x; int main(void){return *p;}")
        b = tmp_path / "b.c"
        b.write_text("int y; int *q = &y; int f(void){return *q;}")
        results = run_files([a, b], jobs=2)
        assert [path for path, _ in results] == [str(a), str(b)]
        progs = [res["insensitive"].program for _, res in results]
        assert progs[0] is not progs[1]
        names0 = set(progs[0].functions)
        names1 = set(progs[1].functions)
        assert "main" in names0 and "f" in names1
        assert "f" not in names0 and "main" not in names1

    def test_empty_input(self):
        assert run_files([]) == []
