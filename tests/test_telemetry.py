"""Telemetry records: schema, counter fidelity, and JSON-lines I/O."""

import json

import pytest

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.runner import run_suite_report
from repro.suite.registry import load_program
from repro.telemetry import (
    SCHEMA_VERSION,
    TelemetryWriter,
    error_record,
    peak_rss_kb,
    read_jsonl,
    result_record,
    result_records,
    write_jsonl,
)


@pytest.fixture(scope="module")
def anagram_ci():
    program = load_program("anagram", cache=False)
    return program, analyze_insensitive(program)


class TestResultRecord:
    def test_schema_and_identity(self, anagram_ci):
        program, ci = anagram_ci
        record = result_record("anagram", ci, "batched")
        assert record["schema"] == SCHEMA_VERSION
        assert record["kind"] == "analysis"
        assert record["status"] == "ok"
        assert record["program"] == "anagram"
        assert record["flavor"] == "insensitive"
        assert record["schedule"] == "batched"

    def test_counters_match_as_dict(self, anagram_ci):
        _, ci = anagram_ci
        record = result_record("anagram", ci)
        assert record["counters"] == ci.counters.as_dict(extended=True)
        # The non-extended dict is a strict subset.
        for key, value in ci.counters.as_dict().items():
            assert record["counters"][key] == value

    def test_phases_cover_frontend_and_solve(self, anagram_ci):
        _, ci = anagram_ci
        phases = result_record("anagram", ci)["phases"]
        assert {"preprocess", "parse", "lower", "solve"} <= set(phases)
        assert all(seconds >= 0 for seconds in phases.values())
        assert phases["solve"] == round(ci.elapsed_seconds, 6)

    def test_process_facts(self, anagram_ci):
        _, ci = anagram_ci
        record = result_record("anagram", ci)
        assert record["cache"] == "off"
        assert isinstance(record["worker_pid"], int)
        assert 0 < record["peak_rss_kb"] <= peak_rss_kb()

    def test_json_serializable(self, anagram_ci):
        _, ci = anagram_ci
        round_tripped = json.loads(json.dumps(result_record("x", ci)))
        assert round_tripped["counters"] == \
            ci.counters.as_dict(extended=True)

    def test_per_flavor_records(self, anagram_ci):
        program, ci = anagram_ci
        cs = analyze_sensitive(program, ci_result=ci)
        records = result_records(
            "anagram", {"insensitive": ci, "sensitive": cs}, "batched")
        assert [r["flavor"] for r in records] \
            == ["insensitive", "sensitive"]
        # Frontend phases are program-level: identical across flavors.
        front = lambda r: {k: v for k, v in r["phases"].items()
                           if k != "solve"}
        assert front(records[0]) == front(records[1])
        assert records[1]["counters"] == cs.counters.as_dict(extended=True)


class TestErrorRecord:
    def test_shape(self):
        record = error_record("bc", "WorkerDied", "worker died", "tb...")
        assert record["kind"] == "error"
        assert record["status"] == "error"
        assert record["program"] == "bc"
        assert record["flavor"] is None
        assert record["error"] == {"kind": "WorkerDied",
                                   "message": "worker died",
                                   "traceback": "tb..."}


class TestParallelMatchesInline:
    """Acceptance gate: records shipped from workers carry the same
    transfer/meet counts an inline run produces."""

    def test_counters_cross_process(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_suite_report(names=["anagram", "span"], jobs=2)
        inline_ci = analyze_insensitive(
            load_program("anagram", cache=False))
        (record,) = [r for r in report.records
                     if r["program"] == "anagram"
                     and r["flavor"] == "insensitive"]
        assert record["counters"] == \
            inline_ci.counters.as_dict(extended=True)
        # One record per (program, flavor).
        assert sorted((r["program"], r["flavor"])
                      for r in report.records) == [
            ("anagram", "insensitive"), ("anagram", "sensitive"),
            ("span", "insensitive"), ("span", "sensitive")]


class TestRssScope:
    """Regression: inline records used to report the *parent's*
    cumulative ``peak_rss_kb`` with nothing marking them as such, so
    later programs in a sweep inherited earlier programs' peaks and
    BENCH consumers compared them against worker-scoped numbers."""

    def test_inline_records_are_process_scoped(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_suite_report(names=["anagram", "span"], jobs=1)
        for record in report.records:
            assert record["rss_scope"] == "process"
            # The delta attributes growth to *this* task; peak RSS
            # never decreases, so it is a non-negative int (or None
            # where the resource module is missing).
            delta = record["rss_delta_kb"]
            if record["peak_rss_kb"] is not None:
                assert isinstance(delta, int) and delta >= 0
                assert delta <= record["peak_rss_kb"]
            else:
                assert delta is None

    def test_worker_records_are_worker_scoped(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_suite_report(names=["anagram", "span"], jobs=2,
                                  force_pool=True)
        for record in report.records:
            assert record["rss_scope"] == "worker"
            # Worker peaks stand on their own; no delta is attached.
            assert "rss_delta_kb" not in record

    def test_inline_deltas_do_not_accumulate(self, tmp_path,
                                             monkeypatch):
        """Each inline record's delta is measured from its own pre-task
        baseline, not from process start: the per-record deltas must
        sum to (at most) the total peak growth, whereas the raw peaks
        are cumulative and monotone."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_suite_report(names=["anagram", "span", "cdecl"],
                                  jobs=1)
        peaks = [r["peak_rss_kb"] for r in report.records]
        if any(p is None for p in peaks):
            pytest.skip("no resource module on this platform")
        assert peaks == sorted(peaks)  # the misattribution trap
        deltas = [r["rss_delta_kb"] for r in report.records]
        assert sum(deltas) <= peaks[-1]


class TestJsonLinesIO:
    def test_writer_roundtrip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        records = [{"schema": 1, "kind": "analysis", "n": i}
                   for i in range(3)]
        with TelemetryWriter(path) as writer:
            count = writer.write_all(records)
        assert count == 3
        assert read_jsonl(path) == records

    def test_write_jsonl_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "t.jsonl"
        assert write_jsonl(path, [{"a": 1}]) == 1
        assert read_jsonl(path) == [{"a": 1}]

    def test_stdout_target(self, capsys):
        with TelemetryWriter("-") as writer:
            writer.write({"hello": "world"})
        assert json.loads(capsys.readouterr().out) == {"hello": "world"}
