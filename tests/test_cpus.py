"""CPU-availability probing and pool sizing under restricted affinity.

Regression tests for the oversubscription bug: ``default_jobs()`` used
``os.cpu_count()``, which reports the whole machine even when cgroups
or ``taskset`` confine the process to a couple of cores, so the pool
forked far more workers than could run.
"""

import os

from repro.cpus import available_cpus
from repro.runner import default_jobs


class TestAvailableCpus:
    def test_prefers_process_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "process_cpu_count", lambda: 3,
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpus() == 3

    def test_affinity_mask_beats_machine_count(self, monkeypatch):
        """The taskset/cgroup case: 2-core affinity on a '64-core'
        machine must size to 2, not 64."""
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpus() == 2

    def test_machine_count_is_last_resort(self, monkeypatch):
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert available_cpus() == 8

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_cpus() == 1

    def test_empty_probe_falls_through(self, monkeypatch):
        """A probe returning 0/None must not win over a later source."""
        monkeypatch.setattr(os, "process_cpu_count", lambda: None,
                            raising=False)
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert available_cpus() == 1

    def test_matches_real_affinity_here(self):
        """On this (Linux) host the probe agrees with the scheduler."""
        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() <= (os.cpu_count() or 1)
            if not hasattr(os, "process_cpu_count"):
                assert available_cpus() == len(os.sched_getaffinity(0))


class TestDefaultJobs:
    def test_uses_available_cpus_not_machine_count(self, monkeypatch):
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 128)
        assert default_jobs() == 2
