"""The library-model table."""

import pytest

from repro.frontend.libmodels import LIBRARY_MODELS, model_for


class TestTable:
    def test_allocators_are_alloc(self):
        for name in ("malloc", "calloc", "realloc", "strdup", "fopen"):
            assert model_for(name).kind == "alloc"

    def test_string_copies_return_arg0(self):
        for name in ("strcpy", "strcat", "memcpy", "fgets", "strchr"):
            model = model_for(name)
            assert model.kind == "returns_arg" and model.arg_index == 0

    def test_pure_functions_opaque(self):
        for name in ("strlen", "strcmp", "printf", "exit", "isalpha"):
            assert model_for(name).kind == "opaque"

    def test_paper_exclusions_unsupported(self):
        for name in ("signal", "longjmp", "setjmp", "qsort"):
            model = model_for(name)
            assert model.kind == "unsupported"
            assert model.reason

    def test_unknown_unmodeled(self):
        assert model_for("frobnicate") is None

    def test_names_consistent(self):
        for name, model in LIBRARY_MODELS.items():
            assert model.name == name

    def test_table_covers_common_libc(self):
        # A sanity floor so additions don't silently drop entries.
        assert len(LIBRARY_MODELS) >= 90
