"""The modeled C subset's boundaries (paper §2 caveats)."""

import pytest

from repro.errors import (
    LoweringError,
    TypeError_,
    UnsupportedFeatureError,
)
from tests.conftest import lower


class TestPaperCaveats:
    def test_int_to_pointer_cast_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="cast"):
            lower("int main(void) { int *p = (int *)42; return 0; }")

    def test_pointer_to_int_cast_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="cast"):
            lower("""
                int g;
                int main(void) { long x = (long)&g; return (int)x; }
            """)

    def test_null_pointer_casts_allowed(self):
        program = lower(
            "int main(void) { int *p = (int *)0; return p == 0; }")
        assert "main" in program.functions

    def test_void_pointer_roundtrip_allowed(self):
        program = lower("""
            int g;
            int main(void) {
                void *v = (void *)&g;
                int *p = (int *)v;
                return *p;
            }
        """)
        assert "main" in program.functions

    def test_integer_assigned_to_pointer_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            lower("int main(void) { int *p; p = 42; return 0; }")

    def test_zero_assigned_to_pointer_allowed(self):
        program = lower("int main(void) { int *p; p = 0; return 0; }")
        assert "main" in program.functions


class TestStructuralLimits:
    def test_goto_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="goto"):
            lower("""
                int main(void) {
                    int x = 0;
                    goto done;
                done:
                    return x;
                }
            """)

    def test_knr_definitions_rejected(self):
        with pytest.raises(UnsupportedFeatureError, match="K&R"):
            lower("""
                int f(x)
                    int x;
                { return x; }
                int main(void) { return f(1); }
            """)

    def test_compound_literal_rejected(self):
        with pytest.raises((UnsupportedFeatureError, Exception)):
            lower("""
                struct s { int a; };
                int main(void) { struct s v = (struct s){1}; return 0; }
            """)

    def test_undeclared_identifier(self):
        with pytest.raises(TypeError_, match="undeclared"):
            lower("int main(void) { return ghost_var; }")

    def test_break_outside_loop(self):
        with pytest.raises(LoweringError, match="break"):
            lower("int main(void) { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(LoweringError, match="continue"):
            lower("int main(void) { continue; return 0; }")
