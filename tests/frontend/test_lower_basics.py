"""Lowering: storage decisions, addressing, and basic points-to flow.

These tests check lowering *through* the context-insensitive analysis,
which is the most direct way to pin down which access paths each C
construct produces.
"""

import pytest

import repro
from repro.ir.nodes import (
    AddressNode,
    CallNode,
    LookupNode,
    UpdateNode,
    ValueTag,
)
from tests.conftest import (
    analyze_both,
    find_op,
    lower,
    op_base_names,
    op_location_names,
    target_names,
)


class TestStorageDecisions:
    def test_non_addressed_scalars_stay_out_of_store(self):
        program = lower("""
            int main(void) { int a = 1; int b = a + 2; return b; }
        """)
        graph = program.functions["main"]
        assert not list(graph.memory_operations())

    def test_addressed_local_gets_location(self):
        program = lower("""
            int main(void) { int x = 1; int *p = &x; return *p; }
        """)
        names = {loc.name for loc in program.locations}
        assert "x" in names

    def test_arrays_always_in_memory(self):
        program = lower("int main(void) { int a[4]; a[0] = 1; return a[0]; }")
        assert any(isinstance(n, UpdateNode)
                   for n in program.functions["main"].nodes)

    def test_structs_always_in_memory(self):
        program = lower("""
            struct s { int v; };
            int main(void) { struct s x; x.v = 3; return x.v; }
        """)
        assert any(isinstance(n, UpdateNode)
                   for n in program.functions["main"].nodes)

    def test_globals_in_memory(self):
        program = lower("int g; int main(void) { g = 1; return g; }")
        assert any(isinstance(n, UpdateNode)
                   for n in program.functions["main"].nodes)


class TestPointsToBasics:
    def test_address_of_global(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; return 0; }
        """)
        update = find_op(program, "main", "write")
        assert op_base_names(ci, update) == {"p"}

    def test_deref_reaches_target(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; *p = 5; return 0; }
        """)
        update = find_op(program, "main", "write", index=1)
        assert update.is_indirect
        assert op_base_names(ci, update) == {"g"}

    def test_null_pointer_has_no_targets(self):
        program, ci, _ = analyze_both("""
            int main(void) { int *p = 0; return *p; }
        """)
        read = find_op(program, "main", "read")
        assert ci.op_locations(read) == set()

    def test_two_level_indirection(self):
        program, ci, _ = analyze_both("""
            int g; int *p; int **pp;
            int main(void) { p = &g; pp = &p; **pp = 1; return 0; }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        final = writes[-1]
        assert op_base_names(ci, final) == {"g"}


class TestStructPaths:
    SRC = """
        struct node { int v; struct node *next; };
        struct node a, b;
        int main(void) {
            a.next = &b;
            a.next->v = 7;
            return 0;
        }
    """

    def test_member_write_path(self):
        program, ci, _ = analyze_both(self.SRC)
        first = find_op(program, "main", "write", 0)
        assert op_location_names(ci, first) == {"a.next"}

    def test_through_member_pointer(self):
        program, ci, _ = analyze_both(self.SRC)
        second = find_op(program, "main", "write", 1)
        assert second.is_indirect
        assert op_location_names(ci, second) == {"b.v"}


class TestUnions:
    def test_union_members_alias(self):
        """Writing u.p must be visible through u.q (collapsed slot)."""
        program, ci, _ = analyze_both("""
            int g;
            union u { int *p; int *q; } v;
            int main(void) { v.p = &g; *v.q = 1; return 0; }
        """)
        deref = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, deref) == {"g"}


class TestArrays:
    def test_array_collapsed_to_summary(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int *arr[4];
            int main(void) {
                arr[0] = &g1;
                arr[3] = &g2;
                *arr[1] = 9;
                return 0;
            }
        """)
        deref = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][-1]
        assert op_base_names(ci, deref) == {"g1", "g2"}

    def test_direct_array_access_is_not_indirect(self):
        program = lower("int a[4]; int main(void) { a[2] = 1; return 0; }")
        write = find_op(program, "main", "write")
        assert not write.is_indirect

    def test_pointer_arithmetic_stays_in_array(self):
        program, ci, _ = analyze_both("""
            int a[8];
            int main(void) {
                int *p = a;
                p = p + 3;
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode)][-1]
        assert op_location_names(ci, write) == {"a[*]"}

    def test_increment_through_array(self):
        program, ci, _ = analyze_both("""
            char buf[16];
            int main(void) {
                char *p = buf;
                while (*p) p++;
                *p = 'x';
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        assert writes
        assert op_location_names(ci, writes[-1]) == {"buf[*]"}


class TestHeap:
    def test_one_location_per_malloc_site(self):
        program, ci, _ = analyze_both("""
            void *malloc(unsigned long n);
            int *mk(void) { return malloc(4); }
            int main(void) {
                int *a = mk();
                int *b = mk();
                *a = 1;
                *b = 2;
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        # Both pointers come from the same static malloc site: one
        # abstract location each, and the same one.
        locs_a = ci.op_locations(writes[0])
        locs_b = ci.op_locations(writes[1])
        assert len(locs_a) == 1 and locs_a == locs_b

    def test_two_malloc_sites_distinct(self):
        program, ci, _ = analyze_both("""
            void *malloc(unsigned long n);
            int main(void) {
                int *a = malloc(4);
                int *b = malloc(4);
                *a = 1;
                *b = 2;
                return 0;
            }
        """)
        # With the pointer held in an SSA variable the dereference
        # constant-folds to a direct access of the heap location — the
        # representation-sensitivity the paper notes in §3.2.  The two
        # sites must still be distinct abstract locations.
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode)]
        assert ci.op_locations(writes[0]) != ci.op_locations(writes[1])

    def test_heap_not_strongly_updateable(self):
        _, ci, _ = analyze_both("""
            void *malloc(unsigned long n);
            int g1, g2;
            int main(void) {
                int **cell = malloc(8);
                *cell = &g1;
                *cell = &g2;
                return **cell;
            }
        """)
        # The weak update cannot kill: the final read sees both.
        program = ci.program
        reads = [n for n in program.functions["main"].nodes
                 if isinstance(n, LookupNode) and n.is_indirect]
        final = reads[-1]
        assert op_base_names(ci, final) >= {"g1", "g2"} or \
            op_base_names(ci, final) == {"g1", "g2"}


class TestStrongUpdates:
    def test_strong_update_kills_old_value(self):
        program, ci, _ = analyze_both("""
            int g1, g2; int *p;
            int main(void) {
                p = &g1;
                p = &g2;
                *p = 1;
                return 0;
            }
        """)
        deref = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, deref) == {"g2"}

    def test_merge_prevents_kill(self):
        program, ci, _ = analyze_both("""
            int g1, g2; int *p;
            int main(int argc, char **argv) {
                p = &g1;
                if (argc) p = &g2;
                *p = 1;
                return 0;
            }
        """)
        deref = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, deref) == {"g1", "g2"}


class TestStringsAndFunctions:
    def test_string_literal_storage(self):
        program, ci, _ = analyze_both("""
            int main(void) { char *s = "hello"; return *s; }
        """)
        read = find_op(program, "main", "read")
        locs = ci.op_locations(read)
        assert len(locs) == 1
        (path,) = locs
        assert path.base.report_category == "global"

    def test_function_value_targets(self):
        program, ci, _ = analyze_both("""
            int f(int x) { return x; }
            int main(void) {
                int (*fp)(int) = f;
                return fp(2);
            }
        """)
        call = [n for n in program.functions["main"].nodes
                if isinstance(n, CallNode)][0]
        callees = {g.name for g in ci.callgraph.callees(call)}
        assert callees == {"f"}

    def test_sizeof_is_constant(self):
        program = lower("""
            struct s { int a; int b; };
            int main(void) { return (int)sizeof(struct s); }
        """)
        # No memory traffic for sizeof.
        assert not list(program.functions["main"].memory_operations())
