"""Lowering of calls: direct, indirect, varargs, library models."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.ir.nodes import CallNode, PrimopNode, UpdateNode
from tests.conftest import analyze_both, find_op, lower, op_base_names


class TestDirectCalls:
    def test_pointer_through_call(self):
        program, ci, _ = analyze_both("""
            int g;
            int *get(void) { return &g; }
            int main(void) { *get() = 1; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g"}

    def test_argument_flows_to_formal(self):
        program, ci, _ = analyze_both("""
            int g;
            void set(int *p) { *p = 1; }
            int main(void) { set(&g); return 0; }
        """)
        write = find_op(program, "set", "write")
        assert op_base_names(ci, write) == {"g"}

    def test_store_effects_visible_to_caller(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            void point_it(void) { p = &g; }
            int main(void) { point_it(); *p = 1; return 0; }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g"}

    def test_recursion_terminates_and_is_sound(self):
        program, ci, _ = analyze_both("""
            struct node { struct node *next; int v; };
            int count(struct node *n) {
                if (!n) return 0;
                return 1 + count(n->next);
            }
            void *malloc(unsigned long x);
            int main(void) {
                struct node *a = malloc(sizeof(struct node));
                a->next = 0;
                return count(a);
            }
        """)
        read = find_op(program, "count", "read")
        locs = ci.op_locations(read)
        assert len(locs) == 1

    def test_varargs_extra_args_dropped(self):
        program, ci, _ = analyze_both("""
            int first(int n, ...) { return n; }
            int main(void) { return first(1, 2, 3); }
        """)
        call = [n for n in program.functions["main"].nodes
                if isinstance(n, CallNode)][0]
        assert len(call.args) == 3
        assert {g.name for g in ci.callgraph.callees(call)} == {"first"}

    def test_struct_argument_by_value(self):
        program, ci, _ = analyze_both("""
            int g;
            struct box { int *p; };
            int use(struct box b) { *b.p = 1; return 0; }
            int main(void) {
                struct box v;
                v.p = &g;
                return use(v);
            }
        """)
        # Skip the prologue's by-value parameter spill; take the deref.
        write = [n for n in program.functions["use"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g"}

    def test_struct_return_by_value(self):
        program, ci, _ = analyze_both("""
            int g;
            struct box { int *p; };
            struct box make(void) {
                struct box b;
                b.p = &g;
                return b;
            }
            int main(void) {
                struct box v = make();
                *v.p = 1;
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        assert op_base_names(ci, writes[-1]) == {"g"}


class TestIndirectCalls:
    def test_function_pointer_variable(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            void f1(void) { g1 = 1; }
            void f2(void) { g2 = 2; }
            int main(int argc, char **argv) {
                void (*fp)(void) = argc ? f1 : f2;
                fp();
                return 0;
            }
        """)
        call = [n for n in program.functions["main"].nodes
                if isinstance(n, CallNode)][0]
        callees = {g.name for g in ci.callgraph.callees(call)}
        assert callees == {"f1", "f2"}

    def test_explicit_deref_call(self):
        program, ci, _ = analyze_both("""
            int f(int x) { return x; }
            int main(void) {
                int (*fp)(int) = &f;
                return (*fp)(3);
            }
        """)
        call = [n for n in program.functions["main"].nodes
                if isinstance(n, CallNode)][0]
        assert {g.name for g in ci.callgraph.callees(call)} == {"f"}

    def test_dispatch_table(self):
        program, ci, _ = analyze_both("""
            int add(int a) { return a + 1; }
            int sub(int a) { return a - 1; }
            int (*table[2])(int) = { add, sub };
            int main(int argc, char **argv) {
                return table[argc & 1](5);
            }
        """)
        call = [n for n in program.functions["main"].nodes
                if isinstance(n, CallNode)][0]
        assert {g.name for g in ci.callgraph.callees(call)} == {"add", "sub"}

    def test_repropagation_on_late_callee(self):
        """Arguments seen before the callee is known still reach it."""
        program, ci, _ = analyze_both("""
            int g;
            void writer(int *p) { *p = 1; }
            void (*hook)(int *);
            int main(void) {
                hook = writer;
                hook(&g);
                return 0;
            }
        """)
        write = find_op(program, "writer", "write")
        assert op_base_names(ci, write) == {"g"}


class TestLibraryModels:
    def test_malloc_named_by_site(self):
        program = lower("""
            void *malloc(unsigned long n);
            int main(void) { int *p = malloc(4); *p = 1; return 0; }
        """)
        heap = [loc for loc in program.locations
                if loc.report_category == "heap"]
        assert len(heap) == 1
        assert "malloc" in heap[0].name and "main" in heap[0].name

    def test_strcpy_returns_destination(self):
        program, ci, _ = analyze_both("""
            char *strcpy(char *dst, const char *src);
            char buf[8];
            int main(void) {
                char *r = strcpy(buf, "hi");
                *r = 'x';
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode)][-1]
        assert op_base_names(ci, write) == {"buf"}

    def test_opaque_extern_identity_on_store(self):
        program, ci, _ = analyze_both("""
            int printf(const char *fmt, ...);
            int g; int *p;
            int main(void) {
                p = &g;
                printf("%d", *p);
                *p = 2;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g"}

    def test_no_call_node_for_library_model(self):
        program = lower("""
            int printf(const char *fmt, ...);
            int main(void) { printf("x"); return 0; }
        """)
        assert not any(isinstance(n, CallNode)
                       for n in program.functions["main"].nodes)

    def test_qsort_unsupported(self):
        with pytest.raises(UnsupportedFeatureError, match="qsort"):
            lower("""
                void qsort(void *b, unsigned long n, unsigned long s,
                           int (*cmp)(const void *, const void *));
                int main(void) { qsort(0, 0, 0, 0); return 0; }
            """)

    def test_longjmp_unsupported(self):
        with pytest.raises(UnsupportedFeatureError, match="longjmp"):
            lower("""
                void longjmp(int *env, int val);
                int main(void) { longjmp(0, 1); return 0; }
            """)


class TestExternPolicy:
    SRC = """
        int mystery(int *p);
        int g;
        int main(void) { return mystery(&g); }
    """

    def test_warn_policy_records_warning(self):
        program = lower(self.SRC)
        warnings = program.extras["warnings"]
        assert any("mystery" in w for w in warnings)

    def test_error_policy_raises(self):
        with pytest.raises(UnsupportedFeatureError, match="mystery"):
            lower(self.SRC, extern_policy="error")

    def test_undeclared_function_warns(self):
        program = lower("int main(void) { ghost(1); return 0; }")
        assert any("ghost" in w for w in program.extras["warnings"])
