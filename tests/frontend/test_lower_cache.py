"""Persistent lowering cache: hits, misses, corruption, invalidation."""

import os
import pickle
import time

import pytest

from repro.analysis.insensitive import analyze_insensitive
from repro.frontend.cache import (
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    _sweep_stale_tmps,
    clear_cache,
    forget_loaded,
    key_for_files,
    resolve_cache_dir,
)
from repro.frontend.lower import lower_file
from repro.ir.graph import Program

SOURCE = """
int g;
int *p;
void set(int **h) { *h = &g; }
int main(void) { set(&p); return *p; }
"""

EDITED = SOURCE.replace("int g;", "int g; int g2;")


@pytest.fixture
def cfile(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return path


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def _entries(cache_dir):
    return sorted(cache_dir.glob("*.pkl")) if cache_dir.is_dir() else []


class TestHitAndMiss:
    def test_miss_populates_then_hit(self, cfile, cache_dir):
        assert _entries(cache_dir) == []
        first = lower_file(cfile, cache=cache_dir)
        assert len(_entries(cache_dir)) == 1
        second = lower_file(cfile, cache=cache_dir)
        assert len(_entries(cache_dir)) == 1
        # An in-process hit is memoized: the same object graph comes
        # back without re-unpickling (interning state stays warm).
        assert second is first
        # After dropping the memo, the hit is a *distinct* object
        # graph off disk, with the same analysis.
        forget_loaded(cache_dir)
        third = lower_file(cfile, cache=cache_dir)
        assert third is not first
        assert isinstance(third, Program)
        a = analyze_insensitive(first)
        b = analyze_insensitive(third)
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_cache_off_by_default(self, cfile, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        lower_file(cfile)
        assert not (tmp_path / ".repro-cache").exists()

    def test_entry_is_keyed_by_content_hash(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        (entry,) = _entries(cache_dir)
        assert entry.stem == key_for_files([cfile])


class TestInvalidation:
    def test_source_edit_misses(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        cfile.write_text(EDITED)
        program = lower_file(cfile, cache=cache_dir)
        # A second entry appears, and the program reflects the edit.
        assert len(_entries(cache_dir)) == 2
        assert "g2" in {loc.describe() for loc in program.locations}

    def test_options_change_misses(self, cfile, cache_dir):
        assert key_for_files([cfile]) != key_for_files(
            [cfile], options={"model_library": False})

    def test_edit_then_revert_hits_original_entry(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        cfile.write_text(EDITED)
        lower_file(cfile, cache=cache_dir)
        cfile.write_text(SOURCE)
        lower_file(cfile, cache=cache_dir)
        assert len(_entries(cache_dir)) == 2


class TestHeaderInvalidation:
    """The key hashes the preprocessor-reported dependency set, so
    editing an ``#include``\\ d header misses — the bug fixed with
    ``LOWERING_VERSION`` 2 (keys previously hashed only the named
    input files and served stale programs after header edits)."""

    @pytest.fixture
    def project(self, tmp_path):
        header = tmp_path / "defs.h"
        header.write_text("int g;\nint *p;\n")
        cfile = tmp_path / "prog.c"
        cfile.write_text('#include "defs.h"\n'
                         "void set(int **h) { *h = &g; }\n"
                         "int main(void) { set(&p); return *p; }\n")
        return cfile, header

    def test_header_edit_misses(self, project, cache_dir):
        cfile, header = project
        lower_file(cfile, cache=cache_dir)
        assert len(_entries(cache_dir)) == 1
        header.write_text("int g;\nint g2;\nint *p;\n")
        program = lower_file(cfile, cache=cache_dir)
        assert len(_entries(cache_dir)) == 2
        assert "g2" in {loc.describe() for loc in program.locations}

    def test_header_revert_hits_original_entry(self, project, cache_dir):
        cfile, header = project
        original = header.read_text()
        lower_file(cfile, cache=cache_dir)
        header.write_text(original + "int extra;\n")
        lower_file(cfile, cache=cache_dir)
        header.write_text(original)
        lower_file(cfile, cache=cache_dir)
        assert len(_entries(cache_dir)) == 2

class TestTmpCleanup:
    """Orphaned ``*.tmp`` files (writer killed between ``mkstemp`` and
    ``os.replace``) must not accumulate forever."""

    def test_clear_cache_removes_tmps(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        orphan = cache_dir / "orphan123.tmp"
        orphan.write_bytes(b"half-written entry")
        assert clear_cache(cache_dir) == 2
        assert not orphan.exists()
        assert _entries(cache_dir) == []

    def test_store_sweeps_stale_tmps(self, cfile, cache_dir):
        cache_dir.mkdir()
        stale = cache_dir / "stale456.tmp"
        stale.write_bytes(b"orphan")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        lower_file(cfile, cache=cache_dir)
        assert not stale.exists()
        assert len(_entries(cache_dir)) == 1

    def test_store_keeps_fresh_tmps(self, cfile, cache_dir):
        # A young temp file may belong to a live concurrent writer.
        cache_dir.mkdir()
        fresh = cache_dir / "fresh789.tmp"
        fresh.write_bytes(b"in flight")
        lower_file(cfile, cache=cache_dir)
        assert fresh.exists()

    def test_sweep_all_ages(self, cache_dir):
        cache_dir.mkdir()
        (cache_dir / "a.tmp").write_bytes(b"x")
        (cache_dir / "b.tmp").write_bytes(b"y")
        assert _sweep_stale_tmps(cache_dir, max_age=0) == 2


class TestSweepRateLimit:
    """The sweep is a full directory glob; paying it on *every* store
    made write-heavy sweeps O(entries) per write (regression)."""

    def _stale(self, cache_dir, name):
        tmp = cache_dir / name
        tmp.write_bytes(b"orphan")
        old = time.time() - 7200
        os.utime(tmp, (old, old))
        return tmp

    def test_back_to_back_stores_sweep_once(self, cache_dir):
        from repro.frontend import cache as cache_mod

        cache_dir.mkdir()
        first = self._stale(cache_dir, "first.tmp")
        assert cache_mod._maybe_sweep_stale_tmps(cache_dir) == 1
        assert not first.exists()
        # A stale tmp appearing within the interval survives until the
        # next window — the limiter skips the glob entirely.
        second = self._stale(cache_dir, "second.tmp")
        assert cache_mod._maybe_sweep_stale_tmps(cache_dir) == 0
        assert second.exists()

    def test_interval_expiry_sweeps_again(self, cache_dir, monkeypatch):
        from repro.frontend import cache as cache_mod

        cache_dir.mkdir()
        assert cache_mod._maybe_sweep_stale_tmps(cache_dir) == 0
        stale = self._stale(cache_dir, "later.tmp")
        # Age the limiter's timestamp past the interval.
        marker = str(cache_dir)
        cache_mod._last_sweep[marker] -= \
            cache_mod._SWEEP_INTERVAL_SECONDS + 1
        assert cache_mod._maybe_sweep_stale_tmps(cache_dir) == 1
        assert not stale.exists()

    def test_limit_is_per_directory(self, tmp_path):
        from repro.frontend import cache as cache_mod

        one, two = tmp_path / "one", tmp_path / "two"
        one.mkdir(), two.mkdir()
        self._stale(one, "a.tmp")
        self._stale(two, "b.tmp")
        assert cache_mod._maybe_sweep_stale_tmps(one) == 1
        # A sweep of ``one`` must not consume ``two``'s budget.
        assert cache_mod._maybe_sweep_stale_tmps(two) == 1


class TestSweptTmpRace:
    """A concurrent process's sweep can reclaim *this* writer's live
    temp file between ``mkstemp`` and ``os.replace`` (skewed clock, or
    a writer stalled past the age cutoff); the publish then raises
    FileNotFoundError.  ``store_program`` must retry with a fresh temp
    file instead of silently dropping the entry (regression)."""

    def _lowered(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(SOURCE)
        return lower_file(path, cache=False)

    def test_store_survives_one_swept_tmp(self, tmp_path, monkeypatch):
        from repro.frontend import cache as cache_mod

        cache_dir = tmp_path / "cache"
        program = self._lowered(tmp_path)
        real_replace = os.replace
        raced = []

        def racing_replace(src, dst):
            if not raced:
                raced.append(src)
                os.unlink(src)  # the concurrent sweeper wins the race
            return real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", racing_replace)
        assert cache_mod.store_program(cache_dir, "key", program)
        assert raced  # the race really happened
        cache_mod.forget_loaded(cache_dir)
        assert cache_mod.load_program(cache_dir, "key") is not None
        assert not list(cache_dir.glob("*.tmp"))  # no leaked temps

    def test_store_gives_up_after_second_sweep(self, tmp_path,
                                               monkeypatch):
        from repro.frontend import cache as cache_mod

        cache_dir = tmp_path / "cache"
        program = self._lowered(tmp_path)

        def always_raced(src, dst):
            os.unlink(src)
            raise FileNotFoundError(src)

        monkeypatch.setattr(cache_mod.os, "replace", always_raced)
        assert not cache_mod.store_program(cache_dir, "key", program)
        assert not list(cache_dir.glob("*.tmp"))


class TestCorruption:
    def test_truncated_entry_relowers_silently(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        (entry,) = _entries(cache_dir)
        entry.write_bytes(entry.read_bytes()[:40])
        program = lower_file(cfile, cache=cache_dir)
        assert isinstance(program, Program)
        # The bad entry was replaced with a good one.
        (entry,) = _entries(cache_dir)
        with open(entry, "rb") as fh:
            assert isinstance(pickle.load(fh), Program)

    def test_garbage_entry_relowers_silently(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        (entry,) = _entries(cache_dir)
        entry.write_bytes(b"not a pickle at all")
        assert isinstance(lower_file(cfile, cache=cache_dir), Program)

    def test_wrong_type_entry_relowers_silently(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        (entry,) = _entries(cache_dir)
        entry.write_bytes(pickle.dumps({"not": "a program"}))
        assert isinstance(lower_file(cfile, cache=cache_dir), Program)


class TestEnvironment:
    def test_no_cache_env_disables(self, cfile, cache_dir, monkeypatch):
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        lower_file(cfile, cache=cache_dir)
        assert _entries(cache_dir) == []
        assert resolve_cache_dir(True) is None

    def test_cache_dir_env_overrides_default(self, tmp_path, monkeypatch):
        target = tmp_path / "elsewhere"
        monkeypatch.setenv(CACHE_DIR_ENV, str(target))
        assert resolve_cache_dir(True) == target

    def test_clear_cache_counts_entries(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        assert clear_cache(cache_dir) == 1
        assert _entries(cache_dir) == []


class TestInProcessMemo:
    """Repeat loads within one process skip unpickling entirely,
    but never at the cost of disk-state fidelity."""

    def test_disk_rewrite_invalidates_memo(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        first = lower_file(cfile, cache=cache_dir)
        (entry,) = _entries(cache_dir)
        # A rewritten entry (different stat signature) must behave as
        # if the memo never existed: re-unpickled, fresh object.
        os.utime(entry, ns=(0, 0))
        second = lower_file(cfile, cache=cache_dir)
        assert second is not first
        assert isinstance(second, Program)

    def test_deleted_entry_misses_despite_memo(self, cfile, cache_dir):
        lower_file(cfile, cache=cache_dir)
        lower_file(cfile, cache=cache_dir)  # memo warm
        (entry,) = _entries(cache_dir)
        entry.unlink()
        program = lower_file(cfile, cache=cache_dir)
        assert program.extras.get("cache") == "miss"

    def test_forget_loaded_counts_and_scopes(self, cfile, tmp_path):
        cache_a = tmp_path / "cache-a"
        cache_b = tmp_path / "cache-b"
        lower_file(cfile, cache=cache_a)
        lower_file(cfile, cache=cache_b)
        assert forget_loaded(cache_a) == 1
        assert forget_loaded(cache_a) == 0  # already dropped
        assert forget_loaded(cache_b) == 1  # other dir untouched


class TestCachedProgramFidelity:
    def test_loaded_program_analyzes_identically(self, cfile, cache_dir):
        fresh = lower_file(cfile, cache=cache_dir)
        loaded = lower_file(cfile, cache=cache_dir)
        for schedule in ("batched", "fifo"):
            a = analyze_insensitive(fresh, schedule=schedule)
            b = analyze_insensitive(loaded, schedule=schedule)
            assert a.counters.as_dict() == b.counters.as_dict()
            census = lambda r: sorted(
                (len(r.solution.pairs(o))
                 for o in r.solution.outputs()))
            assert census(a) == census(b)
