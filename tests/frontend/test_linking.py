"""Multi-translation-unit linking."""

import pytest

import repro
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.verify import verify_solution
from repro.errors import TypeError_
from repro.ir.nodes import LookupNode, UpdateNode
from tests.conftest import op_base_names


def link(tmp_path, sources, **options):
    paths = []
    for index, source in enumerate(sources):
        path = tmp_path / f"tu{index}.c"
        path.write_text(source)
        paths.append(path)
    return repro.parse_files(paths, **options)


class TestCrossTuCalls:
    def test_call_resolves_to_other_file(self, tmp_path):
        program = link(tmp_path, [
            """
            int helper(int x);
            int main(void) { return helper(41); }
            """,
            """
            int helper(int x) { return x + 1; }
            """,
        ])
        ci = analyze_insensitive(program)
        call = next(n for n in program.functions["main"].nodes
                    if n.kind == "call")
        assert {g.name for g in ci.callgraph.callees(call)} == {"helper"}
        assert program.extras["warnings"] == []

    def test_pointer_flows_across_files(self, tmp_path):
        program = link(tmp_path, [
            """
            int g;
            int *locate(void);
            int main(void) { *locate() = 5; return 0; }
            """,
            """
            extern int g;
            int *locate(void) { return &g; }
            """,
        ])
        ci = analyze_insensitive(program)
        write = next(n for n in program.functions["main"].nodes
                     if isinstance(n, UpdateNode))
        assert op_base_names(ci, write) == {"g"}
        assert verify_solution(ci) == []

    def test_duplicate_definition_rejected(self, tmp_path):
        with pytest.raises(TypeError_, match="multiple definitions"):
            link(tmp_path, [
                "int f(void) { return 1; }",
                "int f(void) { return 2; }",
            ])


class TestSharedGlobals:
    def test_extern_shares_storage(self, tmp_path):
        program = link(tmp_path, [
            """
            int shared; int *p;
            void set(void);
            int main(void) { set(); *p = 1; return 0; }
            """,
            """
            extern int shared;
            extern int *p;
            void set(void) { p = &shared; }
            """,
        ])
        ci = analyze_insensitive(program)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"shared"}
        # Exactly one location named 'shared' program-wide.
        assert sum(1 for loc in program.locations
                   if loc.name == "shared") == 1

    def test_initializer_crosses_files(self, tmp_path):
        program = link(tmp_path, [
            "int g; int *p = &g;",
            """
            extern int *p;
            int main(void) { *p = 3; return 0; }
            """,
        ])
        ci = analyze_insensitive(program)
        write = next(n for n in program.functions["main"].nodes
                     if isinstance(n, UpdateNode))
        assert op_base_names(ci, write) == {"g"}

    def test_double_initialization_rejected(self, tmp_path):
        with pytest.raises(TypeError_, match="multiple initializations"):
            link(tmp_path, [
                "int g = 1;",
                "int g = 2; int main(void) { return g; }",
            ])


class TestStaticIsolation:
    def test_static_functions_do_not_collide(self, tmp_path):
        program = link(tmp_path, [
            """
            int ga;
            static int *pick(void) { return &ga; }
            int *entry_a(void) { return pick(); }
            int main(void) { extern int *entry_b(void);
                             *entry_a() = 1; *entry_b() = 2; return 0; }
            """,
            """
            int gb;
            static int *pick(void) { return &gb; }
            int *entry_b(void) { return pick(); }
            """,
        ])
        ci = analyze_insensitive(program)
        # Two distinct pick functions exist.
        picks = [name for name in program.functions if "pick" in name]
        assert len(picks) == 2
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode)]
        assert op_base_names(ci, writes[0]) == {"ga"}
        assert op_base_names(ci, writes[1]) == {"gb"}

    def test_static_globals_do_not_collide(self, tmp_path):
        program = link(tmp_path, [
            """
            static int counter;
            int *addr_a(void) { return &counter; }
            int main(void) { extern int *addr_b(void);
                             *addr_a() = 1; *addr_b() = 2; return 0; }
            """,
            """
            static int counter;
            int *addr_b(void) { return &counter; }
            """,
        ])
        assert sum(1 for loc in program.locations
                   if loc.name == "counter") == 2
        ci = analyze_insensitive(program)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode)]
        # Distinct storage: the two writes hit different locations.
        assert ci.op_locations(writes[0]) != ci.op_locations(writes[1])


class TestCrossTuStructs:
    def test_struct_paths_compatible_across_files(self, tmp_path):
        program = link(tmp_path, [
            """
            extern void *malloc(unsigned long n);
            struct node { int v; struct node *next; };
            struct node *make(void) {
                struct node *n = malloc(sizeof(struct node));
                n->next = 0;
                return n;
            }
            """,
            """
            struct node { int v; struct node *next; };
            struct node *make(void);
            int main(void) {
                struct node *n = make();
                n->v = 7;
                return n->v;
            }
            """,
        ])
        ci = analyze_insensitive(program)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        locations = ci.op_locations(write)
        assert len(locations) == 1
        (path,) = locations
        assert repr(path).endswith(".v")
        assert verify_solution(ci) == []


class TestCrossTuRecursion:
    def test_mutual_recursion_across_files_detected(self, tmp_path):
        program = link(tmp_path, [
            """
            int pong(int n);
            int ping(int n) { return n ? pong(n - 1) : 0; }
            int main(void) { return ping(4); }
            """,
            """
            int ping(int n);
            int pong(int n) { return n ? ping(n - 1) : 1; }
            """,
        ])
        assert program.functions["ping"].recursive
        assert program.functions["pong"].recursive
        assert not program.functions["main"].recursive

    def test_cross_tu_recursive_locals_weak(self, tmp_path):
        """Footnote 4 applies to recursion the single-file prepass
        cannot see."""
        program = link(tmp_path, [
            """
            void pong(int n, int **out);
            void ping(int n, int **out) {
                int slot;
                *out = &slot;
                if (n) pong(n - 1, out);
            }
            int main(void) { int *p; ping(3, &p); return 0; }
            """,
            """
            void ping(int n, int **out);
            void pong(int n, int **out) { if (n) ping(n - 1, out); }
            """,
        ])
        slot = next(loc for loc in program.locations
                    if loc.name == "slot")
        assert slot.multi_instance  # scheme 2 kicked in cross-TU


class TestMultifileExample:
    """The shipped examples/multifile program, end to end."""

    @pytest.fixture(scope="class")
    def program(self):
        from pathlib import Path
        here = Path(__file__).parent.parent.parent / "examples" / "multifile"
        return repro.parse_files([here / "main.c", here / "symtab.c"])

    def test_links_with_header(self, program):
        assert "main" in program.functions
        assert "table_insert" in program.functions
        # Statics from both files, qualified by their TU.
        assert "main::score_of" in program.functions
        assert "symtab::hash_of" in program.functions
        assert program.extras["warnings"] == []

    def test_heap_entries_resolve_cross_file(self, program):
        ci = analyze_insensitive(program)
        read = [n for n in program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][0]
        locations = ci.op_locations(read)
        assert len(locations) == 1
        (path,) = locations
        assert path.base.report_category == "heap"

    def test_headline_holds_when_linked(self, program):
        from repro.analysis.compare import compare_results
        from repro.analysis.sensitive import analyze_sensitive
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        assert compare_results(ci, cs).indirect_ops_identical


class TestMetadata:
    def test_program_name_and_lines(self, tmp_path):
        program = link(tmp_path, [
            "int helper(void) { return 1; }",
            "int helper(void); int main(void) { return helper(); }",
        ], name="pair")
        assert program.name == "pair"
        assert program.source_lines == 2

    def test_empty_file_list_rejected(self):
        from repro.errors import LoweringError
        with pytest.raises(LoweringError):
            repro.parse_files([])
