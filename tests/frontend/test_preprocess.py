"""The mini C preprocessor."""

import pytest

from repro.errors import PreprocessorError
from repro.frontend.preprocess import Preprocessor, preprocess, strip_comments


def lines_of(text):
    """Non-marker, non-blank output lines."""
    return [line for line in text.splitlines()
            if line.strip() and not line.startswith("#")]


class TestComments:
    def test_line_comment(self):
        assert strip_comments("int x; // gone\nint y;") == "int x; \nint y;"

    def test_block_comment_preserves_lines(self):
        out = strip_comments("a /* one\ntwo */ b")
        assert out.count("\n") == 1
        assert "one" not in out and "a" in out and "b" in out

    def test_comment_markers_in_strings_kept(self):
        src = 'char *s = "no /* comment */ here"; // real'
        out = strip_comments(src)
        assert '"no /* comment */ here"' in out
        assert "real" not in out

    def test_unterminated_block_raises(self):
        with pytest.raises(PreprocessorError, match="unterminated"):
            strip_comments("int x; /* oops")

    def test_unterminated_string_raises(self):
        with pytest.raises(PreprocessorError):
            strip_comments('char *s = "oops\nint y;')

    def test_escaped_quote_in_string(self):
        src = 'char *s = "a\\"b"; // comment'
        assert '"a\\"b"' in strip_comments(src)


class TestObjectMacros:
    def test_simple_define(self):
        out = preprocess("#define N 10\nint a[N];")
        assert "int a[10];" in out

    def test_redefinition_wins(self):
        out = preprocess("#define N 1\n#define N 2\nint x = N;")
        assert "int x = 2;" in out

    def test_undef(self):
        out = preprocess("#define N 1\n#undef N\nint x = N;")
        assert "int x = N;" in out

    def test_no_expansion_in_strings(self):
        out = preprocess('#define N 10\nchar *s = "N";')
        assert '"N"' in out

    def test_chained_expansion(self):
        out = preprocess("#define A B\n#define B 3\nint x = A;")
        assert "int x = 3;" in out

    def test_self_reference_stops(self):
        out = preprocess("#define X X\nint X;")
        assert "int X;" in out

    def test_mutual_recursion_stops(self):
        out = preprocess("#define A B\n#define B A\nint A;")
        assert lines_of(out)  # terminates; exact spelling unimportant


class TestFunctionMacros:
    def test_basic_substitution(self):
        out = preprocess("#define SQ(x) ((x)*(x))\nint y = SQ(3);")
        assert "int y = ((3)*(3));" in out

    def test_multi_argument(self):
        out = preprocess("#define MAX(a,b) ((a)>(b)?(a):(b))\n"
                         "int m = MAX(x, y+1);")
        assert "((x)>(y+1)?(x):(y+1))" in out

    def test_nested_parens_in_argument(self):
        out = preprocess("#define ID(x) x\nint y = ID(f(a, b));")
        assert "int y = f(a, b);" in out

    def test_name_without_parens_not_invoked(self):
        out = preprocess("#define F(x) x\nint F;")
        assert "int F;" in out

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError, match="expects"):
            preprocess("#define F(a,b) a\nint x = F(1);")

    def test_arguments_expand_first(self):
        out = preprocess("#define N 5\n#define ID(x) x\nint y = ID(N);")
        assert "int y = 5;" in out


class TestVariadicMacros:
    def test_basic_va_args(self):
        out = preprocess(
            "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\n"
            'LOG("%d %d", 1, 2);')
        assert 'printf("%d %d", 1, 2);' in out

    def test_only_varargs(self):
        out = preprocess(
            "#define CALL(...) f(__VA_ARGS__)\nCALL(a, b, c);")
        assert "f(a, b, c);" in out

    def test_empty_varargs(self):
        out = preprocess(
            "#define CALL(x, ...) f(x)\nCALL(1);")
        assert "f(1);" in out

    def test_too_few_arguments_rejected(self):
        with pytest.raises(PreprocessorError, match="at least"):
            preprocess("#define LOG(fmt, x, ...) fmt\nLOG(1);")

    def test_dots_must_be_last(self):
        with pytest.raises(PreprocessorError, match="last"):
            preprocess("#define BAD(..., x) x")


class TestStringifyAndPaste:
    def test_stringify(self):
        out = preprocess('#define STR(x) #x\nchar *s = STR(hello);')
        assert 'char *s = "hello";' in out

    def test_stringify_uses_raw_argument(self):
        out = preprocess(
            "#define N 5\n#define STR(x) #x\nchar *s = STR(N);")
        assert '"N"' in out  # stringify sees the unexpanded spelling

    def test_stringify_escapes_quotes(self):
        out = preprocess('#define STR(x) #x\nchar *s = STR("hi");')
        assert '"\\"hi\\""' in out

    def test_paste_identifiers(self):
        out = preprocess(
            "#define GLUE(a, b) a##b\nint GLUE(count, er) = 1;")
        assert "int counter = 1;" in out

    def test_paste_with_literal(self):
        out = preprocess(
            "#define FIELD(n) field_##n\nint FIELD(x);")
        assert "int field_x;" in out

    def test_paste_then_expand(self):
        out = preprocess(
            "#define AB 7\n#define JOIN(a, b) a##b\n"
            "int v = JOIN(A, B);")
        # Pasting forms AB; rescanning expands it.
        assert "int v = 7;" in out

    def test_stringify_whole_expression(self):
        out = preprocess("#define STR(x) #x\nchar *s = STR(a + b);")
        assert '"a + b"' in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define YES 1\n#ifdef YES\nint a;\n#endif")
        assert "int a;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef NO\nint a;\n#endif\nint b;")
        assert "int a;" not in out and "int b;" in out

    def test_ifndef(self):
        out = preprocess("#ifndef NO\nint a;\n#endif")
        assert "int a;" in out

    def test_else(self):
        out = preprocess("#ifdef NO\nint a;\n#else\nint b;\n#endif")
        assert "int b;" in out and "int a;" not in out

    def test_elif_chain(self):
        src = ("#define V 2\n#if V == 1\nint a;\n#elif V == 2\n"
               "int b;\n#elif V == 3\nint c;\n#else\nint d;\n#endif")
        out = preprocess(src)
        assert lines_of(out) == ["int b;"]

    def test_nested_conditionals(self):
        src = ("#define A 1\n#ifdef A\n#ifdef B\nint x;\n#else\n"
               "int y;\n#endif\n#endif")
        assert lines_of(preprocess(src)) == ["int y;"]

    def test_defines_inside_dead_branch_ignored(self):
        out = preprocess("#ifdef NO\n#define N 1\n#endif\nint x = N;")
        assert "int x = N;" in out

    def test_unterminated_conditional_raises(self):
        with pytest.raises(PreprocessorError, match="unterminated"):
            preprocess("#ifdef A\nint x;")

    def test_dangling_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_else_after_else_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\n#else\n#else\n#endif")


class TestIfExpressions:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2 * 3 == 7", True),
        ("(1 + 2) * 3 == 7", False),
        ("defined(A)", True),
        ("defined B", False),
        ("!defined(A)", False),
        ("defined(A) && defined(B)", False),
        ("defined(A) || defined(B)", True),
        ("UNKNOWN_NAME", False),
        ("1 << 4", True),
        ("0x10 == 16", True),
        ("~0 & 1", True),
        ("5 % 2 == 1", True),
        ("1 ? 2 : 0", True),
        ("0 ? 2 : 0", False),
        ("'a' == 97", True),
    ])
    def test_expression(self, expr, expected):
        src = f"#define A 1\n#if {expr}\nyes;\n#endif"
        out = preprocess(src)
        assert ("yes;" in out) == expected

    def test_macro_in_if(self):
        out = preprocess("#define N 4\n#if N > 3\nyes;\n#endif")
        assert "yes;" in out

    def test_division_by_zero_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#if 1 / 0\n#endif")

    def test_garbage_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#if 1 +\n#endif")


class TestIncludes:
    def test_quoted_include(self, tmp_path):
        (tmp_path / "header.h").write_text("int from_header;\n")
        main = tmp_path / "main.c"
        main.write_text('#include "header.h"\nint x;\n')
        pre = Preprocessor()
        out = pre.process_file(main)
        assert "int from_header;" in out
        assert "int x;" in out

    def test_include_relative_to_includer(self, tmp_path):
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "inner.h").write_text("int inner;\n")
        (sub / "outer.h").write_text('#include "inner.h"\n')
        main = tmp_path / "main.c"
        main.write_text('#include "sub/outer.h"\n')
        assert "int inner;" in Preprocessor().process_file(main)

    def test_include_dirs_searched(self, tmp_path):
        incdir = tmp_path / "include"
        incdir.mkdir()
        (incdir / "lib.h").write_text("int lib;\n")
        pre = Preprocessor(include_dirs=[incdir])
        out = pre.process_text('#include "lib.h"\n', "main.c")
        assert "int lib;" in out

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessorError, match="cannot find"):
            preprocess('#include "nope.h"')

    def test_system_include_without_dirs_raises(self):
        with pytest.raises(PreprocessorError, match="system include"):
            preprocess("#include <stdio.h>")

    def test_system_include_with_dirs(self, tmp_path):
        (tmp_path / "stdio.h").write_text("int stdio_stub;\n")
        pre = Preprocessor(system_dirs=[tmp_path])
        out = pre.process_text("#include <stdio.h>\n", "main.c")
        assert "int stdio_stub;" in out

    def test_include_guard_idiom(self, tmp_path):
        (tmp_path / "guarded.h").write_text(
            "#ifndef G_H\n#define G_H\nint once;\n#endif\n")
        main = tmp_path / "main.c"
        main.write_text('#include "guarded.h"\n#include "guarded.h"\n')
        out = Preprocessor().process_file(main)
        assert out.count("int once;") == 1

    def test_self_include_depth_limited(self, tmp_path):
        loop = tmp_path / "loop.h"
        loop.write_text('#include "loop.h"\n')
        with pytest.raises(PreprocessorError, match="depth"):
            Preprocessor().process_file(loop)


class TestMisc:
    def test_line_splicing(self):
        out = preprocess("#define LONG 1 + \\\n    2\nint x = LONG;")
        flattened = " ".join(out.split())
        assert "int x = 1 + 2;" in flattened

    def test_error_directive(self):
        with pytest.raises(PreprocessorError, match="boom"):
            preprocess("#error boom")

    def test_pragma_ignored(self):
        out = preprocess("#pragma once\nint x;")
        assert "int x;" in out

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessorError, match="unknown directive"):
            preprocess("#frobnicate")

    def test_line_markers_emitted(self):
        out = preprocess("int x;\n", filename="file.c")
        assert '# 1 "file.c"' in out

    def test_predefines(self):
        pre = Preprocessor(defines={"N": "3"})
        assert "int a[3];" in pre.process_text("int a[N];", "t.c")
