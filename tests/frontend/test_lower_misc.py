"""Lowering corner cases beyond the core feature tests."""

import pytest

from repro.ir.nodes import CallNode, LookupNode, UpdateNode
from repro.memory.base import LocationKind
from tests.conftest import analyze_both, find_op, lower, op_base_names, \
    op_location_names


class TestArrays:
    def test_multidimensional_paths(self):
        program, ci, _ = analyze_both("""
            int grid[3][4];
            int main(void) { grid[1][2] = 5; return grid[0][0]; }
        """)
        write = find_op(program, "main", "write")
        assert op_location_names(ci, write) == {"grid[*][*]"}

    def test_array_of_string_pointers(self):
        program, ci, _ = analyze_both("""
            char *names[] = { "ada", "lovelace" };
            int main(void) { return *names[1]; }
        """)
        reads = [n for n in program.functions["main"].nodes
                 if isinstance(n, LookupNode)]
        deref = reads[-1]
        locations = ci.op_locations(deref)
        assert len(locations) == 2
        assert all(p.base.kind is LocationKind.STRING for p in locations)

    def test_pointer_to_whole_array(self):
        program, ci, _ = analyze_both("""
            int arr[4];
            int (*pa)[4] = &arr;
            int main(void) { (*pa)[2] = 7; return 0; }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode)][0]
        assert op_location_names(ci, write) == {"arr[*]"}

    def test_subscript_commutes(self):
        program, ci, _ = analyze_both("""
            int arr[4];
            int main(void) { 2[arr] = 9; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_location_names(ci, write) == {"arr[*]"}


class TestStatics:
    def test_static_local_is_global_like(self):
        program, ci, _ = analyze_both("""
            int g;
            int *cell(void) {
                static int *slot = &g;
                return slot;
            }
            int main(void) { *cell() = 1; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g"}
        slot = next(loc for loc in program.locations
                    if loc.name == "cell.slot")
        assert slot.kind is LocationKind.GLOBAL

    def test_static_local_persists_across_calls(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int *remember(int *p) {
                static int *kept;
                int *old = kept;
                kept = p;
                return old;
            }
            int main(void) {
                remember(&g1);
                int *prev = remember(&g2);
                if (prev) *prev = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}


class TestInitializers:
    def test_global_struct_initializer(self):
        program, ci, _ = analyze_both("""
            int a, b;
            struct pair { int *x; int *y; };
            struct pair both = { &a, &b };
            int main(void) { *both.y = 1; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"b"}

    def test_global_named_initializer(self):
        program, ci, _ = analyze_both("""
            int a, b;
            struct pair { int *x; int *y; };
            struct pair both = { .y = &b, .x = &a };
            int main(void) { *both.x = 1; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"a"}

    def test_nested_global_array_of_structs(self):
        program, ci, _ = analyze_both("""
            int a, b;
            struct cell { int *p; };
            struct cell cells[2] = { { &a }, { &b } };
            int main(void) { *cells[0].p = 1; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"a", "b"}  # array summary

    def test_local_aggregate_initializer(self):
        program, ci, _ = analyze_both("""
            int a, b;
            int main(void) {
                int *pair[2] = { &a, &b };
                *pair[0] = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode)][-1]
        assert op_base_names(ci, write) == {"a", "b"}

    def test_char_array_from_string(self):
        program = lower("""
            char greeting[16] = "hello";
            int main(void) { return greeting[0]; }
        """)
        # Character data: the initializer adds no points-to pairs.
        assert not program.initial_store


class TestExpressions:
    def test_nested_ternary(self):
        program, ci, _ = analyze_both("""
            int a, b, c;
            int main(int argc, char **argv) {
                int *p = argc == 0 ? &a : argc == 1 ? &b : &c;
                *p = 1;
                return 0;
            }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"a", "b", "c"}

    def test_chained_assignment(self):
        program, ci, _ = analyze_both("""
            int g; int *p; int *q;
            int main(void) {
                p = q = &g;
                *p = 1;
                *q = 2;
                return 0;
            }
        """)
        for index in range(2):
            write = [n for n in program.functions["main"].nodes
                     if isinstance(n, UpdateNode) and n.is_indirect][index]
            assert op_base_names(ci, write) == {"g"}

    def test_unary_plus_and_negation(self):
        program = lower("""
            int main(void) { int x = 3; return +x - -x; }
        """)
        assert "main" in program.functions

    def test_enum_constants_in_case_labels(self):
        program, ci, _ = analyze_both("""
            enum mode { OFF, SLOW = 5, FAST };
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = &g1;
                switch (argc) {
                case SLOW: p = &g2; break;
                case FAST: break;
                }
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_do_while_zero_idiom(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) {
                do { p = &g; } while (0);
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g"}

    def test_address_of_deref_cancels(self):
        program, ci, _ = analyze_both("""
            int g; int *p; int *q;
            int main(void) {
                p = &g;
                q = &*p;
                *q = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g"}


class TestDenseMode:
    SRC = """
        int g1, g2;
        int main(int argc, char **argv) {
            int *p;
            if (argc) p = &g1; else p = &g2;
            *p = 1;
            return 0;
        }
    """

    def test_dense_puts_locals_in_store(self):
        sparse = lower(self.SRC, sparse=True)
        dense = lower(self.SRC, sparse=False)
        sparse_locals = [loc for loc in sparse.locations
                         if loc.procedure == "main"]
        dense_locals = [loc for loc in dense.locations
                        if loc.procedure == "main"]
        assert not sparse_locals  # p stays in the SSA environment
        assert any(loc.name == "p" for loc in dense_locals)

    def test_dense_agrees_semantically(self):
        import repro
        for mode in (True, False):
            program = lower(self.SRC, sparse=mode)
            ci = repro.analyze(program)
            deref = [n for n in program.functions["main"].nodes
                     if isinstance(n, UpdateNode) and n.is_indirect][-1]
            assert op_base_names(ci, deref) == {"g1", "g2"}

    def test_dense_costs_more(self):
        import repro
        sparse = lower(self.SRC, sparse=True)
        dense = lower(self.SRC, sparse=False)
        assert dense.node_count() > sparse.node_count()
        ci_sparse = repro.analyze(sparse)
        ci_dense = repro.analyze(dense)
        assert ci_dense.solution.total_pairs() \
            > ci_sparse.solution.total_pairs()


class TestScopes:
    def test_shadowed_variable_distinct(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(void) {
                int *p = &g1;
                {
                    int *p = &g2;
                    *p = 1;
                }
                *p = 2;
                return 0;
            }
        """)
        # The pointers fold to constant addresses (SSA propagation),
        # so the derefs are direct; order follows the source.
        writes = sorted((n for n in program.functions["main"].nodes
                         if isinstance(n, UpdateNode)),
                        key=lambda n: n.uid)
        assert op_base_names(ci, writes[0]) == {"g2"}
        assert op_base_names(ci, writes[1]) == {"g1"}

    def test_block_scoped_addressed_locals(self):
        program, ci, _ = analyze_both("""
            int main(void) {
                int total = 0;
                {
                    int x = 1;
                    int *p = &x;
                    total += *p;
                }
                {
                    int x = 2;
                    int *p = &x;
                    total += *p;
                }
                return total;
            }
        """)
        x_locations = [loc for loc in program.locations
                       if loc.name == "x"]
        assert len(x_locations) == 2  # one per block-scoped x