"""Scoped symbol tables."""

import pytest

from repro.errors import TypeError_
from repro.frontend.ctypes import INT, PointerType
from repro.frontend.symbols import Symbol, SymbolKind, SymbolTable


def var(name, ctype=INT):
    return Symbol(name, ctype, SymbolKind.VARIABLE)


class TestScoping:
    def test_lookup_in_current_scope(self):
        table = SymbolTable()
        sym = table.define(var("x"))
        assert table.lookup("x") is sym

    def test_lookup_falls_through_to_outer(self):
        table = SymbolTable()
        outer = table.define(var("x"))
        table.push()
        assert table.lookup("x") is outer

    def test_shadowing_creates_distinct_symbol(self):
        table = SymbolTable()
        outer = table.define(var("x"))
        table.push()
        inner = table.define(var("x"))
        assert table.lookup("x") is inner
        assert inner is not outer
        table.pop()
        assert table.lookup("x") is outer

    def test_pop_returns_scope_contents(self):
        table = SymbolTable()
        table.push()
        sym = table.define(var("y"))
        popped = table.pop()
        assert popped == {"y": sym}
        assert table.lookup("y") is None

    def test_cannot_pop_global_scope(self):
        with pytest.raises(TypeError_):
            SymbolTable().pop()

    def test_at_global_scope(self):
        table = SymbolTable()
        assert table.at_global_scope
        table.push()
        assert not table.at_global_scope


class TestDefine:
    def test_duplicate_in_same_scope_rejected(self):
        table = SymbolTable()
        table.define(var("x"))
        with pytest.raises(TypeError_, match="redeclaration"):
            table.define(var("x"))

    def test_allow_redeclare_returns_existing(self):
        table = SymbolTable()
        first = table.define(var("x"))
        second = table.define(var("x"), allow_redeclare=True)
        assert second is first

    def test_require_raises_on_missing(self):
        with pytest.raises(TypeError_, match="undeclared"):
            SymbolTable().require("ghost")

    def test_require_returns_symbol(self):
        table = SymbolTable()
        sym = table.define(var("p", PointerType(INT)))
        assert table.require("p") is sym
