"""Type elaboration and constant evaluation."""

import pytest

from repro.errors import TypeError_, UnsupportedFeatureError
from repro.frontend.ctypes import (
    ArrayType,
    EnumType,
    FunctionType,
    IntType,
    PointerType,
    RecordType,
    VoidType,
)
from repro.frontend.parser import parse_preprocessed
from repro.frontend.typemap import (
    TypeContext,
    decode_string_literal,
    int_literal,
)
from repro.ir.nodes import ValueTag


def elaborate(source: str):
    """Parse declarations and return (context, [(name, ctype)])."""
    ast = parse_preprocessed(source)
    ctx = TypeContext()
    decls = []
    for ext in ast.ext:
        if ext.__class__.__name__ == "Typedef":
            ctx.register_typedef(ext)
        elif getattr(ext, "name", None) is not None:
            decls.append((ext.name, ctx.type_of(ext.type)))
        else:
            ctx.type_of(ext.type)
    return ctx, dict(decls)


class TestBuiltins:
    @pytest.mark.parametrize("decl,kind,signed", [
        ("int x;", "int", True),
        ("unsigned x;", "int", False),
        ("unsigned int x;", "int", False),
        ("long x;", "long", True),
        ("unsigned long int x;", "long", False),
        ("short int x;", "short", True),
        ("signed char x;", "char", True),
        ("unsigned char x;", "char", False),
        ("long long x;", "longlong", True),
    ])
    def test_int_combos(self, decl, kind, signed):
        _, decls = elaborate(decl)
        ctype = decls["x"]
        assert isinstance(ctype, IntType)
        assert ctype.kind == kind and ctype.signed == signed

    def test_floats(self):
        _, decls = elaborate("float f; double d; long double ld;")
        assert decls["f"].kind == "float"
        assert decls["d"].kind == "double"
        assert decls["ld"].kind == "longdouble"

    def test_unknown_type_raises(self):
        from repro.errors import ParseError
        # pycparser itself rejects unknown type names at parse time.
        with pytest.raises(ParseError):
            elaborate("sometype x;")


class TestDerived:
    def test_pointer_chain(self):
        _, decls = elaborate("int ***p;")
        ctype = decls["p"]
        for _ in range(3):
            assert isinstance(ctype, PointerType)
            ctype = ctype.pointee
        assert isinstance(ctype, IntType)

    def test_array_with_constant_bound(self):
        _, decls = elaborate("int a[3 * 4];")
        arr = decls["a"]
        assert isinstance(arr, ArrayType) and arr.length == 12

    def test_unsized_array(self):
        _, decls = elaborate("extern int a[];")
        assert decls["a"].length is None

    def test_multidim_array(self):
        _, decls = elaborate("int m[2][3];")
        assert decls["m"].length == 2
        assert decls["m"].element.length == 3

    def test_function_type(self):
        _, decls = elaborate("int f(int a, char *b);")
        f = decls["f"]
        assert isinstance(f, FunctionType)
        assert len(f.params) == 2 and not f.varargs

    def test_varargs(self):
        _, decls = elaborate("int printf(const char *fmt, ...);")
        assert decls["printf"].varargs

    def test_void_param_list_empty(self):
        _, decls = elaborate("int f(void);")
        assert decls["f"].params == []

    def test_array_param_adjusts_to_pointer(self):
        _, decls = elaborate("int f(int a[10]);")
        assert isinstance(decls["f"].params[0], PointerType)

    def test_function_pointer(self):
        _, decls = elaborate("int (*handler)(int);")
        h = decls["handler"]
        assert isinstance(h, PointerType)
        assert isinstance(h.pointee, FunctionType)


class TestRecords:
    def test_struct_members(self):
        _, decls = elaborate(
            "struct point { int x; int y; }; struct point p;")
        p = decls["p"]
        assert isinstance(p, RecordType) and not p.is_union
        assert p.has_member("x") and p.has_member("y")
        assert isinstance(p.member_type("x"), IntType)

    def test_self_referential_struct(self):
        _, decls = elaborate(
            "struct node { int v; struct node *next; }; struct node n;")
        n = decls["n"]
        assert n.member_type("next").pointee is n

    def test_union_field_ops_collapse(self):
        _, decls = elaborate("union u { int i; float f; }; union u v;")
        v = decls["v"]
        assert v.is_union
        assert v.field_op("i") is v.field_op("f")

    def test_struct_field_ops_distinct(self):
        _, decls = elaborate("struct s { int a; int b; }; struct s v;")
        v = decls["v"]
        assert v.field_op("a") is not v.field_op("b")

    def test_same_tag_same_type(self):
        ctx, decls = elaborate(
            "struct t { int x; }; struct t a; struct t b;")
        assert decls["a"] is decls["b"]

    def test_incomplete_member_access_raises(self):
        _, decls = elaborate("struct fwd *p;")
        record = decls["p"].pointee
        with pytest.raises(TypeError_, match="incomplete"):
            record.members

    def test_unknown_member_raises(self):
        _, decls = elaborate("struct s { int a; }; struct s v;")
        with pytest.raises(TypeError_, match="no member"):
            decls["v"].member_type("zz")

    def test_contains_pointers(self):
        _, decls = elaborate(
            "struct a { int x; }; struct b { int *p; };"
            "struct c { struct b inner; };"
            "struct a va; struct b vb; struct c vc;")
        assert not decls["va"].contains_pointers()
        assert decls["vb"].contains_pointers()
        assert decls["vc"].contains_pointers()

    def test_recursive_contains_pointers_terminates(self):
        _, decls = elaborate(
            "struct n { struct n *next; }; struct n v;")
        assert decls["v"].contains_pointers()


class TestEnums:
    def test_constants_assigned(self):
        ctx, decls = elaborate("enum color { RED, GREEN = 5, BLUE };")
        assert ctx.enum_constants["RED"] == 0
        assert ctx.enum_constants["GREEN"] == 5
        assert ctx.enum_constants["BLUE"] == 6

    def test_enum_type(self):
        _, decls = elaborate("enum e { A } v;")
        assert isinstance(decls["v"], EnumType)


class TestTypedefs:
    def test_simple(self):
        _, decls = elaborate("typedef unsigned long size_t; size_t n;")
        assert isinstance(decls["n"], IntType)
        assert not decls["n"].signed

    def test_struct_typedef(self):
        _, decls = elaborate(
            "typedef struct { int x; } point_t; point_t p;")
        assert isinstance(decls["p"], RecordType)


class TestConstEval:
    def _eval(self, expr: str) -> int:
        ast = parse_preprocessed(f"int a[{expr}];")
        ctx = TypeContext()
        return ctx.type_of(ast.ext[0].type).length

    @pytest.mark.parametrize("expr,expected", [
        ("3", 3), ("2 + 3 * 4", 14), ("(2 + 3) * 4", 20),
        ("1 << 4", 16), ("15 & 7", 7), ("10 / 3", 3), ("10 % 3", 1),
        ("-(-5)", 5), ("!0 + !5", 1), ("~0 & 3", 3),
        ("1 < 2", 1), ("3 == 3", 1), ("1 && 0", 0), ("1 || 0", 1),
        ("'A'", 65), ("'\\n'", 10), ("0x20", 32), ("010", 8),
        ("1 ? 7 : 9", 7),
    ])
    def test_arithmetic(self, expr, expected):
        assert self._eval(expr) == expected

    def test_enum_constant_in_bound(self):
        ast = parse_preprocessed("enum { N = 6 }; int a[N];")
        ctx = TypeContext()
        ctx.type_of(ast.ext[0].type)
        assert ctx.type_of(ast.ext[1].type).length == 6

    def test_sizeof_type(self):
        assert self._eval("sizeof(int)") == 4
        assert self._eval("sizeof(char)") == 1
        assert self._eval("sizeof(int *)") == 8

    def test_non_constant_raises(self):
        with pytest.raises(TypeError_):
            ast = parse_preprocessed("int x; int a[x];")
            ctx = TypeContext()
            for ext in ast.ext:
                ctx.type_of(ext.type)


class TestSizeOf:
    def _type(self, source, name="x"):
        _, decls = elaborate(source)
        return decls[name]

    def test_struct_sums_members(self):
        t = self._type("struct s { int a; char b; double c; } x;")
        assert t.size_of() == 13  # packed model: 4 + 1 + 8

    def test_union_takes_max(self):
        t = self._type("union u { int a; double b; } x;")
        assert t.size_of() == 8

    def test_array_multiplies(self):
        t = self._type("int x[10];")
        assert t.size_of() == 40

    def test_infinite_struct_raises(self):
        record = RecordType("bad")
        record.complete([("self", record)])
        with pytest.raises(TypeError_):
            record.size_of()


class TestValueTags:
    def test_tags(self):
        _, decls = elaborate(
            "int i; int *p; struct s { int x; } v; int (*fp)(void);"
            "int arr[3];")
        assert decls["i"].value_tag() is ValueTag.SCALAR
        assert decls["p"].value_tag() is ValueTag.POINTER
        assert decls["v"].value_tag() is ValueTag.AGGREGATE
        assert decls["fp"].value_tag() is ValueTag.FUNCTION
        assert decls["arr"].value_tag() is ValueTag.AGGREGATE


class TestLiterals:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42), ("0x2A", 42), ("052", 42), ("0", 0),
        ("42L", 42), ("42UL", 42), ("0xFFu", 255),
    ])
    def test_int_literal(self, text, expected):
        assert int_literal(text) == expected

    @pytest.mark.parametrize("literal,expected", [
        ('"abc"', "abc"), ('"a\\nb"', "a\nb"), ('"\\t"', "\t"),
        ('"\\x41"', "A"), ('"\\101"', "A"), ('""', ""),
        ('"a\\\\b"', "a\\b"), ('"\\""', '"'),
    ])
    def test_decode_string(self, literal, expected):
        assert decode_string_literal(literal) == expected
