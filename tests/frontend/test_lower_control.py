"""Lowering of control flow: joins, loops, switch, short-circuit."""

import pytest

from repro.ir.nodes import LookupNode, MergeNode, UpdateNode
from tests.conftest import analyze_both, find_op, lower, op_base_names


class TestIf:
    def test_join_unions_pointer_values(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p;
                if (argc) p = &g1; else p = &g2;
                *p = 1;
                return 0;
            }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_then_only_branch(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = &g1;
                if (argc) p = &g2;
                *p = 1;
                return 0;
            }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_early_return_keeps_condition_read(self):
        """A read used only as a branch predicate must survive
        simplification (control-use liveness)."""
        program = lower("""
            int g; int *p;
            int main(void) {
                p = &g;
                if (*p) return 1;
                return 0;
            }
        """)
        reads = [n for n in program.functions["main"].nodes
                 if isinstance(n, LookupNode)]
        assert reads  # the *p read is alive

    def test_terminated_branches(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int *pick(int c) {
                if (c) return &g1;
                return &g2;
            }
            int main(void) { *pick(1) = 3; return 0; }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g1", "g2"}


class TestLoops:
    def test_while_list_walk(self):
        program, ci, _ = analyze_both("""
            void *malloc(unsigned long n);
            struct node { struct node *next; int v; };
            int main(void) {
                struct node *head = 0;
                int i;
                for (i = 0; i < 3; i++) {
                    struct node *n = malloc(sizeof(struct node));
                    n->next = head;
                    head = n;
                }
                int total = 0;
                while (head) {
                    total += head->v;
                    head = head->next;
                }
                return total;
            }
        """)
        reads = [n for n in program.functions["main"].nodes
                 if isinstance(n, LookupNode) and n.is_indirect]
        assert reads
        for read in reads:
            locs = ci.op_locations(read)
            assert len(locs) == 1
            (path,) = locs
            assert path.base.report_category == "heap"

    def test_loop_carried_variable_without_init(self):
        """A variable first assigned inside the loop still merges
        correctly at the exit."""
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p;
                int i;
                p = &g1;
                for (i = 0; i < argc; i++)
                    p = &g2;
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_do_while(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = &g1;
                do {
                    *p = 1;
                    p = &g2;
                } while (argc--);
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_break_merges_state(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = &g1;
                while (1) {
                    if (argc) { p = &g2; break; }
                    break;
                }
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_continue_feeds_back_edge(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = &g1;
                int i;
                for (i = 0; i < argc; i++) {
                    if (i == 1) { p = &g2; continue; }
                    *p = 1;
                }
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        # After a continue iteration, *p can write g2 too.
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_infinite_loop_without_breaks(self):
        program = lower("""
            int main(void) {
                for (;;) { }
                return 0;
            }
        """)
        assert program.functions["main"].return_node is not None


class TestSwitch:
    SRC = """
        int g1, g2, g3;
        int main(int argc, char **argv) {
            int *p = 0;
            switch (argc) {
            case 1:
                p = &g1;
                break;
            case 2:
                p = &g2;
                /* fall through */
            case 3:
                *p = 9;
                break;
            default:
                p = &g3;
                break;
            }
            *p = 1;
            return 0;
        }
    """

    def test_fallthrough_union(self):
        program, ci, _ = analyze_both(self.SRC)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        # The case-3 write sees the fallthrough value g2 and the direct
        # entry (p still null: contributes nothing).
        inner = writes[0]
        assert op_base_names(ci, inner) == {"g2"}

    def test_exit_merges_all_cases(self):
        program, ci, _ = analyze_both(self.SRC)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        final = writes[-1]
        assert op_base_names(ci, final) == {"g1", "g2", "g3"}

    def test_switch_without_default_keeps_entry_state(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = &g1;
                switch (argc) {
                case 1: p = &g2; break;
                }
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}


class TestConditionalExpressions:
    def test_ternary_pointer_choice(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(int argc, char **argv) {
                int *p = argc ? &g1 : &g2;
                *p = 1;
                return 0;
            }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_short_circuit_side_effects_merge(self):
        program, ci, _ = analyze_both("""
            int g1, g2; int *p;
            int set2(void) { p = &g2; return 1; }
            int main(int argc, char **argv) {
                p = &g1;
                if (argc && set2()) { }
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}

    def test_comma_expression(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int main(void) {
                int *p;
                p = (p = &g1, &g2);
                *p = 1;
                return 0;
            }
        """)
        write = find_op(program, "main", "write")
        assert op_base_names(ci, write) == {"g2"}
