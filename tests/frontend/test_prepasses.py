"""Address-taken and recursion pre-passes."""

from repro.frontend.parser import parse_preprocessed
from repro.frontend.prepasses import run_prepasses


def prepass(source: str):
    ast = parse_preprocessed(source)
    func_defs = {ext.decl.name: ext for ext in ast.ext
                 if ext.__class__.__name__ == "FuncDef"}
    return run_prepasses(func_defs)


class TestAddressTaken:
    def test_simple_address_of(self):
        info = prepass("void f(void) { int x; int *p = &x; }")
        assert info.is_address_taken("f", "x")
        assert not info.is_address_taken("f", "p")

    def test_address_of_member_marks_base(self):
        info = prepass(
            "struct s { int a; };"
            "void f(void) { struct s v; int *p = &v.a; }")
        assert info.is_address_taken("f", "v")

    def test_address_of_element_marks_array(self):
        info = prepass("void f(void) { int a[4]; int *p = &a[1]; }")
        assert info.is_address_taken("f", "a")

    def test_address_through_deref_marks_nothing(self):
        """&p->field exposes no named variable's storage."""
        info = prepass(
            "struct s { int a; };"
            "void f(struct s *p) { int *q = &p->a; }")
        assert not info.is_address_taken("f", "p")

    def test_per_function_scoping(self):
        info = prepass(
            "void f(void) { int x; int *p = &x; }"
            "void g(void) { int x; x = 1; }")
        assert info.is_address_taken("f", "x")
        assert not info.is_address_taken("g", "x")

    def test_function_reference_detected(self):
        info = prepass(
            "int h(int x) { return x; }"
            "void f(void) { int (*fp)(int) = h; fp(1); }")
        assert "h" in info.address_taken_functions
        assert "f" in info.has_indirect_call

    def test_direct_call_is_not_function_reference(self):
        info = prepass(
            "int h(int x) { return x; }"
            "void f(void) { h(1); }")
        assert "h" not in info.address_taken_functions


class TestRecursion:
    def test_self_recursion(self):
        info = prepass("int f(int n) { return n ? f(n - 1) : 0; }")
        assert "f" in info.recursive

    def test_mutual_recursion(self):
        info = prepass(
            "int g(int n);"
            "int f(int n) { return n ? g(n - 1) : 0; }"
            "int g(int n) { return n ? f(n - 1) : 1; }")
        assert {"f", "g"} <= info.recursive

    def test_non_recursive(self):
        info = prepass(
            "int leaf(int n) { return n + 1; }"
            "int caller(int n) { return leaf(n); }")
        assert info.recursive == set()

    def test_call_chain_not_recursive(self):
        info = prepass(
            "int a(int n) { return n; }"
            "int b(int n) { return a(n); }"
            "int c(int n) { return b(n); }")
        assert info.recursive == set()

    def test_indirect_call_conservative(self):
        """With &h taken and f making an indirect call, f→h is assumed;
        h calls f directly, closing a conservative cycle."""
        info = prepass(
            "int f(int n);"
            "int h(int n) { return f(n); }"
            "int f(int n) { int (*fp)(int) = h; return fp(n); }")
        assert {"f", "h"} <= info.recursive

    def test_direct_calls_recorded(self):
        info = prepass(
            "int a(void) { return 0; }"
            "int b(void) { return a() + a(); }")
        assert info.direct_calls["b"] == {"a"}
