"""The top-level public API."""

import pytest

import repro


SRC = """
int g; int *p;
void set(int **q) { *q = &g; }
int main(void) { set(&p); *p = 1; return 0; }
"""


class TestParse:
    def test_parse_source(self):
        program = repro.parse_source(SRC)
        assert set(program.functions) == {"set", "main"}
        assert program.roots == ["main"]

    def test_parse_file(self, tmp_path):
        path = tmp_path / "x.c"
        path.write_text(SRC)
        program = repro.parse_file(path)
        assert program.name == "x.c"
        assert program.source_lines == 3

    def test_parse_source_with_defines(self):
        program = repro.parse_source(
            "#if WANTED\nint main(void){return 0;}\n#endif\n",
            defines={"WANTED": "1"})
        assert "main" in program.functions

    def test_custom_roots(self):
        program = repro.parse_source(SRC, roots=["set"])
        assert program.roots == ["set"]

    def test_parse_error_type(self):
        with pytest.raises(repro.ParseError):
            repro.parse_source("int main(void) { return ; ; } } }")


class TestAnalyze:
    def test_sensitivity_dispatch(self):
        program = repro.parse_source(SRC)
        assert repro.analyze(program).flavor == "insensitive"
        assert repro.analyze(program, sensitivity="sensitive").flavor \
            == "sensitive"
        assert repro.analyze(program,
                             sensitivity="flowinsensitive").flavor \
            == "flowinsensitive"

    def test_unknown_sensitivity(self):
        program = repro.parse_source(SRC)
        with pytest.raises(ValueError, match="unknown sensitivity"):
            repro.analyze(program, sensitivity="psychic")

    def test_docstring_example_works(self):
        program = repro.parse_source(SRC)
        ci = repro.analyze(program)
        cs = repro.analyze(program, sensitivity="sensitive")
        assert ci.solution.total_pairs() >= cs.solution.total_pairs()

    def test_version(self):
        assert repro.__version__
