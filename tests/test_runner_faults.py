"""Fault isolation in the parallel driver.

One bad program must cost exactly one task: a worker that raises ships
back a structured error outcome, a worker that dies outright (here:
``os._exit`` injected via ``REPRO_FAULT_INJECT``, indistinguishable
from an OOM kill to the parent) breaks its pool but every survivor is
re-run in isolation and the dead task is named.  ``fail_fast=True``
restores the old abort-on-first-failure contract.
"""

import json

import pytest

from repro.errors import ReproError
from repro.runner import (
    FAULT_INJECT_ENV,
    RunReport,
    TaskError,
    TaskOutcome,
    run_files_report,
    run_suite,
    run_suite_report,
)

NAMES = ["anagram", "backprop", "span"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestRaisingWorker:
    """A worker exception fails its task, not the sweep."""

    def test_survivors_complete_parallel(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "backprop=raise")
        report = run_suite_report(names=NAMES, jobs=2,
                                  flavors=("insensitive",))
        assert not report.ok
        assert sorted(report.results) == ["anagram", "span"]
        (error,) = report.errors
        assert error.name == "backprop"
        assert error.kind == "ReproError"
        assert "injected fault" in error.message
        assert "injected fault" in (error.traceback or "")

    def test_survivors_complete_inline(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "span=raise")
        report = run_suite_report(names=NAMES, jobs=1,
                                  flavors=("insensitive",))
        assert sorted(report.results) == ["anagram", "backprop"]
        assert [e.name for e in report.errors] == ["span"]

    def test_outcomes_preserve_submission_order(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "anagram=raise")
        report = run_suite_report(names=NAMES, jobs=2,
                                  flavors=("insensitive",))
        assert [o.name for o in report.outcomes] == NAMES
        assert not report.outcomes[0].ok
        assert report.outcomes[1].ok and report.outcomes[2].ok

    def test_error_record_emitted(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "backprop=raise")
        report = run_suite_report(names=NAMES, jobs=2,
                                  flavors=("insensitive",))
        (record,) = [r for r in report.records if r["kind"] == "error"]
        assert record["program"] == "backprop"
        assert record["error"]["kind"] == "ReproError"
        assert json.dumps(record)  # JSON-serializable as-is


class TestKilledWorker:
    """A hard worker death (``os._exit``) is contained and named."""

    def test_dead_worker_named_survivors_returned(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "backprop=exit")
        report = run_suite_report(names=NAMES, jobs=2,
                                  flavors=("insensitive",))
        assert sorted(report.results) == ["anagram", "span"]
        (error,) = report.errors
        assert error.name == "backprop"
        assert error.kind == "WorkerDied"
        assert "backprop" in str(error)

    def test_dead_worker_error_record(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "span=exit")
        report = run_suite_report(names=NAMES, jobs=2,
                                  flavors=("insensitive",))
        (record,) = [r for r in report.records if r["kind"] == "error"]
        assert record["program"] == "span"
        assert record["error"]["kind"] == "WorkerDied"

    def test_survivor_results_match_clean_run(self, monkeypatch):
        clean = run_suite(names=["anagram"], jobs=1,
                          flavors=("insensitive",))
        monkeypatch.setenv(FAULT_INJECT_ENV, "span=exit")
        report = run_suite_report(names=["anagram", "span"], jobs=2,
                                  flavors=("insensitive",))
        survivor = report.results["anagram"]["insensitive"]
        assert survivor.counters.as_dict() \
            == clean["anagram"]["insensitive"].counters.as_dict()


class TestFailFast:
    def test_parallel_raises_naming_task(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "backprop=raise")
        with pytest.raises(ReproError, match="backprop"):
            run_suite_report(names=NAMES, jobs=2,
                             flavors=("insensitive",), fail_fast=True)

    def test_inline_raises_naming_task(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "anagram=raise")
        with pytest.raises(ReproError, match="anagram"):
            run_suite_report(names=NAMES, jobs=1,
                             flavors=("insensitive",), fail_fast=True)

    def test_back_compat_run_suite_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "anagram=raise")
        with pytest.raises(ReproError, match="anagram"):
            run_suite(names=NAMES, jobs=2, flavors=("insensitive",))


class TestRunFilesFaults:
    def test_bad_file_isolated(self, tmp_path):
        good = tmp_path / "good.c"
        good.write_text("int x; int *p = &x; int main(void){return *p;}")
        bad = tmp_path / "bad.c"
        bad.write_text("this is not C at all ((((")
        report = run_files_report([good, bad], jobs=2)
        assert not report.ok
        assert list(report.results) == [str(good)]
        (error,) = report.errors
        assert error.name == str(bad)

    def test_missing_file_isolated_inline(self, tmp_path):
        good = tmp_path / "good.c"
        good.write_text("int main(void){return 0;}")
        missing = tmp_path / "nope.c"
        report = run_files_report([good, missing], jobs=1)
        assert list(report.results) == [str(good)]
        assert [e.name for e in report.errors] == [str(missing)]


class TestCorruptCacheUnderParallelSweep:
    def test_corrupt_entry_relowered_by_worker(self, tmp_path,
                                               monkeypatch):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        first = run_suite_report(names=["anagram", "span"], jobs=2,
                                 flavors=("insensitive",))
        assert first.ok
        entries = sorted(cache.glob("*.pkl"))
        assert len(entries) == 2
        for entry in entries:
            entry.write_bytes(b"corrupt" + entry.read_bytes()[:32])
        second = run_suite_report(names=["anagram", "span"], jobs=2,
                                  flavors=("insensitive",))
        assert second.ok
        for name in ("anagram", "span"):
            assert second.results[name]["insensitive"].counters.as_dict() \
                == first.results[name]["insensitive"].counters.as_dict()
        # The corrupt entries were replaced, not just skipped.
        assert all(r["cache"] == "miss" for r in second.records)
        third = run_suite_report(names=["anagram", "span"], jobs=2,
                                 flavors=("insensitive",))
        assert all(r["cache"] == "hit" for r in third.records)


class TestReportShape:
    def test_report_properties(self):
        ok = TaskOutcome(name="a", results={}, records=[{"kind": "x"}])
        bad = TaskOutcome(name="b",
                          error=TaskError(name="b", kind="E", message="m"),
                          records=[{"kind": "error"}])
        report = RunReport(outcomes=[ok, bad])
        assert not report.ok
        assert list(report.results) == ["a"]
        assert [e.name for e in report.errors] == ["b"]
        assert [r["kind"] for r in report.records] == ["x", "error"]
