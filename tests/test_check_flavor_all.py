"""``check --flavor all`` shares one lowering across flavors.

A flavor-all check task lowers its program (hazard model on) exactly
once; the three analyses all consume that one :class:`Program`.  This
was suspected of re-lowering per flavor — it never did, but nothing
asserted it, so this pins the behavior two ways: a spy on the lowering
entry point, and the ``cache`` field that every check record now
carries (one lowering ⇒ one status, equal across a task's flavors).
"""

from __future__ import annotations

import pytest

import repro.frontend.lower as lower_module
from repro.runner import run_check_report

SOURCE = """
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    return 0;
}
"""

ALL_FLAVORS = ("insensitive", "sensitive", "flowinsensitive")


@pytest.fixture
def source_c(tmp_path):
    path = tmp_path / "hazard.c"
    path.write_text(SOURCE)
    return str(path)


def _check_all(source_c, cache, **kwargs):
    return run_check_report(paths=[source_c], flavors=ALL_FLAVORS,
                            cache=cache, jobs=1, **kwargs)


def test_flavor_all_lowers_once(source_c, tmp_path, monkeypatch):
    calls = []
    real = lower_module.lower_file

    def spy(path, **kwargs):
        calls.append(str(path))
        return real(path, **kwargs)

    monkeypatch.setattr(lower_module, "lower_file", spy)
    report = _check_all(source_c, cache=str(tmp_path / "cache"))
    assert not report.errors
    assert calls == [source_c]  # one task, one lowering, three flavors


@pytest.mark.parametrize("incremental", [False, True])
def test_flavor_all_records_share_one_cache_status(source_c, tmp_path,
                                                   incremental):
    cache = str(tmp_path / "cache")
    for expected in ("miss", "hit"):
        report = _check_all(source_c, cache=cache,
                            incremental=incremental)
        records = [r for r in report.records if r.get("kind") == "check"]
        assert [r["flavor"] for r in records] == list(ALL_FLAVORS)
        statuses = {r["cache"] for r in records}
        assert statuses == {expected}


def test_flavor_all_findings_agree_on_digest_fields(source_c, tmp_path):
    """Sanity on the rest of the record shape the harness relies on."""
    report = _check_all(source_c, cache=str(tmp_path / "cache"),
                        incremental=True)
    for record in report.records:
        assert record["kind"] == "check"
        dense = record["dense"]
        for counter in ("sccs_resolved", "summaries_reused",
                        "summary_cache_hits", "summary_scc_total"):
            assert counter in dense, record["flavor"]
