"""``repro analyze`` client sections and ``--format json``."""

import json

import pytest

from repro.cli import main

SOURCE = """
int g;
int h;
void set(int *p, int v) { *p = v; }
int main(void) {
    int *q = &g;
    set(q, 5);
    h = *q;
    int dead = 0;
    dead = h;
    return dead;
}
"""


@pytest.fixture
def flow_c(tmp_path):
    path = tmp_path / "flow.c"
    path.write_text(SOURCE)
    return str(path)


class TestJson:
    def test_document_shape(self, flow_c, capsys):
        assert main(["analyze", flow_c, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["program"] == "flow.c"
        assert set(doc["sizes"]) >= {"source_lines", "vdg_nodes"}
        flavor = doc["flavors"]["insensitive"]
        assert flavor["pairs"]["total"] > 0
        assert "indirect_reads" in flavor

    def test_client_sections_sorted_and_complete(self, flow_c, capsys):
        assert main(["analyze", flow_c, "--format", "json",
                     "--modref", "--defuse", "--deadstore"]) == 0
        doc = json.loads(capsys.readouterr().out)
        flavor = doc["flavors"]["insensitive"]
        mod = flavor["modref"]
        assert [e["function"] for e in mod] == \
            sorted(e["function"] for e in mod)
        reads = flavor["defuse"]
        assert [e["read"] for e in reads] == \
            sorted(e["read"] for e in reads)
        dead = flavor["deadstore"]
        assert set(dead["counts"]) == \
            {"dead", "unreachable", "live", "total"}

    def test_json_deterministic(self, flow_c, capsys):
        docs = []
        for _ in range(2):
            assert main(["analyze", flow_c, "--format", "json",
                         "--modref", "--defuse", "--deadstore"]) == 0
            doc = json.loads(capsys.readouterr().out)
            for flavor in doc["flavors"].values():
                flavor.pop("elapsed_seconds", None)
            docs.append(doc)
        assert docs[0] == docs[1]

    def test_both_flavors_with_comparison(self, flow_c, capsys):
        assert main(["analyze", flow_c, "--format", "json",
                     "--sensitivity", "both"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {"insensitive", "sensitive"} <= set(doc["flavors"])
        assert "comparison" in doc


class TestText:
    def test_client_blocks_rendered(self, flow_c, capsys):
        assert main(["analyze", flow_c, "--modref", "--defuse",
                     "--deadstore"]) == 0
        out = capsys.readouterr().out
        assert "main: mod=" in out
        assert "reads {" in out
        assert "dead stores:" in out
