"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import pytest

import repro
from repro.analysis.common import AnalysisResult
from repro.ir.graph import Program
from repro.ir.nodes import LookupNode, Node, OutputPort, UpdateNode
from repro.suite.registry import PROGRAM_NAMES, load_program


def lower(source: str, name: str = "<test>", **options) -> Program:
    """Preprocess/parse/lower a C snippet."""
    return repro.parse_source(source, name=name, **options)


def analyze_both(source: str, **options
                 ) -> Tuple[Program, AnalysisResult, AnalysisResult]:
    """Lower a snippet and run both analyses."""
    program = lower(source, **options)
    ci = repro.analyze_insensitive(program)
    cs = repro.analyze_sensitive(program, ci_result=ci)
    return program, ci, cs


def find_op(program: Program, function: str, kind: str,
            index: int = 0) -> Node:
    """The ``index``-th lookup ("read") or update ("write") in a
    function, in uid order."""
    graph = program.functions[function]
    wanted = LookupNode if kind == "read" else UpdateNode
    ops = sorted((n for n in graph.nodes if isinstance(n, wanted)),
                 key=lambda n: n.uid)
    return ops[index]


def target_names(result: AnalysisResult, output: OutputPort) -> Set[str]:
    """Base-location names a value may point at (ignoring access ops)."""
    return {path.base.name for path in result.targets(output)}


def op_location_names(result: AnalysisResult, node: Node) -> Set[str]:
    """Full path strings an op may reference/modify."""
    return {repr(path) for path in result.op_locations(node)}


def op_base_names(result: AnalysisResult, node: Node) -> Set[str]:
    return {path.base.name for path in result.op_locations(node)}


class _SuiteCache:
    """Lazily loads + analyzes suite programs once per session."""

    def __init__(self) -> None:
        self._programs: Dict[str, Program] = {}
        self._ci: Dict[str, AnalysisResult] = {}
        self._cs: Dict[str, AnalysisResult] = {}

    def program(self, name: str) -> Program:
        if name not in self._programs:
            self._programs[name] = load_program(name)
        return self._programs[name]

    def ci(self, name: str) -> AnalysisResult:
        if name not in self._ci:
            self._ci[name] = repro.analyze_insensitive(self.program(name))
        return self._ci[name]

    def cs(self, name: str) -> AnalysisResult:
        if name not in self._cs:
            self._cs[name] = repro.analyze_sensitive(
                self.program(name), ci_result=self.ci(name))
        return self._cs[name]


@pytest.fixture(scope="session")
def suite_cache() -> _SuiteCache:
    return _SuiteCache()


@pytest.fixture(scope="session", params=PROGRAM_NAMES)
def suite_name(request) -> str:
    return request.param
