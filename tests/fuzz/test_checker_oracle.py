"""The checker leg of the differential oracle.

Two obligations: the ``drop-null-init`` source mutation must always
produce seeds the ``uninit`` checker catches (zero false negatives on
the mutated corpus), and a deliberately blinded checker must be
reported as a soundness failure — proving the oracle has teeth.
"""

import pytest

from repro.analysis.checkers.base import REGISTRY
from repro.fuzz import check_program, generate_program
from repro.fuzz.driver import run_fuzz
from repro.fuzz.mutations import (
    SOURCE_MUTATIONS,
    apply_drop_null_init,
    drop_null_init_candidates,
)

pytestmark = pytest.mark.fuzz

#: A hand-written program where dropping the init of ``v1`` traps on a
#: line that dereferences it — a guaranteed mutation candidate.
DEREF = """\
int g0 = 1;
int main(void) {
    int *v1 = &g0;
    int v2 = 0;
    v2 = *v1;
    return v2;
}
"""

NO_POINTERS = """\
int main(void) {
    int v0 = 1;
    return v0;
}
"""


class TestDropNullInit:
    def test_registered(self):
        assert SOURCE_MUTATIONS["drop-null-init"] is apply_drop_null_init

    def test_candidates_preserve_line_numbering(self):
        for name, mutated in drop_null_init_candidates(DEREF):
            assert mutated.count("\n") == DEREF.count("\n")
            assert f"{name};" in mutated

    def test_applies_to_deref_program(self):
        mutated = apply_drop_null_init(DEREF)
        assert mutated is not None
        assert "int *v1;" in mutated

    def test_no_candidates_returns_none(self):
        assert apply_drop_null_init(NO_POINTERS) is None

    def test_mutant_caught_by_uninit_checker(self):
        mutated = apply_drop_null_init(DEREF)
        report = check_program(mutated, name="mutant.c",
                               expect_trap="uninit")
        assert report.ok, report.violations
        assert report.stats.get("checker_true_positives", 0) >= 1

    def test_missing_trap_is_a_violation(self):
        # Un-mutated source: no concrete trap, so expecting one fails.
        report = check_program(DEREF, name="clean.c",
                               expect_trap="uninit")
        assert not report.ok
        assert "trap" in {v.kind for v in report.violations}


class TestOracleHasTeeth:
    def test_blinded_uninit_checker_is_caught(self, monkeypatch):
        monkeypatch.setitem(REGISTRY._checkers, "uninit",
                            lambda result: iter(()))
        mutated = apply_drop_null_init(DEREF)
        report = check_program(mutated, name="blind.c",
                               expect_trap="uninit")
        assert not report.ok
        assert "checker" in {v.kind for v in report.violations}


class TestDrivenCampaign:
    def test_mutated_corpus_has_zero_false_negatives(self):
        report = run_fuzz(0, 8, mutate="drop-null-init", shrink=False)
        assert report.ok, [
            v for o in report.failures for v in o.violations]
        mutated = sum(1 for o in report.outcomes
                      if not o.stats.get("mutation_skipped"))
        assert mutated >= 1

    def test_generated_seeds_pass_checker_leg(self):
        for seed in range(2):
            program = generate_program(seed)
            report = check_program(program.source, name=program.name)
            assert report.ok, report.violations
            assert "check_ci" in report.digests
            assert "check_cs" in report.digests
