"""The seeded random program generator."""

import re
import shutil
import subprocess

import pytest

from repro.fuzz.generator import generate_program


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(7)
        b = generate_program(7)
        assert a.source == b.source
        assert a.manifest() == b.manifest()

    def test_seeds_produce_distinct_programs(self):
        sources = {generate_program(seed).source for seed in range(8)}
        assert len(sources) == 8

    def test_max_nodes_changes_output(self):
        assert (generate_program(0, max_nodes=40).source
                != generate_program(0, max_nodes=160).source)


class TestShape:
    def test_manifest_records_features(self):
        program = generate_program(0)
        manifest = program.manifest()
        assert manifest["seed"] == 0
        features = manifest["features"]
        assert features["helpers"] >= 1
        assert features["globals"] >= 5
        assert features["indirect_reads"] + features.get(
            "indirect_writes", 0) >= 0

    def test_base_globals_always_present(self):
        for seed in range(5):
            source = generate_program(seed).source
            for name in ("g0", "g1", "ga", "gp"):
                assert re.search(rf"\b{name}\b", source), (seed, name)

    def test_loop_counters_only_self_increment(self):
        """Termination hinges on the reserved ``liN`` counters: nothing
        may write or address-take them except their own declaration and
        loop step."""
        for seed in range(30):
            source = generate_program(seed).source
            for line in source.splitlines():
                stripped = line.strip()
                match = re.match(r"(?:int )?(li\d+)\s*=", stripped)
                if match:
                    counter = match.group(1)
                    assert stripped in (f"int {counter} = 0;",
                                        f"{counter} = 0;",
                                        f"{counter} = {counter} + 1;"
                                        ), (seed, stripped)
                assert not re.search(r"&\s*li\d+", stripped), (seed,
                                                               stripped)

    def test_recursive_depth_param_never_reassigned(self):
        """In a *recursive* helper ``b`` is the decreasing depth bound;
        only the generated clamp may write it.  (Non-recursive helpers
        may reassign their parameters freely.)"""
        for seed in range(30):
            source = generate_program(seed).source
            # Split into function bodies on definition headers.
            chunks = re.split(r"\n(?=int )", source)
            for chunk in chunks:
                if not re.match(r"int \*h\d+\(int \*a, int b\) \{",
                                chunk):
                    continue
                if "b - 1" not in chunk:  # not the recursive helper
                    continue
                for line in chunk.splitlines():
                    stripped = line.strip()
                    if re.match(r"b\s*=", stripped):
                        assert stripped == "b = 8;", (seed, stripped)


@pytest.mark.skipif(shutil.which("gcc") is None, reason="needs gcc")
class TestRealC:
    def test_generated_programs_compile_and_run(self, tmp_path):
        for seed in range(3):
            program = generate_program(seed)
            src = tmp_path / f"{program.name}.c"
            src.write_text(program.source)
            exe = tmp_path / program.name
            compile_run = subprocess.run(
                ["gcc", "-std=c99", "-Wall", "-Werror=implicit",
                 "-o", str(exe), str(src)],
                capture_output=True, text=True)
            assert compile_run.returncode == 0, compile_run.stderr
            run = subprocess.run([str(exe)], capture_output=True,
                                 timeout=10)
            assert run.returncode == 0


@pytest.mark.fuzz
def test_many_seeds_generate_cleanly():
    for seed in range(150):
        program = generate_program(seed)
        assert "int main(void)" in program.source
