"""The ``repro fuzz`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.telemetry import read_jsonl


class TestFuzzCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "0", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 program(s)" in out
        assert "0 failing" in out

    def test_telemetry_records_written(self, tmp_path, capsys):
        path = tmp_path / "fuzz.jsonl"
        assert main(["fuzz", "--seed", "5", "--count", "2",
                     "--telemetry", str(path)]) == 0
        records = read_jsonl(path)
        assert len(records) == 2
        assert all(r["kind"] == "fuzz" for r in records)
        assert all(r["status"] == "ok" for r in records)
        assert [r["seed"] for r in records] == [5, 6]
        assert records[0]["stats"]["memory_ops"] > 0

    def test_unknown_mutation_rejected(self, capsys):
        assert main(["fuzz", "--count", "1",
                     "--mutate", "no-such-bug"]) == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_summaries_leg_passes(self, capsys):
        """Every seed must survive the incremental-equivalence leg:
        cold, replay, and after-eviction summary solves all
        digest-identical to the whole-program solutions."""
        assert main(["fuzz", "--seed", "0", "--count", "2",
                     "--summaries"]) == 0
        assert "0 failing" in capsys.readouterr().out


@pytest.mark.fuzz
class TestFailureArtifacts:
    def test_mutated_campaign_writes_replayable_artifacts(
            self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        telemetry = tmp_path / "fuzz.jsonl"
        code = main(["fuzz", "--seed", "3", "--count", "1",
                     "--mutate", "overeager-strong-updates",
                     "--artifacts", str(artifacts),
                     "--telemetry", str(telemetry)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL seed 3" in out

        bundle = artifacts / "fuzz-3"
        assert (bundle / "original.c").is_file()
        assert (bundle / "shrunk.c").is_file()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["seed"] == 3
        assert manifest["mutation"] == "overeager-strong-updates"
        assert manifest["violations"]
        assert all(v["kind"] == "concrete"
                   for v in manifest["violations"])

        record = read_jsonl(telemetry)[0]
        assert record["status"] == "violation"
        assert record["mutation"] == "overeager-strong-updates"
        assert record["shrunk_lines"] == manifest["shrunk_lines"]
