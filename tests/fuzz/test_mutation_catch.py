"""The self-test: deliberately broken transfer rules must be caught.

This is the acceptance gate for the whole subsystem — a seeded
mutation (one intentionally wrong transfer rule) has to be detected by
the differential oracle and auto-shrunk to a small reproducer.
"""

import pytest

from repro.fuzz import check_program, generate_program
from repro.fuzz.driver import run_fuzz
from repro.fuzz.mutations import MUTATIONS, cs_survive_dom

pytestmark = pytest.mark.fuzz


class TestOvereagerStrongUpdates:
    def test_caught_and_shrunk_to_small_reproducer(self):
        report = run_fuzz(0, 10, mutate="overeager-strong-updates",
                          shrink=True, fail_fast=True)
        assert not report.ok
        failure = report.failures[0]
        assert failure.violations
        # Only the concrete-execution oracle can see this bug: the
        # mutation blinds the fixpoint verifier the same way it blinds
        # the analyses, so no other oracle kind fires.
        assert {v.kind for v in failure.violations} == {"concrete"}
        assert failure.shrunk_lines is not None
        assert failure.shrunk_lines <= 25

    def test_clean_run_of_same_seed_passes(self):
        report = run_fuzz(3, 1, shrink=False)
        assert report.ok


class TestCsSurviveDom:
    def test_caught_by_fixpoint_oracle(self):
        report = run_fuzz(0, 10, mutate="cs-survive-dom",
                          shrink=False, fail_fast=True)
        assert not report.ok
        kinds = {v.kind for outcome in report.failures
                 for v in outcome.violations}
        assert "fixpoint" in kinds


def test_every_registered_mutation_is_catchable():
    """No mutation may rot into one the oracles silently miss."""
    for name in MUTATIONS:
        report = run_fuzz(0, 30, mutate=name, shrink=False,
                          fail_fast=True)
        assert not report.ok, f"mutation {name!r} went undetected"
