"""The slice-soundness oracle leg and its mutation tooth."""

import pytest

from repro.fuzz.concrete import interpret_source
from repro.fuzz.driver import run_fuzz
from repro.fuzz.oracle import check_program

pytestmark = pytest.mark.fuzz

FLOW = """
int g;
void set(int *p, int v) {
    *p = v;
}
int get(int *p) {
    return *p;
}
int main(void) {
    int *q = &g;
    set(q, 5);
    return get(q);
}
"""

AGGREGATE = """
struct S { int a; int b; };
struct S g;
struct S s2;
int main(void) {
    struct S *p = &g;
    struct S *q = &s2;
    *p = *q;
    int r = p->a;
    return r;
}
"""


class TestConcreteFlows:
    def test_def_use_flow_recorded(self):
        trace = interpret_source(FLOW, name="flow.c")
        # set writes *p on line 4; get reads *p on line 7.
        assert (4, 7) in trace.flows

    def test_overwrite_moves_the_def(self):
        source = """
int g;
int main(void) {
    int *p = &g;
    *p = 1;
    *p = 2;
    return *p;
}
"""
        trace = interpret_source(source, name="kill.c")
        assert (6, 7) in trace.flows
        assert (5, 7) not in trace.flows

    def test_aggregate_copy_defines_fields(self):
        trace = interpret_source(AGGREGATE, name="agg.c")
        # The whole-struct copy on line 8 defines p->a read on line 9.
        assert (8, 9) in trace.flows


class TestOracleLeg:
    def test_clean_program_checks_flows(self):
        report = check_program(FLOW, name="flow.c")
        assert report.ok
        assert report.stats["slice_flows_checked"] >= 1
        assert "depgraph" in report.digests

    def test_aggregate_alias_flow_is_an_obligation(self):
        report = check_program(AGGREGATE, name="agg.c")
        assert report.ok
        assert report.stats["slice_flows_checked"] >= 1

    def test_leg_can_be_disabled(self):
        report = check_program(FLOW, name="flow.c", slices=False)
        assert report.ok
        assert "slice_flows_checked" not in report.stats


class TestDropAliasDeps:
    def test_caught_by_slice_oracle_only(self):
        report = run_fuzz(0, 25, mutate="drop-alias-deps",
                          shrink=False, fail_fast=True)
        assert not report.ok
        kinds = {v.kind for outcome in report.failures
                 for v in outcome.violations}
        assert kinds == {"slice"}

    def test_clean_campaign_has_no_slice_violations(self):
        report = run_fuzz(0, 5, shrink=False)
        assert report.ok
        assert any(o.stats.get("slice_flows_checked", 0) > 0
                   for o in report.outcomes)
