"""The failing-program minimizer."""

from repro.frontend.lower import lower_source
from repro.fuzz import generate_program, shrink_program


def non_blank(source):
    return sum(1 for line in source.splitlines() if line.strip())


class TestShrink:
    def test_shrink_reduces_while_preserving_predicate(self):
        program = generate_program(0)

        def still_fails(source):
            return "gp" in source

        small = shrink_program(program, still_fails)
        assert "gp" in small.source
        assert non_blank(small.source) < non_blank(program.source)
        assert small.name.endswith("-shrunk")

    def test_shrunk_program_still_lowers(self):
        program = generate_program(2)
        small = shrink_program(program, lambda src: "main" in src)
        lower_source(small.source, name=small.name)

    def test_predicate_exceptions_reject_candidate(self):
        """A candidate that makes the checker crash must not be kept."""
        program = generate_program(1)
        original_lines = non_blank(program.source)

        def picky(source):
            if "g0" not in source:
                raise RuntimeError("checker crashed")
            return True

        small = shrink_program(program, picky)
        assert "g0" in small.source
        assert non_blank(small.source) <= original_lines

    def test_noop_when_nothing_removable(self):
        program = generate_program(3)
        small = shrink_program(program, lambda src: False)
        # predicate never holds -> nothing can be removed
        assert small.source == program.source
