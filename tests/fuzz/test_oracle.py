"""The differential soundness oracle."""

import pytest

from repro.fuzz import check_program, generate_program
from repro.fuzz.oracle import deep_checks, solution_digest
from repro.analysis.insensitive import analyze_insensitive
from repro.frontend.lower import lower_source

CLEAN = """\
int g0 = 1;
int g1 = 2;
int *gp = &g0;
int main(void) {
    int v0 = 0;
    gp = &g1;
    v0 = *gp;
    *gp = v0 + 1;
    return 0;
}
"""


class TestCheckProgram:
    def test_clean_program_passes(self):
        report = check_program(CLEAN, name="clean.c")
        assert report.ok
        assert report.violations == []
        assert report.stats["memory_ops"] > 0
        assert report.stats["concrete_accesses"] >= 2
        assert set(report.digests) >= {"ci", "cs", "fi"}

    def test_trap_reported_as_violation(self):
        looping = ("int g0 = 0;\n"
                   "int main(void) {\n"
                   "    while (1) { g0 = g0 + 1; }\n"
                   "    return 0;\n"
                   "}\n")
        report = check_program(looping, step_budget=200)
        assert not report.ok
        assert {v.kind for v in report.violations} == {"trap"}

    def test_generated_seeds_pass(self):
        for seed in range(3):
            program = generate_program(seed)
            report = check_program(program.source, name=program.name)
            assert report.ok, report.violations

    def test_signature_is_kind_set(self):
        report = check_program(CLEAN)
        assert report.signature() == frozenset()


class TestDigest:
    def test_digest_deterministic_across_runs(self):
        digests = set()
        for _ in range(2):
            program = lower_source(CLEAN, name="digest.c")
            digests.add(solution_digest(analyze_insensitive(program)))
        assert len(digests) == 1

    def test_digest_differs_between_programs(self):
        a = lower_source(CLEAN, name="a.c")
        b = lower_source(CLEAN.replace("gp = &g1;", "gp = &g0;"),
                         name="a.c")
        assert (solution_digest(analyze_insensitive(a))
                != solution_digest(analyze_insensitive(b)))


@pytest.mark.fuzz
class TestCampaign:
    def test_thirty_seeds_zero_violations(self):
        for seed in range(30):
            program = generate_program(seed)
            report = check_program(program.source, name=program.name)
            assert report.ok, (seed, report.violations)

    def test_deep_checks_jobs_and_cache(self):
        programs = [(p.name, p.source)
                    for p in (generate_program(s) for s in range(3))]
        assert deep_checks(programs, jobs=2) == []
