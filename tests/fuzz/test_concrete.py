"""The concrete pointer-tracing interpreter."""

import pytest

from repro.fuzz.concrete import ConcreteTrap, interpret_source

SIMPLE = """\
int g0 = 1;
int g1 = 2;
int *gp = &g0;
int main(void) {
    int v0 = 0;
    gp = &g1;
    v0 = *gp;
    *gp = 5;
    return 0;
}
"""

HEAP = """\
struct S0 { int a; int *q; };
extern void *malloc(unsigned long n);
int g0 = 1;
struct S0 gs = {3, &g0};
int main(void) {
    int *p = malloc(sizeof(int));
    *p = 7;
    gs.q = p;
    *gs.q = *p + 1;
    return 0;
}
"""

ARRAY = """\
int ga[3] = {1, 2, 3};
int *pa = ga;
int main(void) {
    pa[1] = 4;
    return pa[0];
}
"""

FPTR = """\
int g0 = 1;
int *h0(int *a, int b) {
    *a = b;
    return a;
}
int *(*fp)(int *, int) = h0;
int main(void) {
    int *r = fp(&g0, 9);
    return *r;
}
"""


class TestRecording:
    def test_indirect_reads_and_writes(self):
        trace = interpret_source(SIMPLE)
        assert trace.accesses[(7, "read")] == {("g0::gp...", ())} or \
            trace.accesses[(7, "read")] == {("g1", ())}
        assert trace.accesses[(8, "write")] == {("g1", ())}

    def test_direct_assignments_not_recorded(self):
        trace = interpret_source(SIMPLE)
        assert (6, "write") not in trace.accesses
        assert (5, "write") not in trace.accesses

    def test_heap_labels_carry_allocation_site(self):
        trace = interpret_source(HEAP, name="heap.c")
        heap = "<heap:malloc@main:6>"
        assert trace.accesses[(7, "write")] == {(heap, ())}
        # line 9 writes through gs.q and reads through p — same cell
        assert trace.accesses[(9, "write")] == {(heap, ())}
        assert trace.accesses[(9, "read")] == {(heap, ())}
        assert trace.allocations == 1

    def test_array_indices_collapse(self):
        trace = interpret_source(ARRAY)
        assert trace.accesses[(4, "write")] == {("ga", ("[*]",))}
        assert trace.accesses[(5, "read")] == {("ga", ("[*]",))}

    def test_function_pointer_dispatch(self):
        trace = interpret_source(FPTR)
        assert trace.accesses[(3, "write")] == {("g0", ())}
        assert trace.accesses[(9, "read")] == {("g0", ())}
        assert trace.calls >= 1


class TestTraps:
    def test_step_budget_traps(self):
        looping = ("int g0 = 0;\n"
                   "int main(void) {\n"
                   "    while (1) { g0 = g0 + 1; }\n"
                   "    return 0;\n"
                   "}\n")
        with pytest.raises(ConcreteTrap):
            interpret_source(looping, step_budget=500)

    def test_null_deref_traps(self):
        bad = ("int *gp;\n"
               "int main(void) { return *gp; }\n")
        with pytest.raises(ConcreteTrap):
            interpret_source(bad)
