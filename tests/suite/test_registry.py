"""The benchmark suite registry."""

import pytest

from repro.errors import SuiteError
from repro.suite.registry import (
    PROGRAM_NAMES,
    load_program,
    program_path,
    source_text,
)


class TestRegistry:
    def test_thirteen_programs(self):
        """Figure 2 lists exactly 13 benchmarks."""
        assert len(PROGRAM_NAMES) == 13
        assert PROGRAM_NAMES == sorted(PROGRAM_NAMES)

    def test_paper_names_present(self):
        for name in ("allroots", "bc", "part", "simulator", "yacr2"):
            assert name in PROGRAM_NAMES

    def test_paths_exist(self):
        for name in PROGRAM_NAMES:
            assert program_path(name).is_file()

    def test_unknown_name_rejected(self):
        with pytest.raises(SuiteError, match="unknown suite program"):
            program_path("gcc")

    def test_source_text_nonempty(self):
        for name in PROGRAM_NAMES:
            text = source_text(name)
            assert len(text.splitlines()) > 50
            assert "main" in text

    def test_load_program_clean(self, suite_cache, suite_name):
        program = suite_cache.program(suite_name)
        assert "main" in program.functions
        assert program.roots == ["main"]
        # No frontend warnings: every extern the suite uses is modeled.
        assert program.extras["warnings"] == []

    def test_sources_avoid_unmodeled_features(self):
        for name in PROGRAM_NAMES:
            text = source_text(name)
            assert "goto" not in text
            assert "#include" not in text  # self-contained, no host libc
