"""The adversarial generators (§5's constructible counterexamples)."""

import pytest

from repro.analysis.compare import compare_results
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.analysis.stats import indirect_op_stats
from repro.analysis.sensitive import analyze_sensitive as _cs
from repro.suite.adversarial import (
    assumption_chain_source,
    copy_chain_source,
    cs_wins_source,
    deep_chain_source,
    load_assumption_chain,
    load_copy_chain,
    load_cs_wins,
    load_deep_chain,
    load_swap_cells,
    swap_cells_source,
)


class TestGenerators:
    @pytest.mark.parametrize("n", [1, 3, 10])
    def test_cs_wins_source_scales(self, n):
        source = cs_wins_source(n)
        assert source.count("id(&g") == n
        program = load_cs_wins(n)
        assert len(program.functions) == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            cs_wins_source(0)
        with pytest.raises(ValueError):
            deep_chain_source(0)
        with pytest.raises(ValueError):
            swap_cells_source(-1)

    def test_deep_chain_functions(self):
        program = load_deep_chain(5)
        assert len(program.functions) == 7  # w0..w5 + main

    def test_assumption_chain_bounds(self):
        with pytest.raises(ValueError):
            assumption_chain_source(0)
        with pytest.raises(ValueError):
            assumption_chain_source(2, n_sites=27)
        source = assumption_chain_source(3, n_sites=2)
        assert source.count("chain(") == 3  # definition + 2 sites

    def test_copy_chain_bounds(self):
        with pytest.raises(ValueError):
            copy_chain_source(0, 1)
        with pytest.raises(ValueError):
            copy_chain_source(1, 0)


class TestAssumptionChain:
    def test_equal_precision_any_optimize(self):
        program = load_assumption_chain(4, n_sites=2)
        ci = analyze_insensitive(program)
        fast = _cs(program, ci_result=ci, optimize=True)
        slow = _cs(program, ci_result=ci, optimize=False)
        outputs = set(fast.solution.outputs()) \
            | set(slow.solution.outputs())
        for output in outputs:
            assert fast.pairs(output) == slow.pairs(output) \
                <= ci.pairs(output)

    def test_unoptimized_cost_grows(self):
        costs = []
        for length in (2, 4, 6):
            program = load_assumption_chain(length)
            ci = analyze_insensitive(program)
            slow = _cs(program, ci_result=ci, optimize=False)
            costs.append(slow.counters.meets / ci.counters.meets)
        assert costs == sorted(costs)
        assert costs[-1] > 3 * costs[0]


class TestCopyChain:
    def test_pair_counts_are_product(self):
        for p, t in ((4, 3), (6, 5)):
            program = load_copy_chain(p, t)
            ci = analyze_insensitive(program)
            # Each of the p cells holds pointers to all t targets.
            from repro.analysis.stats import indirect_op_stats
            reads = indirect_op_stats(ci, "read")
            assert reads.max_locations == t


class TestPrecisionGap:
    @pytest.mark.parametrize("n", [2, 6, 12])
    def test_gap_is_linear_in_sites(self, n):
        program = load_cs_wins(n)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        ci_writes = indirect_op_stats(ci, "write")
        cs_writes = indirect_op_stats(cs, "write")
        assert ci_writes.avg == pytest.approx(n)
        assert cs_writes.avg == pytest.approx(1.0)

    def test_spurious_pairs_grow(self):
        counts = []
        for n in (2, 4, 8):
            program = load_cs_wins(n)
            ci = analyze_insensitive(program)
            cs = analyze_sensitive(program, ci_result=ci)
            counts.append(compare_results(ci, cs).spurious_pairs)
        assert counts[0] < counts[1] < counts[2]

    def test_chain_depth_does_not_break_separation(self):
        for depth in (1, 6):
            program = load_deep_chain(depth)
            ci = analyze_insensitive(program)
            cs = analyze_sensitive(program, ci_result=ci)
            report = compare_results(ci, cs)
            assert not report.indirect_ops_identical
            ci_reads = indirect_op_stats(ci, "write")
            cs_reads = indirect_op_stats(cs, "write")
            assert ci_reads.max_locations == 2
            assert cs_reads.max_locations == 1
