"""Validate the suite programs with a real C compiler, when present.

The benchmarks are only meaningful stand-ins for the paper's if they
are *real programs*: valid C99 that compiles cleanly and runs to a
successful exit.  These tests are skipped on machines without a C
compiler; the analysis pipeline itself never needs one.
"""

import shutil
import subprocess
import sys

import pytest

from repro.suite.registry import PROGRAM_NAMES, program_path

CC = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")

pytestmark = pytest.mark.skipif(CC is None,
                                reason="no C compiler available")


@pytest.fixture(scope="module")
def binaries(tmp_path_factory):
    """Compile every suite program once."""
    outdir = tmp_path_factory.mktemp("suite-cc")
    built = {}
    for name in PROGRAM_NAMES:
        exe = outdir / name
        compile_result = subprocess.run(
            [CC, "-std=c99", "-Wall", "-Wextra", "-Werror", "-O1",
             "-o", str(exe), str(program_path(name)), "-lm"],
            capture_output=True, text=True)
        built[name] = (exe, compile_result)
    return built


class TestCompile:
    def test_compiles_without_warnings(self, binaries, suite_name):
        exe, result = binaries[suite_name]
        assert result.returncode == 0, \
            f"{suite_name} failed to compile:\n{result.stderr}"


class TestRun:
    def test_runs_successfully(self, binaries, suite_name):
        exe, compile_result = binaries[suite_name]
        if compile_result.returncode != 0:
            pytest.skip("did not compile")
        run = subprocess.run([str(exe)], capture_output=True, text=True,
                             timeout=30)
        assert run.returncode == 0, \
            f"{suite_name} exited {run.returncode}:\n{run.stdout}" \
            f"{run.stderr}"
        assert run.stdout.strip(), f"{suite_name} produced no output"


class TestExpectedOutput:
    """Functional spot checks: the programs compute real answers."""

    EXPECTATIONS = {
        "simulator": "mem[0] = 55",       # 1+2+...+10
        "span": "spanning tree weight",
        "compress": "round-trip ok",
        "anagram": "anagram groups",
        "bc": "a=14",                     # 2 + 3*4
    }

    @pytest.mark.parametrize("name,needle",
                             sorted(EXPECTATIONS.items()))
    def test_output_contains(self, binaries, name, needle):
        exe, compile_result = binaries[name]
        if compile_result.returncode != 0:
            pytest.skip("did not compile")
        run = subprocess.run([str(exe)], capture_output=True, text=True,
                             timeout=30)
        assert needle in run.stdout
