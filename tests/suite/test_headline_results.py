"""The paper's headline results, asserted per benchmark program.

These are the reproduction's acceptance tests: for every suite
program, context-sensitivity must buy *nothing* at the location inputs
of indirect memory operations (§4.3), the CS solution must refine the
CI solution, and the Figure 4/6 shape targets from DESIGN.md must
hold.
"""

import pytest

from repro.analysis.compare import compare_results
from repro.analysis.stats import (
    indirect_op_stats,
    pair_census,
    pruning_coverage,
)
from repro.suite.registry import PROGRAM_NAMES


class TestHeadline:
    def test_indirect_ops_identical(self, suite_cache, suite_name):
        """§4.3: "the results for indirect memory references are
        identical to the context-insensitive results"."""
        report = compare_results(suite_cache.ci(suite_name),
                                 suite_cache.cs(suite_name))
        assert report.indirect_ops_identical, report.indirect_diffs

    def test_cs_refines_ci(self, suite_cache, suite_name):
        ci = suite_cache.ci(suite_name)
        cs = suite_cache.cs(suite_name)
        for output in cs.solution.outputs():
            assert cs.pairs(output) <= ci.pairs(output)

    def test_spurious_fraction_small(self, suite_cache, suite_name):
        """Figure 6: CS finds only a few percent fewer pairs (paper
        benchmarks range 0-11.8%, overall 2.0%)."""
        report = compare_results(suite_cache.ci(suite_name),
                                 suite_cache.cs(suite_name))
        assert report.percent_spurious <= 12.0

    def test_no_scalar_pairs(self, suite_cache, suite_name):
        census = pair_census(suite_cache.ci(suite_name))
        assert census.other == 0


class TestFigure4Shape:
    def test_most_ops_reference_few_locations(self, suite_cache,
                                               suite_name):
        """Figure 4: "on average, most indirect memory operations
        reference very few locations."  (The paper's own allroots row
        is only 51% single-target, so the per-program bar is ≤2
        locations for at least three quarters of the ops.)"""
        ci = suite_cache.ci(suite_name)
        reads = indirect_op_stats(ci, "read")
        writes = indirect_op_stats(ci, "write")
        total = reads.total + writes.total
        few = (reads.zero + reads.one + reads.two
               + writes.zero + writes.one + writes.two)
        if total >= 5:
            assert few / total >= 0.75

    def test_zero_multi_target_programs(self, suite_cache):
        """§3.2: backprop, compiler, and span have no indirect
        loads/stores referencing more than one location."""
        for name in ("backprop", "compiler", "span"):
            ci = suite_cache.ci(name)
            assert indirect_op_stats(ci, "read").max_locations <= 1
            assert indirect_op_stats(ci, "write").max_locations <= 1

    def test_multi_target_programs_exist(self, suite_cache):
        """Conversely the suite must exercise the >1 columns, as the
        paper's does (assembler, bc, part, ...)."""
        multi = 0
        for name in PROGRAM_NAMES:
            ci = suite_cache.ci(name)
            if indirect_op_stats(ci, "read").max_locations > 1 or \
                    indirect_op_stats(ci, "write").max_locations > 1:
                multi += 1
        assert multi >= 4


class TestPruningShape:
    def test_aggregate_single_location_fraction(self, suite_cache):
        """§4.2: the single-location optimization applies to the great
        majority of indirect operations (paper: 87%)."""
        total = single = 0
        for name in PROGRAM_NAMES:
            coverage = pruning_coverage(suite_cache.ci(name))
            total += coverage.indirect_total
            single += coverage.single_location
        assert total > 0
        assert single / total >= 0.6

    def test_few_ops_need_assumptions(self, suite_cache):
        """§4.2: only a small minority of reads/writes move pointer or
        function values through multi-target ops (paper: 9% / 7%)."""
        reads = reads_need = writes = writes_need = 0
        for name in PROGRAM_NAMES:
            coverage = pruning_coverage(suite_cache.ci(name))
            reads += coverage.reads_total
            reads_need += coverage.reads_needing_assumptions
            writes += coverage.writes_total
            writes_need += coverage.writes_needing_assumptions
        assert reads_need / reads <= 0.25
        assert writes_need / writes <= 0.25


class TestCostShape:
    def test_cs_costs_more_meets_overall(self, suite_cache):
        """§4.2: the optimized CS analysis performs more meet
        operations than CI over the suite (the paper saw up to 100x on
        its larger programs)."""
        ci_meets = cs_meets = 0
        for name in PROGRAM_NAMES:
            ci_meets += suite_cache.ci(name).counters.meets
            cs_meets += suite_cache.cs(name).counters.meets
        assert cs_meets > ci_meets

    def test_transfer_counts_same_order(self, suite_cache):
        """§4.2: CS executes only slightly more transfer functions
        (paper: ~10% more); allow generous slack but same order."""
        for name in PROGRAM_NAMES:
            ci_t = suite_cache.ci(name).counters.transfers
            cs_t = suite_cache.cs(name).counters.transfers
            assert cs_t < 20 * ci_t
