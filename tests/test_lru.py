"""The shared LRU eviction policy (in-memory tiers + on-disk store)."""

from __future__ import annotations

import os
import time

from repro.lru import LRUCache, evict_lru_files, touch


def test_entry_cap_evicts_least_recent():
    cache = LRUCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh: b is now the victim
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1
    assert cache.stats()["entries"] == 2


def test_byte_budget_with_sizeof():
    cache = LRUCache(max_bytes=100, sizeof=len)
    cache.put("a", b"x" * 60)
    cache.put("b", b"x" * 60)           # 120 > 100: a evicted
    assert cache.get("a") is None
    assert cache.get("b") is not None
    assert cache.bytes_used == 60
    assert cache.evictions == 1


def test_oversized_entry_is_still_admitted():
    cache = LRUCache(max_bytes=10, sizeof=len)
    cache.put("big", b"x" * 1000)
    assert cache.get("big") is not None  # never evicted below 1 entry
    cache.put("big2", b"y" * 2000)       # displaces the first
    assert cache.get("big") is None
    assert cache.get("big2") is not None


def test_replacement_updates_accounting():
    cache = LRUCache(max_bytes=100, sizeof=len)
    cache.put("a", b"x" * 40)
    cache.put("a", b"x" * 10)
    assert cache.bytes_used == 10
    assert len(cache) == 1


def test_pop_is_not_an_eviction_but_clear_is():
    cache = LRUCache(max_entries=8)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.pop("a")
    assert cache.evictions == 0
    assert cache.clear() == 1
    assert cache.evictions == 1
    assert len(cache) == 0


def test_hit_miss_counters():
    cache = LRUCache()
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def _mk(root, name, size, age):
    path = root / name
    path.write_bytes(b"x" * size)
    stamp = time.time() - age
    os.utime(path, (stamp, stamp))
    return path


def test_evict_lru_files_removes_oldest_first(tmp_path):
    old = _mk(tmp_path, "old.pkl", 40, age=300)
    mid = _mk(tmp_path, "mid.pkl", 40, age=200)
    new = _mk(tmp_path, "new.pkl", 40, age=100)
    removed = evict_lru_files(tmp_path, max_bytes=100)
    assert removed == 1
    assert not old.exists() and mid.exists() and new.exists()


def test_touch_protects_a_hot_entry(tmp_path):
    hot = _mk(tmp_path, "hot.pkl", 40, age=300)   # oldest by mtime...
    cold = _mk(tmp_path, "cold.pkl", 40, age=200)
    _mk(tmp_path, "new.pkl", 40, age=100)
    touch(hot)                                    # ...but just served
    removed = evict_lru_files(tmp_path, max_bytes=100)
    assert removed == 1
    assert hot.exists() and not cold.exists()


def test_evict_under_budget_is_a_noop(tmp_path):
    _mk(tmp_path, "a.pkl", 10, age=100)
    assert evict_lru_files(tmp_path, max_bytes=1000) == 0


def test_evict_ignores_unmatched_files(tmp_path):
    keep = _mk(tmp_path, "manifest.json", 500, age=500)
    _mk(tmp_path, "a.pkl", 40, age=100)
    assert evict_lru_files(tmp_path, max_bytes=10) == 1
    assert keep.exists()
