"""Word-packed bitset kernels: bit-identical to the big-int engine.

Every test drives :class:`PackedBits` (and the module-level
``decode_ids``/``scatter_ids`` kernels) against a plain big-int
reference over randomized masks, including the edge widths the packed
representation cares about: zero, exact 64-bit word boundaries, and
the ``SWITCH_WORDS`` threshold where storage flips from big int to
the u64 buffer.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.memory.packedbits import (
    HAVE_NUMPY,
    NO_NUMPY_ENV,
    PackedBits,
    SWITCH_WORDS,
    WORD_BITS,
    decode_ids,
    scatter_ids,
    words_for,
)


def random_mask(rng: random.Random, nbits: int, density: float) -> int:
    """A random bitset over ``nbits`` positions at roughly ``density``."""
    if nbits <= 0:
        return 0
    count = max(0, int(nbits * density))
    mask = 0
    for _ in range(count):
        mask |= 1 << rng.randrange(nbits)
    return mask


#: Bit widths exercising zero, sub-word, exact-word-boundary, and
#: beyond-SWITCH_WORDS (packed storage) regimes.
WIDTHS = [0, 1, 63, 64, 65, 128, 1000,
          SWITCH_WORDS * WORD_BITS - 1,
          SWITCH_WORDS * WORD_BITS,
          SWITCH_WORDS * WORD_BITS + 1,
          (SWITCH_WORDS + 7) * WORD_BITS]


class TestOrMask:
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_join_matches_bigint_reference(self, nbits):
        rng = random.Random(nbits)
        packed = PackedBits()
        reference = 0
        for round_no in range(12):
            mask = random_mask(rng, nbits, density=0.2)
            expected_delta = mask & ~reference
            reference |= mask
            assert packed.or_mask(mask) == expected_delta
            assert packed.to_mask() == reference
            assert packed.popcount() == reference.bit_count()
            assert packed.bit_length() == reference.bit_length()

    def test_empty_join_is_zero_delta(self):
        packed = PackedBits(0b1010)
        assert packed.or_mask(0) == 0
        assert packed.to_mask() == 0b1010

    def test_rejoining_same_mask_is_empty_delta(self):
        mask = random_mask(random.Random(7), 5000, 0.3)
        packed = PackedBits(mask)
        assert packed.or_mask(mask) == 0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="big-int mode never packs")
    def test_widens_at_switch_threshold_and_stays_identical(self):
        boundary_bit = SWITCH_WORDS * WORD_BITS
        packed = PackedBits(1)
        assert not packed.is_packed
        delta = packed.or_mask(1 << boundary_bit)
        assert packed.is_packed
        assert delta == 1 << boundary_bit
        assert packed.to_mask() == (1 << boundary_bit) | 1
        # Joins keep working (and growing the buffer) once packed.
        wide = random_mask(random.Random(1), boundary_bit * 3, 0.05)
        expected = wide & ~packed.to_mask()
        assert packed.or_mask(wide) == expected

    def test_constructor_seeds_the_set(self):
        mask = random_mask(random.Random(3), 300, 0.5)
        assert PackedBits(mask).to_mask() == mask


class TestPureKernels:
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_intersect_and_subtract_match_reference(self, nbits):
        rng = random.Random(1000 + nbits)
        stored = random_mask(rng, nbits, 0.3)
        packed = PackedBits(stored)
        # Push wide sets into packed storage before the pure kernels.
        packed.or_mask(stored)
        for _ in range(8):
            probe = random_mask(rng, nbits + rng.randrange(200), 0.3)
            assert packed.intersect_mask(probe) == stored & probe
            assert packed.and_not_mask(probe) == stored & ~probe

    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_contains_bit(self, nbits):
        rng = random.Random(2000 + nbits)
        stored = random_mask(rng, nbits, 0.2)
        packed = PackedBits(stored)
        for bit in range(0, max(nbits, 1) + 130, 37):
            assert packed.contains_bit(bit) == bool(stored >> bit & 1)


class TestDecodeScatter:
    @pytest.mark.parametrize("nbits", WIDTHS)
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.5, 1.0])
    def test_decode_ids_matches_reference(self, nbits, density):
        """Both the sparse (lsb-peel) and vectorized paths: densities
        straddle ``_DECODE_VECTOR_MIN`` on the wider widths."""
        rng = random.Random(int(nbits * 100 + density * 10))
        mask = random_mask(rng, nbits, density)
        expected = [i for i in range(mask.bit_length()) if mask >> i & 1]
        ids = decode_ids(mask)
        assert ids == expected
        assert all(type(i) is int for i in ids)  # no numpy scalars leak

    @pytest.mark.parametrize("count", [0, 1, 10, 31, 32, 33, 500])
    def test_scatter_ids_roundtrips(self, count):
        """Both the loop (< _SCATTER_VECTOR_MIN) and packbits paths."""
        rng = random.Random(count)
        ids = sorted({rng.randrange(20000) for _ in range(count)})
        mask = scatter_ids(ids)
        assert decode_ids(mask) == ids

    def test_iter_ids_view(self):
        mask = random_mask(random.Random(9), 9000, 0.4)
        packed = PackedBits(mask)
        packed.or_mask(mask)
        assert packed.iter_ids() == decode_ids(mask)


class TestStorageAndPickle:
    def test_storage_words_accounting(self):
        packed = PackedBits(1 << 130)
        assert packed.storage_words() == words_for(131)
        if HAVE_NUMPY:
            packed.or_mask(1 << (SWITCH_WORDS * WORD_BITS + 5))
            assert packed.is_packed
            assert packed.storage_words() == packed.allocated_words()
            assert packed.storage_words() >= SWITCH_WORDS

    def test_pickle_roundtrip_ships_int_rendering(self):
        import pickle

        mask = random_mask(random.Random(11), 12000, 0.3)
        packed = PackedBits()
        packed.or_mask(mask)
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.to_mask() == mask
        assert not clone.is_packed  # re-widens lazily on next wide join

    def test_equality_against_ints_and_peers(self):
        mask = random_mask(random.Random(13), 700, 0.5)
        assert PackedBits(mask) == mask
        assert PackedBits(mask) == PackedBits(mask)
        assert PackedBits(mask) != mask | 1 << 100000


class TestNumpyFallback:
    def test_no_numpy_env_forces_bigint_engine(self):
        """With REPRO_NO_NUMPY=1 the module must import with
        HAVE_NUMPY=False and keep every kernel bit-identical — the
        whole-module reload runs in a subprocess so this process's
        numpy-backed module object is untouched."""
        script = (
            "import random\n"
            "from repro.memory.packedbits import (HAVE_NUMPY, PackedBits,"
            " decode_ids, scatter_ids)\n"
            "assert not HAVE_NUMPY\n"
            "rng = random.Random(42)\n"
            "reference = 0\n"
            "packed = PackedBits()\n"
            "for _ in range(6):\n"
            "    mask = 0\n"
            "    for _ in range(400):\n"
            "        mask |= 1 << rng.randrange(20000)\n"
            "    assert packed.or_mask(mask) == mask & ~reference\n"
            "    reference |= mask\n"
            "assert not packed.is_packed\n"
            "assert packed.to_mask() == reference\n"
            "ids = decode_ids(reference)\n"
            "assert ids == [i for i in range(reference.bit_length())"
            " if reference >> i & 1]\n"
            "assert scatter_ids(ids) == reference\n"
            "print('fallback-ok')\n"
        )
        env = dict(os.environ, **{NO_NUMPY_ENV: "1"})
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout

    def test_engine_digest_identical_without_numpy(self):
        """The full dense engine produces the same solution digest with
        the big-int fallback as with the numpy kernels."""
        script = (
            "from repro.suite.adversarial import load_copy_chain\n"
            "from repro.analysis.insensitive import analyze_insensitive\n"
            "from repro.fuzz.oracle import solution_digest\n"
            "import repro.memory.packedbits as pb\n"
            "assert not pb.HAVE_NUMPY\n"
            "res = analyze_insensitive(load_copy_chain(24, 16),"
            " schedule='scc')\n"
            "print(solution_digest(res)[:12], res.counters.transfers)\n"
        )
        env = dict(os.environ, **{NO_NUMPY_ENV: "1"})
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        from repro.analysis.insensitive import analyze_insensitive
        from repro.fuzz.oracle import solution_digest
        from repro.suite.adversarial import load_copy_chain

        res = analyze_insensitive(load_copy_chain(24, 16), schedule="scc")
        expected = f"{solution_digest(res)[:12]} {res.counters.transfers}"
        assert proc.stdout.strip() == expected
