"""Property-based tests of the memory model's algebraic laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.access import INDEX, AccessPath, FieldOp, make_path
from repro.memory.base import global_location, heap_location
from repro.memory.facttable import FactTable
from repro.memory.relations import (
    dom,
    is_prefix,
    may_alias,
    meet,
    meet_ids,
    meet_mask,
    strong_dom,
)

# Seeded and example-bounded so the whole module stays inside the
# tier-1 time budget regardless of the ambient hypothesis profile.
bounded = settings(derandomize=True, deadline=None, max_examples=150)

# A small universe of interned components keeps the search space dense.
_BASES = [global_location("g1"), global_location("g2"),
          heap_location("h1"), None]
_OPS = [FieldOp("S", "x"), FieldOp("S", "y"), FieldOp("T", "x"), INDEX]

bases = st.sampled_from(_BASES)
ops = st.lists(st.sampled_from(_OPS), max_size=5).map(tuple)
paths = st.builds(lambda b, o: make_path(b, o), bases, ops)
location_paths = st.builds(
    lambda b, o: make_path(b, o),
    st.sampled_from([b for b in _BASES if b is not None]), ops)
offsets = st.builds(lambda o: make_path(None, o), ops)


class TestInterningLaws:
    @given(bases, ops)
    def test_make_is_canonical(self, base, op_tuple):
        assert make_path(base, op_tuple) is make_path(base, op_tuple)

    @given(paths, st.sampled_from(_OPS))
    def test_extend_appends_one(self, path, op):
        extended = path.extend(op)
        assert extended.ops == path.ops + (op,)
        assert extended.base is path.base


class TestPrefixAlgebra:
    @given(paths)
    def test_dom_reflexive(self, path):
        assert dom(path, path)

    @given(paths, paths)
    def test_dom_antisymmetric(self, a, b):
        if dom(a, b) and dom(b, a):
            assert a is b

    @given(paths, paths, paths)
    def test_dom_transitive(self, a, b, c):
        if dom(a, b) and dom(b, c):
            assert dom(a, c)

    @given(paths, paths)
    def test_strong_dom_implies_dom(self, a, b):
        if strong_dom(a, b):
            assert dom(a, b)

    @given(paths, paths)
    def test_may_alias_symmetric(self, a, b):
        assert may_alias(a, b) == may_alias(b, a)

    @given(paths, paths)
    def test_dom_implies_may_alias(self, a, b):
        if dom(a, b):
            assert may_alias(a, b)

    @bounded
    @given(paths)
    def test_strong_dom_reflexive_iff_strong(self, path):
        """``strong_dom`` is reflexive exactly on the strongly
        updateable paths (must-overwrite of itself needs a unique
        storage location)."""
        assert strong_dom(path, path) == path.strongly_updateable

    @bounded
    @given(paths, paths, paths)
    def test_strong_dom_transitive(self, a, b, c):
        if strong_dom(a, b) and strong_dom(b, c):
            assert strong_dom(a, c)


class TestMeetLattice:
    """``meet`` is the GLB of the ``dom`` prefix order."""

    @bounded
    @given(paths)
    def test_meet_idempotent(self, path):
        assert meet(path, path) is path

    @bounded
    @given(paths, paths)
    def test_meet_commutative(self, a, b):
        assert meet(a, b) is meet(b, a)

    @bounded
    @given(paths, paths, paths)
    def test_meet_associative(self, a, b, c):
        left = meet(a, b)
        right = meet(b, c)
        lhs = meet(left, c) if left is not None else None
        rhs = meet(a, right) if right is not None else None
        assert lhs is rhs

    @bounded
    @given(paths, paths)
    def test_meet_is_lower_bound(self, a, b):
        m = meet(a, b)
        if m is not None:
            assert dom(m, a) and dom(m, b)

    @bounded
    @given(paths, paths, paths)
    def test_meet_is_greatest_lower_bound(self, a, b, c):
        if dom(c, a) and dom(c, b):
            m = meet(a, b)
            assert m is not None and dom(c, m)

    @bounded
    @given(paths, paths, paths)
    def test_meet_monotone(self, a, b, c):
        """Meet is monotone in each argument: b ⊑ c ⇒ a∧b ⊑ a∧c."""
        if dom(b, c):
            mb, mc = meet(a, b), meet(a, c)
            if mb is not None:
                assert mc is not None and dom(mb, mc)

    @bounded
    @given(paths, paths)
    def test_meet_recovers_dom(self, a, b):
        """a ⊑ b iff a ∧ b = a (the order is definable from the meet)."""
        assert dom(a, b) == (meet(a, b) is a)


class TestMeetIdDomain:
    """The dense-id mirrors of ``meet`` satisfy the same lattice laws.

    One shared :class:`FactTable` interns the whole path universe, so
    id-domain results can be compared by integer equality and decoded
    back to the canonical interned objects.
    """

    table = FactTable()

    def _mid(self, a, b):
        return meet_ids(self.table,
                        self.table.path_id(a), self.table.path_id(b))

    @bounded
    @given(paths, paths)
    def test_meet_ids_mirrors_meet(self, a, b):
        got = self._mid(a, b)
        expected = meet(a, b)
        if expected is None:
            assert got is None
        else:
            assert self.table.path_of(got) is expected

    @bounded
    @given(paths)
    def test_meet_ids_idempotent(self, path):
        ident = self.table.path_id(path)
        assert meet_ids(self.table, ident, ident) == ident

    @bounded
    @given(paths, paths)
    def test_meet_ids_commutative(self, a, b):
        assert self._mid(a, b) == self._mid(b, a)

    @bounded
    @given(paths, paths, paths)
    def test_meet_ids_associative(self, a, b, c):
        left = self._mid(a, b)
        right = self._mid(b, c)
        lhs = (meet_ids(self.table, left, self.table.path_id(c))
               if left is not None else None)
        rhs = (meet_ids(self.table, self.table.path_id(a), right)
               if right is not None else None)
        assert lhs == rhs

    @bounded
    @given(st.lists(paths, max_size=4), st.lists(paths, max_size=4))
    def test_meet_mask_is_pointwise_meet(self, xs, ys):
        """Decoding ``meet_mask`` recovers the object-level set
        ``{meet(x, y) | x ∈ xs, y ∈ ys} − {None}`` exactly."""
        a_mask = self.table.path_mask(xs)
        b_mask = self.table.path_mask(ys)
        got = set(self.table.decode_paths(
            meet_mask(self.table, a_mask, b_mask)))
        expected = {meet(x, y) for x in xs for y in ys}
        expected.discard(None)
        assert got == expected

    @bounded
    @given(st.lists(paths, max_size=3), st.lists(paths, max_size=3),
           st.lists(paths, max_size=3))
    def test_meet_mask_distributes_over_union(self, xs, ys, zs):
        """meet_mask(a ∪ b, c) = meet_mask(a, c) ∪ meet_mask(b, c)."""
        a = self.table.path_mask(xs)
        b = self.table.path_mask(ys)
        c = self.table.path_mask(zs)
        assert meet_mask(self.table, a | b, c) == \
            (meet_mask(self.table, a, c) | meet_mask(self.table, b, c))

    @bounded
    @given(st.lists(paths, max_size=4))
    def test_meet_mask_empty_annihilates(self, xs):
        mask = self.table.path_mask(xs)
        assert meet_mask(self.table, mask, 0) == 0
        assert meet_mask(self.table, 0, mask) == 0

    @bounded
    @given(st.lists(paths, max_size=4))
    def test_meet_mask_idempotent_on_prefix_closed_sets(self, xs):
        """A ∧ A = A exactly when A is meet-closed; one self-meet
        reaches the closure, so the operation is a closure operator:
        applying it twice adds nothing new."""
        mask = self.table.path_mask(xs)
        once = meet_mask(self.table, mask, mask)
        assert mask & once == mask  # contains A (meet is idempotent)
        assert meet_mask(self.table, once, once) == once


class TestAppendSubtract:
    @given(location_paths, offsets)
    def test_subtract_inverts_append(self, location, offset):
        combined = location.append(offset)
        assert dom(location, combined)
        assert combined.subtract(location) is offset

    @given(location_paths, offsets)
    def test_append_preserves_base(self, location, offset):
        assert location.append(offset).base is location.base

    @given(location_paths, offsets, offsets)
    def test_append_associates(self, location, o1, o2):
        both = make_path(None, o1.ops + o2.ops)
        assert location.append(o1).append(o2) is location.append(both)

    @given(paths, paths)
    def test_subtract_defined_exactly_on_prefixes(self, a, b):
        if is_prefix(a, b):
            offset = b.subtract(a)
            assert offset.is_offset
            assert a.append(offset) is b
        else:
            try:
                b.subtract(a)
            except ValueError:
                pass
            else:  # pragma: no cover
                raise AssertionError("subtract accepted a non-prefix")


class TestStrongUpdateability:
    @given(paths)
    def test_index_anywhere_blocks_strong(self, path):
        if any(op.is_index for op in path.ops):
            assert not path.strongly_updateable

    @given(paths, st.sampled_from(_OPS))
    def test_extension_never_gains_strength(self, path, op):
        """Extending a weak path never produces a strong one (monotone
        in the weak direction)."""
        if not path.strongly_updateable and path.base is not None:
            if not path.base.multi_instance:
                # weak due to an index op; extension keeps the index
                assert not path.extend(op).strongly_updateable
