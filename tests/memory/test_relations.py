"""The dom / strong-dom relations (paper Figure 1 definitions box)."""

import pytest

from repro.memory.access import INDEX, FieldOp, make_path
from repro.memory.base import global_location, heap_location
from repro.memory.relations import dom, is_prefix, may_alias, strong_dom


@pytest.fixture
def g():
    return global_location("g")


@pytest.fixture
def fx():
    return FieldOp("S", "x")


@pytest.fixture
def fy():
    return FieldOp("S", "y")


class TestDom:
    def test_reflexive(self, g):
        path = make_path(g)
        assert dom(path, path)

    def test_prefix_dominates(self, g, fx):
        whole = make_path(g)
        member = make_path(g, [fx])
        assert dom(whole, member)
        assert not dom(member, whole)

    def test_siblings_do_not_alias(self, g, fx, fy):
        """Struct members are independent: an access path is aliased
        only to its prefixes."""
        assert not dom(make_path(g, [fx]), make_path(g, [fy]))
        assert not dom(make_path(g, [fy]), make_path(g, [fx]))

    def test_union_members_collapse(self, g):
        """Union members share one slot, so they are the same path."""
        slot = FieldOp("U", "<union>")
        a = make_path(g, [slot])
        b = make_path(g, [slot])
        assert a is b and dom(a, b)

    def test_different_bases_unrelated(self, fx):
        a = make_path(global_location("a"), [fx])
        b = make_path(global_location("b"), [fx])
        assert not dom(a, b) and not dom(b, a)

    def test_deep_prefix(self, g, fx, fy):
        deep = make_path(g, [fx, INDEX, fy])
        assert dom(make_path(g, [fx]), deep)
        assert dom(make_path(g, [fx, INDEX]), deep)
        assert not dom(make_path(g, [fy]), deep)


class TestStrongDom:
    def test_strong_on_scalar_global(self, g, fx):
        assert strong_dom(make_path(g), make_path(g, [fx]))

    def test_not_strong_through_index(self, g, fx):
        indexed = make_path(g, [INDEX])
        assert dom(indexed, make_path(g, [INDEX, fx]))
        assert not strong_dom(indexed, make_path(g, [INDEX, fx]))

    def test_not_strong_on_heap(self, fx):
        h = make_path(heap_location("h"))
        assert dom(h, h.extend(fx))
        assert not strong_dom(h, h.extend(fx))

    def test_strong_implies_dom(self, g, fx):
        a, b = make_path(g), make_path(g, [fx])
        assert strong_dom(a, b)
        assert dom(a, b)

    def test_not_strong_when_not_prefix(self, g, fx, fy):
        assert not strong_dom(make_path(g, [fx]), make_path(g, [fy]))


class TestMayAlias:
    def test_symmetric(self, g, fx):
        a, b = make_path(g), make_path(g, [fx])
        assert may_alias(a, b) and may_alias(b, a)

    def test_disjoint(self, g, fx, fy):
        assert not may_alias(make_path(g, [fx]), make_path(g, [fy]))


class TestIsPrefix:
    def test_empty_ops_prefix_of_all_same_base(self, g, fx):
        assert is_prefix(make_path(g), make_path(g, [fx, INDEX]))

    def test_longer_not_prefix_of_shorter(self, g, fx):
        assert not is_prefix(make_path(g, [fx]), make_path(g))
