"""Points-to pair interning and classification."""

import pytest

from repro.memory.access import EMPTY_OFFSET, INDEX, FieldOp, make_path
from repro.memory.base import function_location, global_location, \
    heap_location, local_location
from repro.memory.pairs import (
    PointsToPair,
    classify,
    dereference_targets,
    direct,
    pair,
)


@pytest.fixture
def g_path():
    return make_path(global_location("g"))


class TestInterning:
    def test_same_pair_same_object(self, g_path):
        assert pair(EMPTY_OFFSET, g_path) is pair(EMPTY_OFFSET, g_path)

    def test_direct_constructor(self, g_path):
        p = direct(g_path)
        assert p.path is EMPTY_OFFSET
        assert p.referent is g_path
        assert p.is_direct

    def test_store_pair_not_direct(self, g_path):
        h = make_path(heap_location("h"))
        assert not pair(g_path, h).is_direct

    def test_referent_must_be_location(self, g_path):
        with pytest.raises(ValueError):
            pair(g_path, EMPTY_OFFSET)

    def test_immutable(self, g_path):
        with pytest.raises(AttributeError):
            direct(g_path).path = EMPTY_OFFSET


class TestClassify:
    def test_store_pair_categories(self):
        local = make_path(local_location("x", "f"))
        heap = make_path(heap_location("h"))
        assert classify(pair(local, heap)) == ("local", "heap")

    def test_value_pair_offset_path(self, g_path):
        assert classify(direct(g_path)) == ("offset", "global")

    def test_function_referent(self):
        f = make_path(function_location("f"))
        assert classify(direct(f)) == ("offset", "function")


class TestDereferenceTargets:
    def test_direct_targets(self, g_path):
        h = make_path(heap_location("h"))
        fop = FieldOp("S", "x")
        pairs = [direct(g_path), direct(h),
                 pair(make_path(None, [fop]), g_path)]
        assert set(dereference_targets(pairs)) == {g_path, h}

    def test_member_offset_targets(self, g_path):
        fop = FieldOp("S", "x")
        offset = make_path(None, [fop])
        pairs = [direct(g_path), pair(offset, g_path)]
        assert set(dereference_targets(pairs, offset)) == {g_path}

    def test_empty(self):
        assert set(dereference_targets([])) == set()
