"""Unit tests for the dense-id fact table and bitset helpers."""

import pickle

from repro.memory.access import INDEX, FieldOp, make_path
from repro.memory.base import global_location, heap_location
from repro.memory.facttable import (
    FactTable,
    bitset_words,
    iter_bits,
    popcount,
)
from repro.memory.pairs import pair

# Base-locations are identity-keyed (one object per allocation site),
# so the test universe shares a fixed pair of them.
G = global_location("g")
H = heap_location("h")


def _sample_pairs():
    gp = make_path(G, ())
    gx = make_path(G, (FieldOp("S", "x"),))
    hp = make_path(H, ())
    hi = make_path(H, (INDEX,))
    return [pair(gp, hp), pair(gx, hp), pair(hp, gp), pair(hi, gx)]


class TestBitHelpers:
    def test_iter_bits_matches_manual_scan(self):
        mask = (1 << 0) | (1 << 3) | (1 << 70)
        assert list(iter_bits(mask)) == [0, 3, 70]
        assert list(iter_bits(0)) == []

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount((1 << 100) | 0b1011) == 4

    def test_bitset_words_rounds_up(self):
        assert bitset_words(0) == 0
        assert bitset_words(1) == 1
        assert bitset_words(1 << 63) == 1
        assert bitset_words(1 << 64) == 2


class TestFactTable:
    def test_ids_are_dense_and_stable(self):
        table = FactTable()
        pairs = _sample_pairs()
        ids = [table.pair_id(p) for p in pairs]
        assert ids == list(range(len(pairs)))
        # Re-interning is a no-op.
        assert [table.pair_id(p) for p in pairs] == ids
        assert table.pair_count() == len(pairs)
        for ident, p in zip(ids, pairs):
            assert table.pair_of(ident) is p

    def test_mask_roundtrip_is_sorted_by_id(self):
        table = FactTable()
        pairs = _sample_pairs()
        mask = table.pair_mask(pairs)
        assert popcount(mask) == len(pairs)
        decoded = table.decode_pairs(mask)
        assert decoded == [table.pair_of(i) for i in iter_bits(mask)]
        assert set(decoded) == set(pairs)

    def test_decode_calls_counter(self):
        table = FactTable()
        mask = table.pair_mask(_sample_pairs())
        before = table.decode_calls
        table.decode_pairs(mask)
        table.decode_items(mask)
        assert table.decode_calls == before + 2

    def test_base_mask_partitions_pairs(self):
        table = FactTable()
        pairs = _sample_pairs()
        table.pair_mask(pairs)
        g_mask = table.base_mask(G)
        h_mask = table.base_mask(H)
        # Base masks partition the id space by the *path's* root.
        assert g_mask & h_mask == 0
        assert g_mask | h_mask == (1 << len(pairs)) - 1
        assert all(table.pair_of(i).path.base is G
                   for i in iter_bits(g_mask))
        assert table.base_mask(global_location("unseen")) == 0

    def test_path_ids_independent_of_pair_ids(self):
        table = FactTable()
        g = make_path(G, ())
        h = make_path(H, (INDEX,))
        assert table.path_id(g) == 0
        assert table.path_id(h) == 1
        assert table.path_of(0) is g
        assert table.decode_paths(table.path_mask([h, g])) == [g, h]

    def test_pickle_roundtrip_rebuilds_indexes(self):
        table = FactTable()
        pairs = _sample_pairs()
        mask = table.pair_mask(pairs)
        table.path_id(pairs[0].path)
        clone = pickle.loads(pickle.dumps(table))
        # Same ids, same decode, same base index — rebuilt, not copied.
        assert clone.pair_count() == table.pair_count()
        assert [repr(p) for p in clone.decode_pairs(mask)] == \
            [repr(p) for p in table.decode_pairs(mask)]
        # Unpickling copies the identity-keyed base-locations (sharing
        # is preserved *within* one pickle, e.g. a whole Program), so
        # the rebuilt base index must be queried with the clone's own
        # bases — and must partition the clone's ids the same way.
        for ident in range(clone.pair_count()):
            clone_base = clone.pair_of(ident).path.base
            table_base = table.pair_of(ident).path.base
            assert clone.base_mask(clone_base) == \
                table.base_mask(table_base)
        assert clone.base_mask(G) == 0  # original bases are foreign
        # New interning continues densely after the ids carried over.
        extra = pair(make_path(global_location("z"), ()),
                     make_path(G, ()))
        assert clone.pair_id(extra) == len(pairs)

    def test_for_program_caches_in_extras(self):
        class FakeProgram:
            extras = {}

        program = FakeProgram()
        table = FactTable.for_program(program)
        assert FactTable.for_program(program) is table
        # A clobbered slot (e.g. a stale pickle) is replaced, not used.
        program.extras[FactTable.EXTRAS_KEY] = "garbage"
        rebuilt = FactTable.for_program(program)
        assert isinstance(rebuilt, FactTable) and rebuilt is not table

    def test_decode_items_pairs_ids_with_objects(self):
        table = FactTable()
        pairs = _sample_pairs()
        mask = table.pair_mask(pairs[1:3])
        items = table.decode_items(mask)
        assert items == [(i, table.pair_of(i)) for i in iter_bits(mask)]
