"""Base-location semantics."""

import pytest

from repro.memory.base import (
    BaseLocation,
    LocationKind,
    function_location,
    global_location,
    heap_location,
    local_location,
    param_location,
    string_location,
)


class TestConstruction:
    def test_global_is_single_instance(self):
        loc = global_location("g")
        assert loc.kind is LocationKind.GLOBAL
        assert loc.is_single_instance
        assert not loc.multi_instance

    def test_heap_defaults_to_multi_instance(self):
        loc = heap_location("malloc@f:3")
        assert loc.kind is LocationKind.HEAP
        assert loc.multi_instance

    def test_string_defaults_to_multi_instance(self):
        assert string_location("<str1>").multi_instance

    def test_local_non_recursive_is_single(self):
        loc = local_location("x", "f")
        assert loc.is_single_instance
        assert loc.procedure == "f"

    def test_local_recursive_is_multi(self):
        """Footnote 4 scheme 2: a recursive procedure's local stands for
        all live stack instances."""
        loc = local_location("x", "f", recursive=True)
        assert loc.multi_instance

    def test_param_recursive_is_multi(self):
        assert param_location("p", "f", recursive=True).multi_instance
        assert param_location("p", "f").is_single_instance

    def test_function_location_kind(self):
        loc = function_location("main")
        assert loc.kind is LocationKind.FUNCTION
        assert loc.is_single_instance

    def test_uids_are_unique(self):
        a = global_location("g")
        b = global_location("g")
        assert a.uid != b.uid
        assert a is not b


class TestReportCategories:
    """Figure 7's four reporting categories."""

    @pytest.mark.parametrize("factory,expected", [
        (lambda: global_location("g"), "global"),
        (lambda: string_location("s"), "global"),
        (lambda: local_location("x", "f"), "local"),
        (lambda: param_location("p", "f"), "local"),
        (lambda: heap_location("h"), "heap"),
        (lambda: function_location("f"), "function"),
    ])
    def test_category(self, factory, expected):
        assert factory().report_category == expected


class TestDescribe:
    def test_describe_includes_procedure(self):
        assert local_location("x", "f").describe() == "f::x"

    def test_describe_global(self):
        assert global_location("g").describe() == "g"

    def test_identity_equality(self):
        a = global_location("g")
        b = global_location("g")
        assert a == a
        assert a != b
        assert len({a, b}) == 2
