"""Access-path interning and construction."""

import pytest

from repro.memory.access import (
    EMPTY_OFFSET,
    INDEX,
    AccessPath,
    FieldOp,
    IndexOp,
    location_path,
    make_path,
)
from repro.memory.base import global_location, heap_location


@pytest.fixture
def g():
    return global_location("g")


class TestInterning:
    def test_same_components_same_object(self, g):
        f = FieldOp("S", "x")
        assert make_path(g, [f]) is make_path(g, [f])

    def test_field_ops_interned(self):
        assert FieldOp("S", "x") is FieldOp("S", "x")
        assert FieldOp("S", "x") is not FieldOp("S", "y")
        assert FieldOp("S", "x") is not FieldOp("T", "x")

    def test_index_is_singleton(self):
        assert IndexOp() is INDEX

    def test_different_bases_different_paths(self):
        a = global_location("a")
        b = global_location("b")
        assert make_path(a) is not make_path(b)

    def test_empty_offset_singleton(self):
        assert make_path(None) is EMPTY_OFFSET

    def test_immutable(self, g):
        path = make_path(g)
        with pytest.raises(AttributeError):
            path.base = None
        with pytest.raises(AttributeError):
            FieldOp("S", "x").name = "y"


class TestClassification:
    def test_offset_vs_location(self, g):
        assert EMPTY_OFFSET.is_offset
        assert not EMPTY_OFFSET.is_location
        assert make_path(g).is_location
        assert not make_path(g).is_offset

    def test_empty_offset_flag(self, g):
        assert EMPTY_OFFSET.is_empty_offset
        assert not make_path(None, [INDEX]).is_empty_offset
        assert not make_path(g).is_empty_offset

    def test_report_category(self, g):
        assert EMPTY_OFFSET.report_category == "offset"
        assert make_path(None, [INDEX]).report_category == "offset"
        assert make_path(g).report_category == "global"
        assert make_path(heap_location("h")).report_category == "heap"


class TestStrongUpdateability:
    """Paper: strongly updateable iff the base denotes a single storage
    location and no access operator is an array dereference."""

    def test_global_scalar_strong(self, g):
        assert make_path(g).strongly_updateable

    def test_field_of_global_strong(self, g):
        assert make_path(g, [FieldOp("S", "x")]).strongly_updateable

    def test_array_element_weak(self, g):
        assert not make_path(g, [INDEX]).strongly_updateable

    def test_field_under_index_weak(self, g):
        path = make_path(g, [INDEX, FieldOp("S", "x")])
        assert not path.strongly_updateable

    def test_heap_weak(self):
        assert not make_path(heap_location("h")).strongly_updateable

    def test_offset_weak(self):
        assert not EMPTY_OFFSET.strongly_updateable


class TestConstruction:
    def test_extend(self, g):
        f = FieldOp("S", "x")
        path = make_path(g).extend(f)
        assert path.ops == (f,)
        assert path.base is g

    def test_append_offset(self, g):
        f = FieldOp("S", "x")
        offset = make_path(None, [f, INDEX])
        combined = make_path(g).append(offset)
        assert combined is make_path(g, [f, INDEX])

    def test_append_empty_offset_is_identity(self, g):
        path = make_path(g, [INDEX])
        assert path.append(EMPTY_OFFSET) is path

    def test_append_rejects_location(self, g):
        other = make_path(global_location("h"))
        with pytest.raises(ValueError):
            make_path(g).append(other)

    def test_subtract_prefix(self, g):
        f = FieldOp("S", "x")
        full = make_path(g, [f, INDEX])
        prefix = make_path(g, [f])
        assert full.subtract(prefix) is make_path(None, [INDEX])

    def test_subtract_self_gives_empty(self, g):
        path = make_path(g, [INDEX])
        assert path.subtract(path) is EMPTY_OFFSET

    def test_subtract_non_prefix_raises(self, g):
        f = FieldOp("S", "x")
        h = FieldOp("S", "y")
        with pytest.raises(ValueError):
            make_path(g, [f]).subtract(make_path(g, [h]))

    def test_subtract_wrong_base_raises(self, g):
        with pytest.raises(ValueError):
            make_path(g).subtract(make_path(global_location("h")))

    def test_location_path_requires_base(self):
        with pytest.raises(ValueError):
            location_path(None)


class TestRepr:
    def test_location_repr(self, g):
        path = make_path(g, [FieldOp("S", "x"), INDEX])
        assert repr(path) == "g.x[*]"

    def test_empty_offset_repr(self):
        assert repr(EMPTY_OFFSET) == "ε"
