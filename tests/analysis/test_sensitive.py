"""The context-sensitive analysis (paper Figure 5 + §4.2)."""

import pytest

import repro
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.errors import AnalysisError
from repro.ir.nodes import LookupNode, UpdateNode
from repro.suite.adversarial import (
    load_cs_wins,
    load_deep_chain,
    load_swap_cells,
)
from tests.conftest import analyze_both, find_op, lower, op_base_names, \
    target_names


class TestPrecisionWins:
    def test_identity_function_separated(self):
        program, ci, cs = analyze_both("""
            int g1, g2;
            int *id(int *p) { return p; }
            int main(void) {
                int *a = id(&g1);
                int *b = id(&g2);
                *a = 1;
                *b = 2;
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        assert op_base_names(ci, writes[0]) == {"g1", "g2"}
        assert op_base_names(cs, writes[0]) == {"g1"}
        assert op_base_names(cs, writes[1]) == {"g2"}

    def test_deep_wrapper_chain(self):
        program = load_deep_chain(4)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        assert op_base_names(ci, writes[0]) == {"ga", "gb"}
        assert op_base_names(cs, writes[0]) == {"ga"}
        assert op_base_names(cs, writes[1]) == {"gb"}

    def test_store_routine_cells_separated(self):
        program = load_swap_cells(3)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        # CI pollutes every cell with every value; CS keeps them exact.
        for i, write in enumerate(writes):
            assert op_base_names(cs, write) == {f"v{i}"}
            assert len(op_base_names(ci, write)) == 3

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_gap_scales_with_sites(self, n):
        program = load_cs_wins(n)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        writes = [node for node in program.functions["main"].nodes
                  if isinstance(node, UpdateNode) and node.is_indirect]
        assert len(writes) == n
        for write in writes:
            assert len(ci.op_locations(write)) == n
            assert len(cs.op_locations(write)) == 1


class TestSoundnessAndAgreement:
    def test_cs_subset_of_ci(self):
        program, ci, cs = analyze_both("""
            int g1, g2;
            struct pair { int *a; int *b; };
            void fill(struct pair *p, int *x, int *y) {
                p->a = x;
                p->b = y;
            }
            int main(void) {
                struct pair v;
                fill(&v, &g1, &g2);
                return *v.a + *v.b;
            }
        """)
        for output in cs.solution.outputs():
            assert cs.pairs(output) <= ci.pairs(output)

    def test_optimizations_do_not_change_solution(self):
        """§4.2's prunings are pure efficiency: stripped results match
        the unoptimized analysis exactly."""
        program = lower("""
            int g1, g2;
            int *pick(int **cell, int which) {
                if (which)
                    *cell = &g1;
                else
                    *cell = &g2;
                return *cell;
            }
            int main(int argc, char **argv) {
                int *p;
                int *r = pick(&p, argc);
                *r = 3;
                return *p;
            }
        """)
        ci = analyze_insensitive(program)
        fast = analyze_sensitive(program, ci_result=ci, optimize=True)
        slow = analyze_sensitive(program, ci_result=ci, optimize=False)
        outputs = set(fast.solution.outputs()) | set(slow.solution.outputs())
        for output in outputs:
            assert fast.pairs(output) == slow.pairs(output)

    def test_optimized_no_slower_in_meets(self):
        program = load_cs_wins(6)
        ci = analyze_insensitive(program)
        fast = analyze_sensitive(program, ci_result=ci, optimize=True)
        slow = analyze_sensitive(program, ci_result=ci, optimize=False)
        assert fast.counters.meets <= slow.counters.meets

    def test_strong_update_across_calls(self):
        """CS can even apply a strong update across call boundaries:
        the second ``set`` call definitely overwrites ``p``, and only
        CS can see that caller 1's write does not survive into the
        final dereference.  (Dynamically p == &g2 there.)"""
        program, ci, cs = analyze_both("""
            int g1, g2; int *p;
            void set(int *v) { p = v; }
            int main(void) {
                set(&g1);
                set(&g2);
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        assert op_base_names(ci, write) == {"g1", "g2"}
        assert op_base_names(cs, write) == {"g2"}


class TestMachinery:
    def test_wrong_program_ci_rejected(self):
        a = lower("int main(void) { return 0; }")
        b = lower("int main(void) { return 1; }")
        ci = analyze_insensitive(a)
        with pytest.raises(AnalysisError, match="different program"):
            analyze_sensitive(b, ci_result=ci)

    def test_max_transfers_guard(self):
        program = load_cs_wins(6)
        with pytest.raises(AnalysisError, match="exceeded"):
            analyze_sensitive(program, max_transfers=3)

    def test_extras_recorded(self):
        program = load_cs_wins(3)
        cs = analyze_sensitive(program)
        assert cs.extras["qualified_pair_count"] > 0
        assert cs.extras["max_assumption_set_size"] >= 1
        assert cs.extras["ci_result"].flavor == "insensitive"

    def test_callgraph_shared_with_ci(self):
        program = load_cs_wins(2)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        assert cs.callgraph is ci.callgraph

    def test_qualified_pairs_exceed_plain_pairs(self):
        """The CS cost shows up as multiple qualified variants per
        plain pair: the qualified count bounds the stripped count from
        above, strictly so when a pair is derived under several
        contexts.  (The paper's up-to-100x meet blow-up is checked on
        the benchmark suite, where CS precision gains are nil; on
        adversarial programs CS can do *less* work than CI because its
        precision win shrinks every set.)"""
        program = lower("""
            int g1, g2;
            int *choose(int *a, int *b, int c) {
                if (c) return a;
                return b;
            }
            int main(int argc, char **argv) {
                int *p = choose(&g1, &g2, argc);
                int *q = choose(&g2, &g1, argc);
                *p = 1;
                *q = 2;
                return 0;
            }
        """)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        # choose's return value holds (ε, g1) both when formal a does
        # and when formal b does: two incomparable assumption sets for
        # one plain pair.
        stripped_total = cs.solution.total_pairs()
        assert cs.extras["qualified_pair_count"] > stripped_total
        assert cs.counters.meets >= cs.counters.pairs_added


class TestAssumptionChaining:
    def test_two_assumption_return(self):
        """A returned pair depending on two formals requires both to be
        satisfied at the call site (propagate-return's product)."""
        program, ci, cs = analyze_both("""
            int g1, g2;
            int *choose(int *a, int *b, int which) {
                if (which) return a;
                return b;
            }
            int main(void) {
                int *p = choose(&g1, &g2, 1);
                *p = 1;
                return 0;
            }
        """)
        write = [n for n in program.functions["main"].nodes
                 if isinstance(n, UpdateNode) and n.is_indirect][0]
        # One call site passing both: CS cannot split (both reachable).
        assert op_base_names(cs, write) == {"g1", "g2"}

    def test_cross_site_mixing_blocked(self):
        program, ci, cs = analyze_both("""
            int g1, g2, h1, h2;
            int *choose(int *a, int *b, int which) {
                if (which) return a;
                return b;
            }
            int main(void) {
                int *p = choose(&g1, &g2, 1);
                int *q = choose(&h1, &h2, 0);
                *p = 1;
                *q = 2;
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        assert op_base_names(ci, writes[0]) == {"g1", "g2", "h1", "h2"}
        assert op_base_names(cs, writes[0]) == {"g1", "g2"}
        assert op_base_names(cs, writes[1]) == {"h1", "h2"}

    def test_two_assumption_cartesian_product(self):
        """A returned pair can depend on BOTH a pointer formal and the
        store formal; propagate-return must satisfy both at each call
        site (the Cartesian product over satisfier sets)."""
        program, ci, cs = analyze_both("""
            int g1, g2;
            int *deref(int **cell) { return *cell; }
            int main(void) {
                int *a = &g1;
                int *b = &g2;
                int *ra = deref(&a);
                int *rb = deref(&b);
                *ra = 1;
                *rb = 2;
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        # CI merges: both derefs see both globals.
        assert op_base_names(ci, writes[0]) == {"g1", "g2"}
        # CS: deref's return pair (ε, g1) assumes cell->a AND a->g1;
        # only the first call site satisfies both.
        assert op_base_names(cs, writes[0]) == {"g1"}
        assert op_base_names(cs, writes[1]) == {"g2"}
        # The qualified result really used multi-element assumption sets.
        assert cs.extras["max_assumption_set_size"] >= 2

    def test_store_content_through_callee(self):
        """A pair written into the caller's storage by the callee comes
        back qualified by the callee's store-formal assumptions."""
        program, ci, cs = analyze_both("""
            int ga, gb;
            void put(int **cell, int *value) { *cell = value; }
            int main(void) {
                int *x; int *y;
                put(&x, &ga);
                put(&y, &gb);
                *x = 1;
                *y = 2;
                return 0;
            }
        """)
        writes = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode) and n.is_indirect]
        assert op_base_names(ci, writes[0]) == {"ga", "gb"}
        assert op_base_names(cs, writes[0]) == {"ga"}
        assert op_base_names(cs, writes[1]) == {"gb"}
