"""Equivalence gate: every worklist schedule agrees everywhere.

All three worklist disciplines — ``batched`` and ``scc`` on the dense
bitset engine, ``fifo`` on the object-at-a-time reference engine —
must compute the *same fixpoint* — solutions, call graphs, and every
client-visible answer — on every suite program, for both analyses.
Monotone joins over finite lattices guarantee this on paper; this
gate guarantees nobody's batching shortcut (or bitset encoding, or
SCC priority) quietly weakens a transfer function.

Schedule-dependent quantities (``meets``; all CS counters, because
subsumption order varies) are deliberately NOT compared — see
DESIGN.md's "Engineering the fixpoint".
"""

import pytest

from repro.analysis.clients.defuse import defuse
from repro.analysis.clients.modref import modref
from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.ir.nodes import CallNode
from repro.suite.registry import PROGRAM_NAMES, load_program

#: The reference point is ``batched``; every other schedule is
#: compared against it (which by transitivity compares them all).
OTHER_SCHEDULES = ("fifo", "scc")


def _solution_snapshot(result):
    """{output -> frozen pair set} over every populated output."""
    solution = result.solution
    return {output: frozenset(solution.pairs(output))
            for output in solution.outputs()}


def _callgraph_snapshot(result):
    snapshot = {}
    for graph in result.program.functions.values():
        for node in graph.nodes:
            if isinstance(node, CallNode):
                snapshot[node] = frozenset(
                    g.name for g in result.callgraph.callees(node))
    return snapshot


def _modref_snapshot(result):
    info = modref(result)
    return {name: (info.mod_set(name), info.ref_set(name))
            for name in result.program.functions}


def _defuse_snapshot(result):
    """Reaching-definition sets per indirect read (context-insensitive
    walk: linear state space, still exercises op_locations + stores)."""
    info = defuse(result, call_site_sensitive=False)
    snapshot = {}
    for graph in result.program.functions.values():
        for read in graph.memory_operations():
            if getattr(read, "is_indirect", False) and read.kind == "read":
                snapshot[read] = frozenset(
                    info.reaching_definitions(read))
    return snapshot


@pytest.mark.parametrize("name", PROGRAM_NAMES)
class TestParallelSccEquivalence:
    """The thread-sharded SCC solver is the fourth discipline: same
    fixpoint, same schedule-invariant counters, any interleaving."""

    def test_ci_identical_and_digest_stable(self, name):
        from repro.fuzz.oracle import solution_digest

        program = load_program(name)
        serial = analyze_insensitive(program, schedule="scc")
        parallel = analyze_insensitive(program, schedule="scc",
                                       parallel_scc=True)
        assert _solution_snapshot(serial) == _solution_snapshot(parallel)
        assert _callgraph_snapshot(serial) == _callgraph_snapshot(parallel)
        assert solution_digest(serial) == solution_digest(parallel)
        assert serial.counters.transfers == parallel.counters.transfers
        assert serial.counters.pairs_added == parallel.counters.pairs_added
        dense = parallel.extras["dense"]
        assert dense["scc_parallelism"] >= 1
        assert dense["scc_levels"] >= 1
        assert dense["packed_words"] >= 0


@pytest.mark.parametrize("other", OTHER_SCHEDULES)
@pytest.mark.parametrize("name", PROGRAM_NAMES)
class TestScheduleEquivalence:
    def test_ci_identical(self, name, other):
        program = load_program(name)
        batched = analyze_insensitive(program, schedule="batched")
        alt = analyze_insensitive(program, schedule=other)
        assert _solution_snapshot(batched) == _solution_snapshot(alt)
        assert _callgraph_snapshot(batched) == _callgraph_snapshot(alt)
        # CI transfers and pairs_added are schedule-invariant (total
        # pushes and final solution size); meets is not.
        assert batched.counters.transfers == alt.counters.transfers
        assert batched.counters.pairs_added == alt.counters.pairs_added

    def test_cs_identical(self, name, other):
        program = load_program(name)
        ci = analyze_insensitive(program)
        batched = analyze_sensitive(program, ci_result=ci,
                                    schedule="batched")
        alt = analyze_sensitive(program, ci_result=ci, schedule=other)
        assert _solution_snapshot(batched) == _solution_snapshot(alt)

    def test_fi_identical(self, name, other):
        program = load_program(name)
        batched = analyze_flowinsensitive(program, schedule="batched")
        alt = analyze_flowinsensitive(program, schedule=other)
        assert _solution_snapshot(batched) == _solution_snapshot(alt)

    def test_clients_identical(self, name, other):
        program = load_program(name)
        results = {}
        for schedule in ("batched", other):
            ci = analyze_insensitive(program, schedule=schedule)
            cs = analyze_sensitive(program, ci_result=ci,
                                   schedule=schedule)
            results[schedule] = (ci, cs)
        for flavor in (0, 1):
            batched = results["batched"][flavor]
            alt = results[other][flavor]
            assert _modref_snapshot(batched) == _modref_snapshot(alt)
            assert _defuse_snapshot(batched) == _defuse_snapshot(alt)
