"""Differential gate for the summary layer: composed == whole-program.

The incremental driver (:mod:`repro.analysis.incremental`) may only
ever change how much *work* a run does — never what it computes.  This
harness holds it to object-level digest equality
(:func:`repro.fuzz.oracle.solution_digest`) against independent
whole-program solves, across every suite program and all three
flavors, for each of its regimes:

* **cold** — empty store: digests match, every SCC resolved;
* **replay** — unchanged program, warm store: digests match with
  ``sccs_resolved = 0`` (not one transfer function ran);
* **partial** — after editing one function body, only the dirty
  caller cone is re-solved (``0 < sccs_resolved < summary_scc_total``
  for CI) and the digests still match a cold solve of the edited
  program.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.analysis.incremental import FLAVORS, analyze_incremental
from repro.fuzz.oracle import solution_digest

from ..conftest import lower

#: (flavor name, counters dict) pairs for one incremental run.
def _counters(results):
    return {flavor: result.extras["dense"] for flavor, result in
            results.items()}


def _digests(results):
    return {flavor: solution_digest(result)
            for flavor, result in results.items()}


# -- suite sweep ------------------------------------------------------------


def test_suite_cold_and_replay_match_whole_program(suite_name, suite_cache,
                                                   tmp_path):
    """Cold populate + warm replay reproduce the whole-program digests
    on every suite program, every flavor."""
    program = suite_cache.program(suite_name)
    baseline = {
        "insensitive": solution_digest(suite_cache.ci(suite_name)),
        "sensitive": solution_digest(suite_cache.cs(suite_name)),
        "flowinsensitive": solution_digest(
            analyze_flowinsensitive(program)),
    }

    cold = analyze_incremental(program, cache=str(tmp_path))
    assert _digests(cold) == baseline
    for flavor, dense in _counters(cold).items():
        assert dense["summary_cache_hits"] == 0, flavor
        assert dense["sccs_resolved"] == dense["summary_scc_total"], flavor
        assert dense["summary_scc_total"] > 0, flavor

    warm = analyze_incremental(program, cache=str(tmp_path))
    assert _digests(warm) == baseline
    for flavor, dense in _counters(warm).items():
        assert dense["sccs_resolved"] == 0, flavor
        assert dense["summaries_reused"] == dense["summary_scc_total"], \
            flavor


# -- edit-cone --------------------------------------------------------------

#: Two independent leaves under one caller: editing ``leafA`` must not
#: disturb ``leafB``'s summary.  The edit keeps every allocation /
#: string literal intact so location numbering is stable — the partial
#: path's intended regime (structural drift falls back to cold, which
#: a different test covers).
TWO_LEAF = """
int ga;
int gb;
int *leafA(int *pb) { return &ga; }
int *leafB(void) { return &gb; }
int main(void) {
  int *a = leafA(0);
  int *b = leafB();
  *a = 1;
  *b = 2;
  return 0;
}
"""

TWO_LEAF_EDITED = TWO_LEAF.replace("return &ga;",
                                   "return pb ? pb : &ga;")
assert TWO_LEAF_EDITED != TWO_LEAF


def _whole_program_digests(program):
    ci = repro.analyze_insensitive(program)
    cs = repro.analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    return {"insensitive": solution_digest(ci),
            "sensitive": solution_digest(cs),
            "flowinsensitive": solution_digest(fi)}


def test_edit_resolves_only_the_dirty_cone(tmp_path):
    cache = str(tmp_path)
    cold = analyze_incremental(lower(TWO_LEAF, name="two"), cache=cache)
    total = cold["insensitive"].extras["dense"]["summary_scc_total"]
    assert total == 3  # leafA, leafB, main

    warm = analyze_incremental(lower(TWO_LEAF, name="two"), cache=cache)
    assert _digests(warm) == _digests(cold)
    assert all(d["sccs_resolved"] == 0 for d in _counters(warm).values())

    edited = lower(TWO_LEAF_EDITED, name="two")
    baseline = _whole_program_digests(edited)
    partial = analyze_incremental(edited, cache=cache)
    assert _digests(partial) == baseline

    dense = partial["insensitive"].extras["dense"]
    # leafB's summary survives the edit; leafA and its caller re-solve.
    assert dense["sccs_resolved"] == 2
    assert dense["summaries_reused"] == 1
    assert 0 < dense["sccs_resolved"] < dense["summary_scc_total"]
    # CS/FI are keyed whole-program: any body change means a cold
    # re-solve (their facts are not caller-independent).
    for flavor in ("sensitive", "flowinsensitive"):
        assert partial[flavor].extras["dense"]["sccs_resolved"] == total

    again = analyze_incremental(lower(TWO_LEAF_EDITED, name="two"),
                                cache=cache)
    assert _digests(again) == baseline
    assert all(d["sccs_resolved"] == 0 for d in _counters(again).values())


def test_edit_back_replays_from_surviving_entries(tmp_path):
    """Reverting an edit finds the original entries still addressable —
    content keys make 'undo' a pure replay."""
    cache = str(tmp_path)
    cold = analyze_incremental(lower(TWO_LEAF, name="two"), cache=cache)
    analyze_incremental(lower(TWO_LEAF_EDITED, name="two"), cache=cache)
    reverted = analyze_incremental(lower(TWO_LEAF, name="two"),
                                   cache=cache)
    assert _digests(reverted) == _digests(cold)
    assert all(d["sccs_resolved"] == 0
               for d in _counters(reverted).values())


def test_flavor_subsets(tmp_path):
    """Asking for fewer flavors returns exactly those, CS pulling its
    CI prerequisite implicitly."""
    program = lower(TWO_LEAF, name="two")
    ci_only = analyze_incremental(program, ("insensitive",),
                                  cache=str(tmp_path))
    assert set(ci_only) == {"insensitive"}
    cs_only = analyze_incremental(program, ("sensitive",),
                                  cache=str(tmp_path))
    assert set(cs_only) == {"sensitive"}
    assert cs_only["sensitive"].extras["ci_result"] is not None
    with pytest.raises(Exception):
        analyze_incremental(program, ("nonsense",), cache=str(tmp_path))


def test_cache_disabled_is_plain_analysis(tmp_path, monkeypatch):
    """``cache=False`` and ``REPRO_NO_CACHE`` both degrade to cold
    whole-program solving with nothing persisted."""
    program = lower(TWO_LEAF, name="two")
    baseline = _whole_program_digests(program)

    off = analyze_incremental(program, cache=False)
    assert _digests(off) == baseline

    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    env_off = analyze_incremental(program, cache=str(tmp_path))
    assert _digests(env_off) == baseline
    assert not (tmp_path / "summaries").exists()
    monkeypatch.delenv("REPRO_NO_CACHE")

    for results in (off, env_off):
        dense = results["insensitive"].extras["dense"]
        assert dense["summary_cache_hits"] == 0
        assert dense["sccs_resolved"] == dense["summary_scc_total"]
