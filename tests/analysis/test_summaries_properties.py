"""Algebraic properties of the summary layer.

The incremental driver's correctness argument leans on three
properties that are checked here directly rather than end-to-end:

* the summary lattice behaves — ``join_summaries`` is an idempotent,
  commutative upper bound under ``summary_leq``;
* content keys are pure functions of content — two independent
  lowerings of the same source agree on every body hash, SCC key, and
  program key, and the extracted summaries digest identically no
  matter which schedule (or how many solver jobs) produced the
  solution;
* keys are *callee*-closed — editing one function re-keys exactly its
  own SCC and the transitive caller cone, nothing below it.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.summaries import (
    LocationCodec,
    body_hashes,
    call_condensation,
    context_hash,
    extract_summary,
    join_summaries,
    program_key,
    scc_keys,
    summary_digest,
    summary_leq,
)
from repro.errors import AnalysisError

from ..conftest import lower
from .test_summaries_differential import TWO_LEAF, TWO_LEAF_EDITED

#: Deeper chain for transitive re-keying: main → mid → leaf.
CHAIN = """
int g;
int *leaf(void) { return &g; }
int *mid(void) { return leaf(); }
int main(void) { int *p = mid(); *p = 1; return 0; }
"""

#: Same-line edit: node origins carry source positions, so inserting a
#: line would (conservatively, but correctly) re-key everything below
#: the edit too — this property wants the minimal cone.
CHAIN_LEAF_EDITED = CHAIN.replace("{ return &g; }",
                                  "{ g = 1; return &g; }")
assert CHAIN_LEAF_EDITED != CHAIN


def _keyed(source: str, name: str = "chain"):
    """(program, codec, ctx, bodies, condensation, keys) for a source."""
    program = lower(source, name=name)
    codec = LocationCodec(program)
    ctx = context_hash(program, codec)
    bodies = body_hashes(program, codec)
    cond = call_condensation(program)
    keys = scc_keys(program, cond, codec, ctx, bodies)
    return program, codec, ctx, bodies, cond, keys


def _scc_key_by_function(cond, keys):
    return {name: keys[index]
            for index, members in enumerate(cond.sccs)
            for name in members}


def _leaf_summary(source: str):
    program = lower(source, name="two")
    codec = LocationCodec(program)
    result = analyze_insensitive(program)
    return extract_summary(result, ["leafA"], codec)


# -- lattice ----------------------------------------------------------------


def test_join_is_idempotent_and_reflexive():
    s = _leaf_summary(TWO_LEAF)
    assert summary_leq(s, s)
    assert summary_digest(join_summaries(s, s)) == summary_digest(s)


def test_join_is_an_upper_bound_and_commutes():
    a = _leaf_summary(TWO_LEAF)
    b = _leaf_summary(TWO_LEAF_EDITED)
    assert summary_digest(a) != summary_digest(b)
    ab, ba = join_summaries(a, b), join_summaries(b, a)
    assert summary_leq(a, ab) and summary_leq(b, ab)
    assert summary_digest(ab) == summary_digest(ba)
    # Joining the bound back in changes nothing: x ⊔ (x ⊔ y) = x ⊔ y.
    assert summary_digest(join_summaries(a, ab)) == summary_digest(ab)


def test_join_rejects_mismatched_function_sets():
    program = lower(TWO_LEAF, name="two")
    codec = LocationCodec(program)
    result = analyze_insensitive(program)
    a = extract_summary(result, ["leafA"], codec)
    b = extract_summary(result, ["leafB"], codec)
    with pytest.raises(AnalysisError):
        join_summaries(a, b)


# -- key purity -------------------------------------------------------------


def test_keys_are_pure_functions_of_source():
    """Two independent lowerings agree on every hash — keys never
    depend on object identity, uid assignment, or dict order."""
    _, _, ctx1, bodies1, cond1, keys1 = _keyed(CHAIN)
    _, _, ctx2, bodies2, cond2, keys2 = _keyed(CHAIN)
    assert ctx1 == ctx2
    assert bodies1 == bodies2
    assert cond1.sccs == cond2.sccs
    assert keys1 == keys2
    assert program_key(ctx1, bodies1) == program_key(ctx2, bodies2)


@pytest.mark.parametrize("solve", [
    pytest.param(lambda p: analyze_insensitive(p, schedule="batched"),
                 id="batched"),
    pytest.param(lambda p: analyze_insensitive(p, schedule="fifo"),
                 id="fifo"),
    pytest.param(lambda p: analyze_insensitive(p, schedule="scc"),
                 id="scc"),
    pytest.param(lambda p: analyze_insensitive(p, jobs=2), id="jobs2"),
])
def test_summary_digest_is_schedule_independent(solve):
    """The same fixpoint yields digest-identical summaries no matter
    which schedule — or how many worker jobs — computed it."""
    program = lower(TWO_LEAF, name="two")
    codec = LocationCodec(program)
    baseline = extract_summary(analyze_insensitive(program),
                               sorted(program.functions), codec)
    result = solve(lower(TWO_LEAF, name="two"))
    summary = extract_summary(result, sorted(result.program.functions),
                              LocationCodec(result.program))
    assert summary_digest(summary) == summary_digest(baseline)


# -- key sensitivity --------------------------------------------------------


def test_editing_a_leaf_rekeys_exactly_the_caller_cone():
    _, _, _, bodies1, cond1, keys1 = _keyed(CHAIN)
    _, _, _, bodies2, cond2, keys2 = _keyed(CHAIN_LEAF_EDITED)
    by_fn1 = _scc_key_by_function(cond1, keys1)
    by_fn2 = _scc_key_by_function(cond2, keys2)
    # The edit touches only leaf's body...
    assert bodies1["leaf"] != bodies2["leaf"]
    assert bodies1["mid"] == bodies2["mid"]
    assert bodies1["main"] == bodies2["main"]
    # ...but re-keys the whole transitive caller cone above it.
    assert by_fn1["leaf"] != by_fn2["leaf"]
    assert by_fn1["mid"] != by_fn2["mid"]
    assert by_fn1["main"] != by_fn2["main"]


def test_sibling_keys_survive_an_edit():
    _, _, _, _, cond1, keys1 = _keyed(TWO_LEAF, name="two")
    _, _, _, _, cond2, keys2 = _keyed(TWO_LEAF_EDITED, name="two")
    by_fn1 = _scc_key_by_function(cond1, keys1)
    by_fn2 = _scc_key_by_function(cond2, keys2)
    assert by_fn1["leafA"] != by_fn2["leafA"]
    assert by_fn1["main"] != by_fn2["main"]
    assert by_fn1["leafB"] == by_fn2["leafB"]  # untouched sibling


def test_program_key_changes_on_any_body_edit():
    _, _, ctx1, bodies1, _, _ = _keyed(TWO_LEAF, name="two")
    _, _, ctx2, bodies2, _, _ = _keyed(TWO_LEAF_EDITED, name="two")
    assert program_key(ctx1, bodies1) != program_key(ctx2, bodies2)


def test_condensation_orders_callees_first():
    program, _, _, _, cond, _ = _keyed(CHAIN)
    index_of = {name: i for i, members in enumerate(cond.sccs)
                for name in members}
    for caller_index, callee_indices in cond.callees.items():
        for callee_index in callee_indices:
            assert callee_index < caller_index, \
                "callees must precede callers in SCC order"
    assert index_of["leaf"] < index_of["mid"] < index_of["main"]
