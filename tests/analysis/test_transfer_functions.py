"""Transfer functions exercised directly on hand-built graphs.

The C-level tests cover the common paths; these pin down the exact
per-node semantics (Figure 1's flow-in cases) including corners the
frontend rarely produces.
"""

import pytest

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Program
from repro.ir.nodes import ValueTag
from repro.ir.validate import validate_program
from repro.memory import (
    EMPTY_OFFSET,
    FieldOp,
    direct,
    global_location,
    heap_location,
    location_path,
    make_path,
    pair,
)
from tests.conftest import target_names


def program_with_main():
    program = Program("t")
    gb = GraphBuilder("main")
    entry = gb.entry([])
    return program, gb, entry


def finish(program, gb, store):
    gb.ret(None, store)
    program.add_function(gb.graph)
    program.add_root("main")
    validate_program(program)
    return program


class TestLookupTransfer:
    def test_aggregate_read_yields_offset_pairs(self):
        """Reading a whole struct returns member contents at offsets."""
        program, gb, entry = program_with_main()
        s = program.register_location(global_location("s"))
        g = program.register_location(global_location("g"))
        f = FieldOp("S", "p")
        # store: s.p -> g
        member_addr = gb.address(location_path(s, [f]))
        store = gb.update(member_addr, entry.store_out,
                          gb.address(location_path(g)))
        whole = gb.lookup(gb.address(location_path(s)), store,
                          ValueTag.AGGREGATE, carries_pointers=True)
        store2 = gb.update(gb.address(location_path(s)), store, whole)
        finish(program, gb, store2)
        result = analyze_insensitive(program)
        offset = make_path(None, [f])
        assert result.solution.targets(whole, offset) \
            == {location_path(g)}
        # And no direct pair: the aggregate itself points nowhere.
        assert result.targets(whole) == set()

    def test_extract_projects_member(self):
        program, gb, entry = program_with_main()
        s = program.register_location(global_location("s"))
        g = program.register_location(global_location("g"))
        f = FieldOp("S", "p")
        store = gb.update(gb.address(location_path(s, [f])),
                          entry.store_out,
                          gb.address(location_path(g)))
        whole = gb.lookup(gb.address(location_path(s)), store,
                          ValueTag.AGGREGATE, carries_pointers=True)
        member = gb.extract(whole, f, ValueTag.POINTER)
        store2 = gb.update(member, store, gb.const(1))
        finish(program, gb, store2)
        result = analyze_insensitive(program)
        assert target_names(result, member) == {"g"}

    def test_extract_ignores_other_members(self):
        program, gb, entry = program_with_main()
        s = program.register_location(global_location("s"))
        g = program.register_location(global_location("g"))
        f = FieldOp("S", "p")
        other = FieldOp("S", "q")
        store = gb.update(gb.address(location_path(s, [f])),
                          entry.store_out,
                          gb.address(location_path(g)))
        whole = gb.lookup(gb.address(location_path(s)), store,
                          ValueTag.AGGREGATE, carries_pointers=True)
        wrong = gb.extract(whole, other, ValueTag.POINTER)
        store2 = gb.update(gb.address(location_path(s)), store, wrong)
        finish(program, gb, store2)
        result = analyze_insensitive(program)
        assert result.targets(wrong) == set()


class TestUpdateTransfer:
    def test_aggregate_write_resolves_offsets(self):
        """Writing an aggregate value stores each member's pairs at
        the destination's extended paths."""
        program, gb, entry = program_with_main()
        src = program.register_location(global_location("src"))
        dst = program.register_location(global_location("dst"))
        g = program.register_location(global_location("g"))
        f = FieldOp("S", "p")
        store = gb.update(gb.address(location_path(src, [f])),
                          entry.store_out,
                          gb.address(location_path(g)))
        value = gb.lookup(gb.address(location_path(src)), store,
                          ValueTag.AGGREGATE, carries_pointers=True)
        store = gb.update(gb.address(location_path(dst)), store, value)
        readback = gb.lookup(gb.address(location_path(dst, [f])), store,
                             ValueTag.POINTER)
        store = gb.update(readback, store, gb.const(0))
        finish(program, gb, store)
        result = analyze_insensitive(program)
        assert target_names(result, readback) == {"g"}

    def test_weak_update_preserves_across_heap(self):
        program, gb, entry = program_with_main()
        h = program.register_location(heap_location("h"))
        g1 = program.register_location(global_location("g1"))
        g2 = program.register_location(global_location("g2"))
        addr = gb.address(location_path(h))
        store = gb.update(addr, entry.store_out,
                          gb.address(location_path(g1)))
        store = gb.update(addr, store, gb.address(location_path(g2)))
        loaded = gb.lookup(addr, store, ValueTag.POINTER)
        store = gb.update(loaded, store, gb.const(1))
        finish(program, gb, store)
        result = analyze_insensitive(program)
        assert target_names(result, loaded) == {"g1", "g2"}

    def test_non_direct_loc_pairs_ignored(self):
        """Only (ε, r) pairs on a location input dereference; offset
        pairs (an aggregate misused as a location) are skipped."""
        program, gb, entry = program_with_main()
        s = program.register_location(global_location("s"))
        g = program.register_location(global_location("g"))
        f = FieldOp("S", "p")
        store = gb.update(gb.address(location_path(s, [f])),
                          entry.store_out,
                          gb.address(location_path(g)))
        whole = gb.lookup(gb.address(location_path(s)), store,
                          ValueTag.AGGREGATE, carries_pointers=True)
        # 'whole' carries only the offset pair (.p, g): using it as a
        # location dereferences nothing.
        bogus = gb.lookup(whole, store, ValueTag.POINTER)
        store = gb.update(bogus, store, gb.const(1))
        finish(program, gb, store)
        result = analyze_insensitive(program)
        assert result.targets(bogus) == set()


class TestSensitiveParity:
    def test_hand_built_graph_cs_refines_ci(self):
        program, gb, entry = program_with_main()
        g1 = program.register_location(global_location("g1"))
        p = program.register_location(global_location("p"))
        addr_p = gb.address(location_path(p))
        store = gb.update(addr_p, entry.store_out,
                          gb.address(location_path(g1)))
        loaded = gb.lookup(addr_p, store, ValueTag.POINTER)
        store = gb.update(loaded, store, gb.const(1))
        finish(program, gb, store)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        for output in cs.solution.outputs():
            assert cs.pairs(output) <= ci.pairs(output)
        assert target_names(cs, loaded) == {"g1"}
