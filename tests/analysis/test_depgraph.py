"""The alias-aware dependence graph (``analysis/depgraph``)."""

import pytest

from repro.analysis.depgraph import (
    EDGE_KINDS,
    INITIAL_KEY,
    ReachingDefs,
    build_depgraph,
    function_op_masks,
)
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.frontend.lower import lower_source
from repro.suite.registry import load_program

SOURCE = """
int g;
int h;

void set(int *p, int v) {
    *p = v;
}

int get(int *p) {
    return *p;
}

int main(void) {
    int *q = &g;
    set(q, 5);
    h = get(q);
    return h;
}
"""


@pytest.fixture(scope="module")
def graph():
    program = lower_source(SOURCE, name="dep.c")
    return build_depgraph(analyze_insensitive(program))


class TestGraphShape:
    def test_nodes_and_edges_nonempty(self, graph):
        assert graph.nodes
        assert graph.edges

    def test_initial_store_node_present(self, graph):
        assert INITIAL_KEY in graph.nodes

    def test_edges_sorted_and_kinds_known(self, graph):
        assert list(graph.edges) == sorted(graph.edges)
        assert {kind for _, _, kind in graph.edges} <= set(EDGE_KINDS)

    def test_edge_endpoints_are_nodes(self, graph):
        for src, dst, _ in graph.edges:
            assert src in graph.nodes
            assert dst in graph.nodes

    def test_stats_counts_agree(self, graph):
        stats = graph.stats()
        assert stats["nodes"] == len(graph.nodes)
        assert stats["edges"] == len(graph.edges)
        assert sum(stats[f"{kind}_edges"] for kind in EDGE_KINDS) \
            == stats["edges"]

    def test_store_to_load_flow_has_mem_edge(self, graph):
        """``set`` writes ``g`` through p; ``get`` reads it back — the
        interprocedural def→use must surface as a mem edge."""
        updates = [key for key, (fn, kind, _) in graph.nodes.items()
                   if fn == "set" and kind == "update"]
        lookups = [key for key, (fn, kind, _) in graph.nodes.items()
                   if fn == "get" and kind == "lookup"]
        assert updates and lookups
        mem = {(src, dst) for src, dst, kind in graph.edges
               if kind == "mem"}
        assert any((u, l) in mem for u in updates for l in lookups)

    def test_neighbours_are_inverse_views(self, graph):
        for src, dst, kind in graph.edges:
            assert (dst, kind) in graph.neighbours(src, "forward")
            assert (src, kind) in graph.neighbours(dst, "backward")


class TestDeterminism:
    def test_digest_stable_across_schedules(self):
        program = load_program("part", cache=False)
        base = build_depgraph(analyze_insensitive(program)).digest()
        for schedule in ("fifo", "scc"):
            alt = build_depgraph(
                analyze_insensitive(program, schedule=schedule))
            assert alt.digest() == base
        par = build_depgraph(analyze_insensitive(
            program, schedule="scc", parallel_scc=True))
        assert par.digest() == base

    def test_rebuild_is_identical(self, graph):
        program = lower_source(SOURCE, name="dep.c")
        again = build_depgraph(analyze_insensitive(program))
        assert again.digest() == graph.digest()
        assert again.edges == graph.edges

    def test_cs_graph_also_builds(self):
        program = lower_source(SOURCE, name="dep.c")
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        graph = build_depgraph(cs)
        assert graph.flavor == "sensitive"
        assert graph.edges


class TestReachingDefs:
    def test_shared_engine_reused(self):
        program = lower_source(SOURCE, name="dep.c")
        result = analyze_insensitive(program)
        engine = ReachingDefs(result, call_site_sensitive=False)
        graph = build_depgraph(result, engine=engine)
        assert graph.digest() == build_depgraph(result).digest()

    def test_function_op_masks_cover_lookups(self):
        program = lower_source(SOURCE, name="dep.c")
        result = analyze_insensitive(program)
        masks = function_op_masks(result)
        assert set(masks) <= set(program.functions)
