"""The def/use client: reaching definitions through the store."""

import pytest

from repro.analysis.clients.defuse import INITIAL, defuse
from repro.errors import AnalysisError
from repro.ir.nodes import LookupNode, UpdateNode
from tests.conftest import analyze_both


def ops(program, function, cls):
    return [n for n in program.functions[function].nodes
            if isinstance(n, cls)]


class TestStraightLine:
    def test_single_definition(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(void) { g = 1; return g; }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        write = ops(program, "main", UpdateNode)[0]
        assert du.reaching_definitions(read) == {write}

    def test_strong_update_kills_earlier_def(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(void) {
                g = 1;
                g = 2;
                return g;
            }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        first, second = ops(program, "main", UpdateNode)
        assert du.reaching_definitions(read) == {second}

    def test_weak_update_keeps_earlier_def(self):
        program, ci, _ = analyze_both("""
            int a[4];
            int main(void) {
                a[0] = 1;
                a[1] = 2;
                return a[2];
            }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        writes = set(ops(program, "main", UpdateNode))
        # Element writes are weak (summary location): neither kills,
        # and the array's initial contents remain observable too.
        assert du.reaching_definitions(read) == writes | {INITIAL}

    def test_unrelated_write_not_a_def(self):
        program, ci, _ = analyze_both("""
            int g, h;
            int main(void) { g = 1; h = 2; return g; }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        g_write = ops(program, "main", UpdateNode)[0]
        defs = du.reaching_definitions(read)
        assert defs == {g_write}

    def test_uninitialized_global_reaches_initial(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(void) { return g; }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        assert du.reaching_definitions(read) == {INITIAL}


class TestBranches:
    def test_both_branch_defs_reach(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(int argc, char **argv) {
                if (argc) g = 1; else g = 2;
                return g;
            }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        writes = set(ops(program, "main", UpdateNode))
        assert du.reaching_definitions(read) == writes

    def test_loop_carried_def(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(int argc, char **argv) {
                g = 0;
                while (argc--) g = g + 1;
                return g;
            }
        """)
        du = defuse(ci)
        final_read = ops(program, "main", LookupNode)[-1]
        writes = set(ops(program, "main", UpdateNode))
        assert du.reaching_definitions(final_read) == writes


class TestInterprocedural:
    def test_def_in_callee_reaches_caller(self):
        program, ci, _ = analyze_both("""
            int g;
            void set(void) { g = 7; }
            int main(void) { set(); return g; }
        """)
        du = defuse(ci)
        read = ops(program, "main", LookupNode)[0]
        write = ops(program, "set", UpdateNode)[0]
        assert du.reaching_definitions(read) == {write}

    def test_def_in_caller_reaches_callee(self):
        program, ci, _ = analyze_both("""
            int g;
            int get(void) { return g; }
            int main(void) { g = 3; return get(); }
        """)
        du = defuse(ci)
        read = ops(program, "get", LookupNode)[0]
        write = ops(program, "main", UpdateNode)[0]
        assert du.reaching_definitions(read) == {write}

    def test_call_site_sensitivity_of_walk(self):
        """The walk resumes at the specific call that entered the
        callee, so definitions from unrelated call sites of a *another*
        function do not leak in along the store chain."""
        program, ci, _ = analyze_both("""
            int g;
            int get(void) { return g; }
            int main(void) {
                g = 1;
                int a = get();
                g = 2;
                int b = get();
                return a + b;
            }
        """)
        du = defuse(ci)
        read = ops(program, "get", LookupNode)[0]
        writes = ops(program, "main", UpdateNode)
        # From get()'s read, both call sites are callers: both defs
        # reach (the second is strong but the walks are per-call-site).
        assert du.reaching_definitions(read) == set(writes)

    def test_uses_of_inverse_query(self):
        program, ci, _ = analyze_both("""
            int g;
            void set(void) { g = 7; }
            int use1(void) { return g; }
            int main(void) { set(); return use1(); }
        """)
        du = defuse(ci)
        write = ops(program, "set", UpdateNode)[0]
        uses = du.uses_of(write)
        read = ops(program, "use1", LookupNode)[0]
        assert read in uses


class TestThroughPointers:
    def test_pointer_write_defines_target(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) {
                p = &g;
                *p = 5;
                return g;
            }
        """)
        du = defuse(ci)
        final_read = ops(program, "main", LookupNode)[-1]
        deref_write = [n for n in ops(program, "main", UpdateNode)
                       if n.is_indirect][0]
        assert deref_write in du.reaching_definitions(final_read)

    def test_guards(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(void) { g = 1; return g; }
        """)
        du = defuse(ci)
        write = ops(program, "main", UpdateNode)[0]
        with pytest.raises(AnalysisError):
            du.reaching_definitions(write)

    def test_insensitive_walk_is_coarser_superset(self):
        """The context-insensitive walk may add definitions but never
        loses one."""
        program, ci, _ = analyze_both("""
            int g;
            int get(void) { return g; }
            int main(void) {
                g = 1;
                int a = get();
                g = 2;
                return a + get();
            }
        """)
        sensitive = defuse(ci, call_site_sensitive=True)
        insensitive = defuse(ci, call_site_sensitive=False)
        for graph in program.functions.values():
            for node in graph.nodes:
                if isinstance(node, LookupNode):
                    assert sensitive.reaching_definitions(node) <= \
                        insensitive.reaching_definitions(node)

    def test_recursive_program_terminates(self):
        """Call-graph cycles must not blow the walk up (the recursive
        context is merged rather than unrolled)."""
        program, ci, _ = analyze_both("""
            int g;
            int depth(int n) {
                if (!n) return g;
                g = n;
                return depth(n - 1);
            }
            int main(void) { return depth(5); }
        """)
        du = defuse(ci)
        read = ops(program, "depth", LookupNode)[0]
        defs = du.reaching_definitions(read)
        write = ops(program, "depth", UpdateNode)[0]
        assert write in defs

    def test_visit_budget(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(int argc, char **argv) {
                while (argc--) g = g + 1;
                return g;
            }
        """)
        du = defuse(ci, max_visits=1)
        read = ops(program, "main", LookupNode)[-1]
        with pytest.raises(AnalysisError, match="budget"):
            du.reaching_definitions(read)
