"""Property-based tests over randomly generated pointer programs.

A small generator builds valid C programs from pointer-assignment
templates; the properties are the paper's structural invariants:

* the context-sensitive solution is a refinement of (subset of) the
  context-insensitive one, everywhere;
* §4.2's optimizations never change the stripped CS solution;
* both analyses are deterministic;
* every location an op references context-insensitively is also
  reported by the flow-insensitive baseline (CI refines Weihl).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.ir.nodes import LookupNode, UpdateNode

N_GLOBALS = 4
N_POINTERS = 3
N_HELPERS = 2


@st.composite
def pointer_programs(draw) -> str:
    """A random but always-valid pointer-shuffling C program.

    Covers globals, pointer cells, heap nodes with pointer members,
    shared helper procedures (identity, store-through, select), loops,
    and list-style walks — every construct the analyses' transfer
    functions dispatch on.
    """
    lines = []
    lines.append("extern void *malloc(unsigned long n);")
    lines.append("struct box { int *ptr; struct box *link; };")
    for i in range(N_GLOBALS):
        lines.append(f"int g{i};")
    for i in range(N_POINTERS):
        lines.append(f"int *p{i};")
    lines.append("struct box *boxes;")
    # Helper procedures: identity, store-through, swap-ish.
    lines.append("int *identity(int *x) { return x; }")
    lines.append("void store_to(int **cell, int *value) "
                 "{ *cell = value; }")
    lines.append("int *choose(int *a, int *b, int c) "
                 "{ if (c) return a; return b; }")
    lines.append("struct box *wrap(int *value) {")
    lines.append("    struct box *b = malloc(sizeof(struct box));")
    lines.append("    b->ptr = value; b->link = boxes; return b;")
    lines.append("}")

    body = []
    n_statements = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_statements):
        kind = draw(st.integers(min_value=0, max_value=8))
        p = draw(st.integers(min_value=0, max_value=N_POINTERS - 1))
        q = draw(st.integers(min_value=0, max_value=N_POINTERS - 1))
        g = draw(st.integers(min_value=0, max_value=N_GLOBALS - 1))
        h = draw(st.integers(min_value=0, max_value=N_GLOBALS - 1))
        if kind == 0:
            body.append(f"p{p} = &g{g};")
        elif kind == 1:
            body.append(f"p{p} = identity(&g{g});")
        elif kind == 2:
            body.append(f"store_to(&p{p}, &g{g});")
        elif kind == 3:
            body.append(f"p{p} = choose(&g{g}, &g{h}, argc);")
        elif kind == 4:
            body.append(f"if (argc) p{p} = p{q};")
        elif kind == 5:
            body.append(f"if (p{p}) *p{p} = {g};")
        elif kind == 6:
            body.append(f"boxes = wrap(&g{g});")
        elif kind == 7:
            body.append(f"if (boxes) p{p} = boxes->ptr;")
        else:
            body.append("{ struct box *walk; "
                        "for (walk = boxes; walk; walk = walk->link) "
                        f"if (walk->ptr) p{p} = walk->ptr; }}")
    body.append("return 0;")
    lines.append("int main(int argc, char **argv) {")
    lines.extend("    " + s for s in body)
    lines.append("}")
    return "\n".join(lines)


def _memory_ops(program):
    for graph in program.functions.values():
        for node in graph.nodes:
            if isinstance(node, (LookupNode, UpdateNode)):
                yield node


@settings(max_examples=25, deadline=None)
@given(pointer_programs())
def test_cs_refines_ci_everywhere(source):
    program = repro.parse_source(source)
    ci = analyze_insensitive(program)
    cs = analyze_sensitive(program, ci_result=ci)
    for output in cs.solution.outputs():
        assert cs.pairs(output) <= ci.pairs(output)
    for node in _memory_ops(program):
        assert cs.op_locations(node) <= ci.op_locations(node)


@settings(max_examples=15, deadline=None)
@given(pointer_programs())
def test_optimizations_preserve_cs_solution(source):
    program = repro.parse_source(source)
    ci = analyze_insensitive(program)
    fast = analyze_sensitive(program, ci_result=ci, optimize=True)
    slow = analyze_sensitive(program, ci_result=ci, optimize=False)
    outputs = set(fast.solution.outputs()) | set(slow.solution.outputs())
    for output in outputs:
        assert fast.pairs(output) == slow.pairs(output)


@settings(max_examples=15, deadline=None)
@given(pointer_programs())
def test_ci_deterministic(source):
    program = repro.parse_source(source)
    a = analyze_insensitive(program)
    b = analyze_insensitive(program)
    assert a.counters.as_dict() == b.counters.as_dict()
    for output in a.solution.outputs():
        assert a.pairs(output) == b.pairs(output)


@settings(max_examples=15, deadline=None)
@given(pointer_programs())
def test_ci_refines_flow_insensitive_at_ops(source):
    program = repro.parse_source(source)
    ci = analyze_insensitive(program)
    fi = analyze_flowinsensitive(program)
    for node in _memory_ops(program):
        assert ci.op_locations(node) <= fi.op_locations(node)


@settings(max_examples=20, deadline=None)
@given(pointer_programs())
def test_solutions_are_fixpoints(source):
    """The independent verifier (which shares no code with the
    solvers) confirms every solution is closed under the transfer
    functions."""
    from repro.analysis.verify import verify_solution

    program = repro.parse_source(source)
    ci = analyze_insensitive(program)
    assert verify_solution(ci) == []
    cs = analyze_sensitive(program, ci_result=ci)
    assert verify_solution(cs) == []


@settings(max_examples=15, deadline=None)
@given(pointer_programs())
def test_referents_are_locations(source):
    """Structural sanity of every computed pair."""
    program = repro.parse_source(source)
    ci = analyze_insensitive(program)
    from repro.ir.nodes import ValueTag
    for output, pairs in ci.solution.items():
        for pair in pairs:
            assert pair.referent.base is not None
            if output.tag is ValueTag.STORE:
                assert pair.path.base is not None  # store paths absolute
            else:
                assert pair.path.base is None      # value paths relative
