"""Program slicing (``analysis/slicing``) and slice witnesses."""

import pytest

from repro.analysis.checkers import run_checkers
from repro.analysis.depgraph import build_depgraph
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.slicing import (
    attach_slice_witnesses,
    compute_slice,
    criterion_nodes,
    finding_node_key,
    resolve_finding,
    slice_criterion,
    slice_for_finding,
)
from repro.errors import AnalysisError
from repro.frontend.lower import lower_source
from repro.suite.registry import load_program

SOURCE = """
int g;
int h;

void set(int *p, int v) {
    *p = v;
}

int get(int *p) {
    return *p;
}

int main(void) {
    int *q = &g;
    set(q, 5);
    h = get(q);
    return h;
}
"""

#: Line of ``*p = v;`` / ``return *p;`` in SOURCE (1-based, leading
#: newline counts).
WRITE_LINE = 6
READ_LINE = 10


@pytest.fixture(scope="module")
def graph():
    program = lower_source(SOURCE, name="slice.c")
    return build_depgraph(analyze_insensitive(program))


class TestCriteria:
    def test_matches_nodes_on_the_line(self, graph):
        keys = criterion_nodes(graph, f"slice.c:{WRITE_LINE}")
        assert keys
        assert all(graph.nodes[k][2].endswith(f":{WRITE_LINE}")
                   for k in keys)

    def test_basename_matches_absolute_origin(self):
        program = load_program("part", cache=False)
        part = build_depgraph(analyze_insensitive(program))
        assert criterion_nodes(part, "part.c:101")

    def test_missing_colon_rejected(self, graph):
        with pytest.raises(AnalysisError, match="bad slice criterion"):
            criterion_nodes(graph, "slice.c")

    def test_unmatched_line_rejected(self, graph):
        with pytest.raises(AnalysisError, match="matches no program"):
            criterion_nodes(graph, "slice.c:999")


class TestComputeSlice:
    def test_backward_reaches_the_write(self, graph):
        result = slice_criterion(graph, f"slice.c:{READ_LINE}",
                                 "backward")
        assert set(result.roots) <= set(result.nodes)
        assert any(origin.endswith(f":{WRITE_LINE}")
                   for origin in result.origins)

    def test_forward_reaches_the_read(self, graph):
        result = slice_criterion(graph, f"slice.c:{WRITE_LINE}",
                                 "forward")
        assert any(origin.endswith(f":{READ_LINE}")
                   for origin in result.origins)

    def test_edges_connect_members(self, graph):
        result = slice_criterion(graph, f"slice.c:{READ_LINE}")
        members = set(result.nodes)
        for src, dst, _ in result.edges:
            assert src in members and dst in members

    def test_unknown_direction_rejected(self, graph):
        with pytest.raises(AnalysisError, match="unknown slice direction"):
            compute_slice(graph, list(graph.nodes)[:1], "sideways")

    def test_unknown_root_rejected(self, graph):
        with pytest.raises(AnalysisError, match="not in the dependence"):
            compute_slice(graph, ["main:bogus#999"], "backward")

    def test_digest_depends_on_direction(self, graph):
        criterion = f"slice.c:{WRITE_LINE}"
        back = slice_criterion(graph, criterion, "backward")
        forth = slice_criterion(graph, criterion, "forward")
        assert back.digest() != forth.digest()

    def test_as_dict_round_trip(self, graph):
        result = slice_criterion(graph, f"slice.c:{READ_LINE}")
        doc = result.as_dict()
        assert doc["size"] == len(doc["nodes"]) == result.size
        assert doc["digest"] == result.digest()


class TestDeterminism:
    def test_slice_digest_stable_across_schedules(self):
        program = load_program("part", cache=False)
        digests = set()
        for schedule in ("batched", "fifo", "scc"):
            result = analyze_insensitive(program, schedule=schedule)
            graph = build_depgraph(result)
            digests.add(slice_criterion(graph, "part.c:101").digest())
        assert len(digests) == 1


HAZARD_SOURCE = """
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    return 0;
}
"""


@pytest.fixture(scope="module")
def hazard():
    program = lower_source(HAZARD_SOURCE, name="hazard.c",
                           hazard_model=True)
    result = analyze_insensitive(program)
    findings = run_checkers(result)
    return result, findings


class TestFindings:
    def test_resolve_exact_and_substring(self, hazard):
        _, findings = hazard
        assert findings
        full = "|".join(findings[0].key())
        assert resolve_finding(findings, full) is findings[0]
        assert resolve_finding(findings, "nullderef") \
            in findings

    def test_resolve_miss_is_an_error(self, hazard):
        _, findings = hazard
        with pytest.raises(AnalysisError, match="no finding matches"):
            resolve_finding(findings, "not-a-checker")

    def test_resolve_ambiguity_is_an_error(self, hazard):
        _, findings = hazard
        doubled = list(findings) * 2
        with pytest.raises(AnalysisError, match="ambiguous"):
            resolve_finding(doubled, "nullderef")

    def test_slice_for_finding(self, hazard):
        result, findings = hazard
        graph = build_depgraph(result)
        finding = resolve_finding(findings, "nullderef")
        sliced = slice_for_finding(graph, finding)
        assert finding_node_key(finding) in sliced.nodes
        assert sliced.criterion.startswith("finding:nullderef|")

    def test_witnesses_attached(self, hazard):
        result, findings = hazard
        attach_slice_witnesses(findings, result)
        for finding in findings:
            assert "slice[backward]" in (finding.witness or "")

    def test_witness_appends_to_existing_text(self, hazard):
        result, findings = hazard
        fresh = run_checkers(result, witness=True)
        before = [f.witness for f in fresh]
        attach_slice_witnesses(fresh, result)
        for old, finding in zip(before, fresh):
            if old:
                assert finding.witness.startswith(old)
            assert "slice[backward]" in finding.witness
