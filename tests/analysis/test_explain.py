"""Derivation explanations."""

import pytest

from repro.analysis.explain import Explainer, explain, format_derivation
from repro.errors import AnalysisError
from repro.ir.nodes import LookupNode, UpdateNode
from tests.conftest import analyze_both, find_op


def _some_fact(result, node_kind_filter=None):
    for output, pairs in result.solution.items():
        if node_kind_filter and output.node.kind != node_kind_filter:
            continue
        for pair in pairs:
            return output, pair
    raise AssertionError("no facts")


class TestExplain:
    def test_address_seed_is_leaf(self):
        program, ci, _ = analyze_both(
            "int g; int main(void) { int *p = &g; return *p; }")
        addr = next(n for n in program.functions["main"].nodes
                    if n.kind == "address"
                    and n.path.base.name == "g")
        (pair,) = ci.pairs(addr.out)
        derivation = explain(ci, addr.out, pair)
        assert derivation.rule == "address constant"
        assert derivation.premises == []

    def test_store_write_derivation(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; return *p; }
        """)
        update = find_op(program, "main", "write")
        (pair,) = ci.pairs(update.ostore)
        derivation = explain(ci, update.ostore, pair)
        assert "memory write" in derivation.rule
        assert len(derivation.premises) == 2
        rules = {p.rule for p in derivation.premises}
        assert "address constant" in rules

    def test_interprocedural_derivation(self):
        program, ci, _ = analyze_both("""
            int g;
            int *get(void) { return &g; }
            int main(void) { return *get(); }
        """)
        read = [n for n in program.functions["main"].nodes
                if isinstance(n, LookupNode)][0]
        loc_output = read.loc.source
        (pair,) = ci.pairs(loc_output)
        derivation = explain(ci, loc_output, pair)
        assert "return value of get" in derivation.rule
        text = format_derivation(derivation)
        assert "address constant" in text

    def test_formal_derivation_cites_caller(self):
        program, ci, _ = analyze_both("""
            int g;
            void sink(int *p) { *p = 1; }
            int main(void) { sink(&g); return 0; }
        """)
        formal = program.functions["sink"].formals[0]
        (pair,) = ci.pairs(formal)
        derivation = explain(ci, formal, pair)
        assert "argument 0" in derivation.rule
        assert "main" in derivation.rule

    def test_loop_derivation_terminates(self):
        program, ci, _ = analyze_both("""
            extern void *malloc(unsigned long n);
            struct node { struct node *next; };
            int main(void) {
                struct node *h = 0;
                int i;
                for (i = 0; i < 3; i++) {
                    struct node *n = malloc(sizeof(struct node));
                    n->next = h;
                    h = n;
                }
                while (h) h = h->next;
                return 0;
            }
        """)
        read = [n for n in program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][-1]
        for pair in ci.pairs(read.out):
            derivation = explain(ci, read.out, pair)
            assert derivation.depth() < 60
            format_derivation(derivation)  # must not raise

    def test_every_suite_fact_explainable(self, suite_cache):
        """Every pair in a real program has a justification."""
        ci = suite_cache.ci("span")
        explainer = Explainer(ci)
        checked = 0
        for output, pairs in ci.solution.items():
            for pair in pairs:
                derivation = explainer.explain(output, pair)
                assert derivation.rule != "(no justification found)", \
                    format_derivation(derivation)
                checked += 1
        assert checked > 100

    def test_unknown_fact_rejected(self):
        program, ci, _ = analyze_both(
            "int g; int main(void) { g = 1; return g; }")
        from repro.memory import direct, global_location, location_path
        bogus = direct(location_path(global_location("ghost")))
        output = next(iter(ci.solution.outputs()))
        with pytest.raises(AnalysisError, match="does not hold"):
            explain(ci, output, bogus)

    def test_cs_result_rejected(self):
        program, ci, cs = analyze_both(
            "int g; int main(void) { g = 1; return g; }")
        output, pair = _some_fact(cs)
        with pytest.raises(AnalysisError, match="context-insensitive"):
            explain(cs, output, pair)

    def test_survival_derivation(self):
        program, ci, _ = analyze_both("""
            int g1, g2;
            int *arr[2];
            int main(void) {
                arr[0] = &g1;
                arr[1] = &g2;
                return *arr[0];
            }
        """)
        second = [n for n in program.functions["main"].nodes
                  if isinstance(n, UpdateNode)][1]
        # The g1 pair survives the (weak) second write.
        g1_pair = next(p for p in ci.pairs(second.ostore)
                       if p.referent.base.name == "g1")
        derivation = explain(ci, second.ostore, g1_pair)
        assert "survives the write" in derivation.rule
