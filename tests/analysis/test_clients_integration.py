"""Clients exercised over the full benchmark suite.

Cross-module invariants: mod/ref closures, def/use walks, and
dead-store detection must hold on every real program, not just the
unit-test snippets.
"""

import pytest

from repro.analysis.clients.deadstore import find_dead_stores
from repro.analysis.clients.defuse import INITIAL, defuse
from repro.analysis.clients.modref import modref
from repro.ir.nodes import CallNode, LookupNode, UpdateNode


class TestModRefOnSuite:
    def test_caller_superset_of_callees(self, suite_cache, suite_name):
        """Transitivity: a procedure's mod/ref set contains every
        callee's."""
        ci = suite_cache.ci(suite_name)
        info = modref(ci)
        for graph in ci.program.functions.values():
            for node in graph.nodes:
                if not isinstance(node, CallNode):
                    continue
                for callee in ci.callgraph.callees(node):
                    assert info.mod_set(graph.name) \
                        >= info.mod_set(callee.name)
                    assert info.ref_set(graph.name) \
                        >= info.ref_set(callee.name)

    def test_direct_ops_included(self, suite_cache, suite_name):
        ci = suite_cache.ci(suite_name)
        info = modref(ci)
        for graph in ci.program.functions.values():
            for node in graph.memory_operations():
                locations = ci.op_locations(node)
                if isinstance(node, LookupNode):
                    assert locations <= info.ref_set(graph.name)
                else:
                    assert locations <= info.mod_set(graph.name)

    def test_main_reaches_everything_called(self, suite_cache,
                                            suite_name):
        """main's summary covers the whole reachable program."""
        ci = suite_cache.ci(suite_name)
        info = modref(ci)
        reachable_mods = set()
        for graph in ci.program.functions.values():
            if ci.callgraph.callers(graph) or graph.name == "main":
                reachable_mods |= info.mod_set(graph.name)
        assert info.mod_set("main") == reachable_mods


class TestDefUseOnSuite:
    @pytest.mark.parametrize("program_name",
                             ["part", "span", "compress", "lex315"])
    def test_every_read_has_a_definition(self, suite_cache,
                                         program_name):
        """Each read observes at least one definition (a write or the
        initial store) for every location it may reference."""
        ci = suite_cache.ci(program_name)
        du = defuse(ci, max_visits=2_000_000)
        for graph in ci.program.functions.values():
            for node in graph.nodes:
                if not isinstance(node, LookupNode):
                    continue
                if not ci.op_locations(node):
                    continue  # null-only dereference
                defs = du.reaching_definitions(node)
                assert defs, f"{graph.name}:{node!r} observes nothing"

    def test_definitions_are_may_aliased(self, suite_cache):
        """Every reported definition can actually write a location the
        read references (no unrelated writes leak in)."""
        from repro.memory.relations import may_alias
        ci = suite_cache.ci("part")
        du = defuse(ci, max_visits=2_000_000)
        for graph in ci.program.functions.values():
            for node in graph.nodes:
                if not isinstance(node, LookupNode):
                    continue
                read_locations = ci.op_locations(node)
                for definition in du.reaching_definitions(node):
                    if definition is INITIAL:
                        continue
                    written = ci.op_locations(definition)
                    assert any(may_alias(w, r) for w in written
                               for r in read_locations)


class TestDeadStoresOnSuite:
    def test_reports_consistent(self, suite_cache, suite_name):
        ci = suite_cache.ci(suite_name)
        report = find_dead_stores(ci)
        assert report.total == sum(
            1 for g in ci.program.functions.values()
            for n in g.nodes if isinstance(n, UpdateNode))
        assert report.live >= 0
        # The suite's programs are real: the overwhelming majority of
        # their writes are observable.
        assert report.live >= report.total * 0.5

    def test_no_unreachable_writes_in_suite(self, suite_cache,
                                            suite_name):
        """Every suite write dereferences a valid pointer somewhere."""
        report = find_dead_stores(suite_cache.ci(suite_name))
        assert report.unreachable == []