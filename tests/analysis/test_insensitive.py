"""The context-insensitive analysis (paper Figure 1)."""

import pytest

import repro
from repro.analysis.insensitive import analyze_insensitive
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Program
from repro.ir.nodes import LookupNode, UpdateNode, ValueTag
from repro.ir.validate import validate_program
from repro.memory import (
    direct,
    function_location,
    global_location,
    heap_location,
    location_path,
    pair,
)
from tests.conftest import analyze_both, find_op, lower, op_base_names, \
    target_names


def build_single(build_body):
    """Build a one-function program; build_body(gb, entry) returns the
    final store and optionally interesting ports."""
    program = Program("t")
    gb = GraphBuilder("main")
    entry = gb.entry([])
    extra = build_body(program, gb, entry)
    program.add_function(gb.graph)
    program.add_root("main")
    validate_program(program)
    return program, extra


class TestLookupUpdate:
    def test_update_then_lookup(self):
        def body(program, gb, entry):
            g = program.register_location(global_location("g"))
            p = program.register_location(global_location("p"))
            store = gb.update(gb.address(location_path(p)),
                              entry.store_out,
                              gb.address(location_path(g)))
            loaded = gb.lookup(gb.address(location_path(p)), store,
                               ValueTag.POINTER)
            gb.ret(None, store)
            return loaded

        program, loaded = build_single(body)
        result = analyze_insensitive(program)
        assert target_names(result, loaded) == {"g"}

    def test_lookup_sees_later_arriving_store_pairs(self):
        """Two-sided join: order of arrival must not matter.  Here the
        store pair transits a merge, arriving after the loc pair."""
        def body(program, gb, entry):
            g = program.register_location(global_location("g"))
            p = program.register_location(global_location("p"))
            store = gb.update(gb.address(location_path(p)),
                              entry.store_out,
                              gb.address(location_path(g)))
            merged = gb.merge([store, entry.store_out],
                              tag=ValueTag.STORE)
            loaded = gb.lookup(gb.address(location_path(p)), merged,
                               ValueTag.POINTER)
            gb.ret(None, merged)
            return loaded

        program, loaded = build_single(body)
        result = analyze_insensitive(program)
        assert target_names(result, loaded) == {"g"}


class TestStrongUpdates:
    def test_single_strong_target_kills(self):
        _, ci, _ = analyze_both("""
            int g1, g2; int *p;
            int main(void) { p = &g1; p = &g2; return *p; }
        """)
        read = [n for n in ci.program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][0]
        assert op_base_names(ci, read) == {"g2"}

    def test_weak_target_accumulates(self):
        _, ci, _ = analyze_both("""
            int g1, g2;
            int *arr[2];
            int main(void) {
                arr[0] = &g1;
                arr[0] = &g2;
                return *arr[1];
            }
        """)
        read = [n for n in ci.program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][0]
        assert op_base_names(ci, read) == {"g1", "g2"}

    def test_multi_referent_update_is_weak(self):
        _, ci, _ = analyze_both("""
            int g1, g2; int *p; int *q;
            int main(int argc, char **argv) {
                p = &g1;
                int **pp = argc ? &p : &q;
                *pp = &g2;   /* may write p or q: must not kill p->g1 */
                return *p;
            }
        """)
        read = [n for n in ci.program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][-1]
        assert op_base_names(ci, read) == {"g1", "g2"}

    def test_update_blocks_until_location_known(self):
        """Store pairs are delayed at an update whose location set is
        empty (dereferencing only null): nothing flows downstream."""
        _, ci, _ = analyze_both("""
            int g; int *p; int *q;
            int main(void) {
                p = &g;
                *q = 5;      /* q is null: blocks the store chain */
                return *p;
            }
        """)
        read = [n for n in ci.program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][-1]
        assert ci.op_locations(read) == set()


class TestInterprocedural:
    def test_call_merges_all_callers(self):
        _, ci, _ = analyze_both("""
            int g1, g2;
            int *id(int *p) { return p; }
            int main(void) {
                int *a = id(&g1);
                int *b = id(&g2);
                return *a + *b;
            }
        """)
        reads = [n for n in ci.program.functions["main"].nodes
                 if isinstance(n, LookupNode) and n.is_indirect]
        for read in reads:
            assert op_base_names(ci, read) == {"g1", "g2"}

    def test_callee_discovered_then_repropagated(self):
        program, ci, _ = analyze_both("""
            int g;
            void sink(int *p) { *p = 1; }
            void (*fp)(int *);
            void install(void) { fp = sink; }
            int main(void) {
                install();
                fp(&g);
                return 0;
            }
        """)
        write = find_op(program, "sink", "write")
        assert op_base_names(ci, write) == {"g"}

    def test_unresolved_callee_recorded(self):
        program, ci, _ = analyze_both("""
            extern void (*mystery_hook)(void);
            int main(void) { mystery_hook(); return 0; }
        """)
        assert len(ci.callgraph.unresolved) == 0  # null fcn: no pairs at all

    def test_counters_populated(self):
        _, ci, _ = analyze_both("int g; int main(void) { g = 1; return g; }")
        assert ci.counters.transfers > 0
        assert ci.counters.meets >= ci.counters.pairs_added > 0

    def test_deterministic(self):
        src = """
            int g1, g2;
            int *id(int *p) { return p; }
            int main(void) { return *id(&g1) + *id(&g2); }
        """
        program = lower(src)
        a = analyze_insensitive(program)
        b = analyze_insensitive(program)
        for output in a.solution.outputs():
            assert a.pairs(output) == b.pairs(output)
        assert a.counters.as_dict() == b.counters.as_dict()


class TestRecursiveLocals:
    def test_recursive_local_weakly_updated(self):
        """Footnote 4: a recursive procedure's address-taken local is
        multi-instance, so successive writes accumulate rather than
        kill (scheme 2)."""
        _, ci, _ = analyze_both("""
            int g1, g2;
            int rec(int n, int **out) {
                int *cell;
                cell = n ? &g1 : &g2;
                *out = cell;
                if (n) return rec(n - 1, &cell);
                return 0;
            }
            int main(void) {
                int *seen;
                rec(3, &seen);
                return *seen;
            }
        """)
        program = ci.program
        read = [n for n in program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][-1]
        locs = op_base_names(ci, read)
        assert {"g1", "g2"} <= locs
