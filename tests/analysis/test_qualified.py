"""Qualified pairs, assumption sets, and the subsumption rule."""

import pytest

from repro.analysis.qualified import (
    AssumptionAntichain,
    EMPTY_ASSUMPTIONS,
    QualifiedPair,
    QualifiedSolution,
)
from repro.ir.builder import GraphBuilder
from repro.ir.nodes import ValueTag
from repro.memory import direct, global_location, location_path


@pytest.fixture
def ports():
    gb = GraphBuilder("f")
    entry = gb.entry([("p", ValueTag.POINTER, None),
                      ("q", ValueTag.POINTER, None)])
    gb.ret(None, entry.store_out)
    return entry.formals[0], entry.formals[1], entry.store_out


@pytest.fixture
def pairs():
    a = direct(location_path(global_location("a")))
    b = direct(location_path(global_location("b")))
    c = direct(location_path(global_location("c")))
    return a, b, c


class TestAntichain:
    def test_first_insert(self):
        chain = AssumptionAntichain()
        assert chain.add(frozenset())
        assert len(chain) == 1

    def test_subsumed_discarded(self, ports, pairs):
        """(p, B) is discarded when (p, A) with A ⊆ B is stored."""
        p, q, _ = ports
        a, b, _ = pairs
        chain = AssumptionAntichain()
        small = frozenset({(p, a)})
        large = frozenset({(p, a), (q, b)})
        assert chain.add(small)
        assert not chain.add(large)
        assert list(chain) == [small]

    def test_weaker_replaces_stronger(self, ports, pairs):
        p, q, _ = ports
        a, b, _ = pairs
        chain = AssumptionAntichain()
        large = frozenset({(p, a), (q, b)})
        small = frozenset({(p, a)})
        assert chain.add(large)
        assert chain.add(small)
        assert list(chain) == [small]

    def test_incomparable_both_kept(self, ports, pairs):
        p, q, _ = ports
        a, b, _ = pairs
        chain = AssumptionAntichain()
        assert chain.add(frozenset({(p, a)}))
        assert chain.add(frozenset({(q, b)}))
        assert len(chain) == 2

    def test_empty_set_subsumes_everything(self, ports, pairs):
        p, _, _ = ports
        a, _, _ = pairs
        chain = AssumptionAntichain()
        assert chain.add(frozenset({(p, a)}))
        assert chain.add(EMPTY_ASSUMPTIONS)
        assert list(chain) == [EMPTY_ASSUMPTIONS]
        assert not chain.add(frozenset({(p, a)}))

    def test_duplicate_rejected(self, ports, pairs):
        p, _, _ = ports
        a, _, _ = pairs
        chain = AssumptionAntichain()
        s = frozenset({(p, a)})
        assert chain.add(s)
        assert not chain.add(s)


class TestQualifiedSolution:
    def test_strip_deduplicates(self, ports, pairs):
        p, q, store = ports
        a, b, _ = pairs
        sol = QualifiedSolution()
        sol.add(store, QualifiedPair(a, frozenset({(p, a)})))
        sol.add(store, QualifiedPair(a, frozenset({(q, b)})))
        stripped = sol.strip()
        assert stripped.pairs(store) == frozenset({a})

    def test_counts(self, ports, pairs):
        p, q, store = ports
        a, b, c = pairs
        sol = QualifiedSolution()
        sol.add(store, QualifiedPair(a, frozenset({(p, a)})))
        sol.add(store, QualifiedPair(a, frozenset({(q, b)})))
        sol.add(store, QualifiedPair(b))
        assert sol.total_plain_pairs() == 2
        assert sol.total_qualified_pairs() == 3
        assert sol.max_assumption_set_size() == 1

    def test_add_applies_subsumption(self, ports, pairs):
        p, q, store = ports
        a, b, _ = pairs
        sol = QualifiedSolution()
        assert sol.add(store, QualifiedPair(a, frozenset({(p, a)})))
        assert not sol.add(
            store, QualifiedPair(a, frozenset({(p, a), (q, b)})))

    def test_assumption_sets_query(self, ports, pairs):
        p, _, store = ports
        a, _, _ = pairs
        sol = QualifiedSolution()
        sol.add(store, QualifiedPair(a, frozenset({(p, a)})))
        assert sol.assumption_sets(store, a) == [frozenset({(p, a)})]
        assert sol.assumption_sets(store, direct(a.referent)) \
            == [frozenset({(p, a)})]

    def test_qualified_pair_equality(self, ports, pairs):
        p, _, _ = ports
        a, _, _ = pairs
        x = QualifiedPair(a, frozenset({(p, a)}))
        y = QualifiedPair(a, frozenset({(p, a)}))
        assert x == y and hash(x) == hash(y)
        assert x != QualifiedPair(a)
