"""Dense bitset fact engine: ids, digests, telemetry, SCC order.

The schedule-equivalence gate already proves all three schedules reach
the same object-level fixpoint; this module pins down the dense
engine's own contracts — content digests stable across schedules (the
bench gate's criterion), the ``extras["dense"]`` telemetry block, the
bitset-backed :class:`PointsToSolution` invariants, and the SCC
condensation's topological soundness.
"""

import pytest

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.scheduling import (
    EXTRAS_KEY,
    _static_callee,
    _successors,
    compute_port_scc_order,
    port_scc_order,
)
from repro.analysis.sensitive import analyze_sensitive
from repro.fuzz.oracle import solution_digest
from repro.ir.nodes import CallNode
from repro.memory.facttable import popcount
from repro.suite.registry import PROGRAM_NAMES, load_program

SCHEDULES = ("batched", "fifo", "scc")


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_solution_digests_identical_across_schedules(name):
    """CI and CS content digests match for fifo × batched × scc."""
    program = load_program(name)
    ci_digests = {}
    cs_digests = {}
    for schedule in SCHEDULES:
        ci = analyze_insensitive(program, schedule=schedule)
        cs = analyze_sensitive(program, ci_result=ci, schedule=schedule)
        ci_digests[schedule] = solution_digest(ci)
        cs_digests[schedule] = solution_digest(cs)
    assert len(set(ci_digests.values())) == 1, ci_digests
    assert len(set(cs_digests.values())) == 1, cs_digests


class TestDenseTelemetry:
    def test_dense_extras_present(self):
        result = analyze_insensitive(load_program("span"))
        dense = result.extras["dense"]
        assert dense["fact_ids"] > 0
        assert dense["bitset_words"] > 0
        assert dense["decode_calls"] >= 0
        assert "scc_count" not in dense  # batched runs unordered

    def test_scc_count_reported_under_scc(self):
        result = analyze_insensitive(load_program("span"),
                                     schedule="scc")
        dense = result.extras["dense"]
        assert dense["scc_count"] >= 1
        _, count = port_scc_order(result.program)
        assert dense["scc_count"] == count


class TestBitsetSolution:
    def test_mask_and_pairs_agree(self):
        result = analyze_insensitive(load_program("span"))
        solution = result.solution
        total = 0
        for output in solution.outputs():
            mask = solution.mask(output)
            pairs = solution.pairs(output)
            assert popcount(mask) == len(pairs)
            total += len(pairs)
        assert solution.total_pairs() == total
        assert solution.bitset_words() > 0

    def test_pairs_view_is_cached_until_growth(self):
        result = analyze_insensitive(load_program("span"))
        solution = result.solution
        output = next(iter(solution.outputs()))
        first = solution.pairs(output)
        assert solution.pairs(output) is first  # cached snapshot
        # Re-adding a known fact neither grows nor invalidates.
        known = next(iter(first))
        assert solution.add(output, known) is False
        assert solution.join_mask(output, solution.mask(output)) == 0
        assert solution.pairs(output) is first


class TestSccOrder:
    def test_every_port_ordered_and_edges_monotone(self):
        program = load_program("allroots")
        order, count = compute_port_scc_order(program)
        assert count >= 1
        callers = {}
        for node in program.all_nodes():
            if isinstance(node, CallNode):
                callee = _static_callee(program, node)
                if callee is not None:
                    callers.setdefault(callee, []).append(node)
        for node in program.all_nodes():
            successors = list(_successors(program, node, callers))
            for port in node.inputs:
                index = order[port]
                assert 0 <= index < count
                # Condensation edges never point backwards: a
                # consumer's SCC sorts with (same SCC) or after its
                # producer's.
                for succ in successors:
                    assert order[succ] >= index

    def test_order_is_deterministic_and_cached(self):
        program = load_program("span")
        first = port_scc_order(program)
        assert port_scc_order(program) is first
        assert program.extras[EXTRAS_KEY] is first
        again = compute_port_scc_order(program)
        assert again == first
