"""The §5.1.2 structural statistics and CS context counts."""

import pytest

from repro.analysis.stats import context_stats, structure_stats
from repro.errors import AnalysisError
from tests.conftest import analyze_both


class TestCallGraphShape:
    def test_caller_counts(self):
        _, ci, _ = analyze_both("""
            int leaf(int x) { return x; }
            int mid(int x) { return leaf(x) + leaf(x + 1); }
            int main(void) { return mid(1) + leaf(2); }
        """)
        stats = structure_stats(ci)
        assert stats.procedures == 3
        # leaf is called from 3 sites, mid from 1.
        assert stats.called_procedures == 2
        assert stats.call_edges == 4
        assert stats.avg_callers == pytest.approx(2.0)
        assert stats.single_caller == 1
        assert stats.single_caller_fraction == pytest.approx(0.5)

    def test_no_calls(self):
        _, ci, _ = analyze_both("int main(void) { return 0; }")
        stats = structure_stats(ci)
        assert stats.called_procedures == 0
        assert stats.avg_callers == 0.0


class TestPointerNesting:
    def test_single_level_pointers(self):
        _, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; return *p; }
        """)
        stats = structure_stats(ci)
        assert stats.value_pairs > 0
        # Pointers to g (a scalar cell) are single-level; the one
        # multi-level value is the address constant &p used by the
        # store itself — p's cell does hold a pointer.
        assert stats.multi_level_pairs == 1

    def test_multi_level_pointers_detected(self):
        _, ci, _ = analyze_both("""
            int g; int *p; int **pp;
            int main(void) { p = &g; pp = &p; return **pp; }
        """)
        stats = structure_stats(ci)
        # The pointer to p is multi-level (p's cell holds a pointer);
        # the pointer to g is not.
        assert stats.multi_level_pairs >= 1
        assert stats.multi_level_pairs < stats.value_pairs

    def test_contexts_counted_per_procedure(self):
        _, _, cs = analyze_both("""
            int g1, g2;
            int *id(int *p) { return p; }
            int main(void) {
                int *a = id(&g1);
                int *b = id(&g2);
                return *a + *b;
            }
        """)
        stats = context_stats(cs)
        # id was entered under (at least) two distinct pointer contexts.
        assert stats.per_procedure["id"] >= 2
        assert stats.per_procedure["main"] == 0  # root: no assumptions
        assert stats.max_contexts >= 2
        assert stats.avg_contexts > 0

    def test_context_stats_requires_cs(self):
        _, ci, _ = analyze_both("int main(void) { return 0; }")
        with pytest.raises(AnalysisError):
            context_stats(ci)

    def test_linked_list_is_multi_level(self):
        _, ci, _ = analyze_both("""
            extern void *malloc(unsigned long n);
            struct node { struct node *next; };
            int main(void) {
                struct node *n = malloc(sizeof(struct node));
                n->next = n;
                return n->next == n;
            }
        """)
        stats = structure_stats(ci)
        assert stats.multi_level_fraction > 0.0
