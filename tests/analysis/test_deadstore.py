"""Dead-store detection."""

import pytest

from repro.analysis.clients.deadstore import find_dead_stores
from repro.ir.nodes import UpdateNode
from tests.conftest import analyze_both


def writes(program, function):
    return [n for n in program.functions[function].nodes
            if isinstance(n, UpdateNode)]


class TestDeadStores:
    def test_overwritten_strong_store_is_dead(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(void) {
                g = 1;
                g = 2;
                return g;
            }
        """)
        report = find_dead_stores(ci)
        first, second = writes(program, "main")
        assert first in report.dead
        assert second not in report.dead
        assert report.total == 2 and report.live == 1

    def test_weak_store_never_dead(self):
        program, ci, _ = analyze_both("""
            int a[4];
            int main(void) {
                a[0] = 1;
                a[0] = 2;
                return a[1];
            }
        """)
        report = find_dead_stores(ci)
        assert report.dead == []

    def test_unread_location_is_dead(self):
        program, ci, _ = analyze_both("""
            int g, h;
            int main(void) { g = 1; h = 2; return h; }
        """)
        report = find_dead_stores(ci)
        (g_write, h_write) = writes(program, "main")
        assert g_write in report.dead
        assert h_write not in report.dead

    def test_cross_procedure_read_keeps_store_live(self):
        program, ci, _ = analyze_both("""
            int g;
            int reader(void) { return g; }
            int main(void) { g = 1; return reader(); }
        """)
        report = find_dead_stores(ci)
        assert report.dead == []

    def test_null_deref_reported_unreachable(self):
        program, ci, _ = analyze_both("""
            int main(void) {
                int *p = 0;
                *p = 1;
                return 0;
            }
        """)
        report = find_dead_stores(ci)
        assert len(report.unreachable) == 1
        assert report.dead == []

    def test_branch_keeps_either_store_live(self):
        program, ci, _ = analyze_both("""
            int g;
            int main(int argc, char **argv) {
                if (argc) g = 1; else g = 2;
                return g;
            }
        """)
        report = find_dead_stores(ci)
        assert report.dead == []

    def test_suite_program_has_no_unreachable_writes(self, suite_cache):
        report = find_dead_stores(suite_cache.ci("span"))
        assert report.unreachable == []
        assert report.total > 0
