"""Decode-free clients: mask-level queries never materialize pairs.

The dense fact engine keeps solutions as bitsets; ``decode_calls`` on
the fact table counts every bitset→object materialization.  The
mod/ref summary construction and dead-store reachability test are
required to stay at the mask level — zero decodes — with objects
produced only when a caller explicitly asks for a set.
"""

import repro
from repro.analysis.clients.deadstore import find_dead_stores
from repro.analysis.clients.modref import modref

from ..conftest import lower

SRC = """
int g, h;
void set(int *p, int v) { *p = v; }
int get(int *p) { return *p; }
int main(void) {
    int *q = &g;
    if (h) q = &h;
    set(q, 1);
    set(&h, 2);
    return get(q);
}
"""


def analyze():
    program = lower(SRC)
    return repro.analyze_insensitive(program)


class TestTargetsMask:
    def test_matches_object_level_locations(self):
        result = analyze()
        solution = result.solution
        table = solution.table
        ops = 0
        for graph in result.program.functions.values():
            for node in graph.memory_operations():
                mask = solution.op_targets_mask(node)
                decoded = set(table.decode_paths(mask))
                assert decoded == set(result.op_locations(node))
                ops += 1
        assert ops > 0

    def test_targets_mask_only_direct_pairs(self):
        result = analyze()
        solution = result.solution
        table = solution.table
        for graph in result.program.functions.values():
            for output in graph.outputs():
                mask = solution.targets_mask(output)
                decoded = set(table.decode_paths(mask))
                expected = {p.referent
                            for p in solution.pairs(output)
                            if p.is_direct}
                assert decoded == expected


class TestDecodeFreeClients:
    def test_modref_summaries_decode_nothing(self):
        result = analyze()
        table = result.solution.table
        before = table.decode_calls
        info = modref(result)
        for name in result.program.functions:
            info.ref_mask(name)
            info.mod_mask(name)
        assert table.decode_calls == before

    def test_modref_sets_decode_on_demand(self):
        result = analyze()
        table = result.solution.table
        info = modref(result)
        before = table.decode_calls
        mods = info.mod_set("set")
        assert table.decode_calls > before
        assert {p.base.name for p in mods} == {"g", "h"}
        # Cached: a second ask decodes nothing new.
        again = table.decode_calls
        info.mod_set("set")
        assert table.decode_calls == again

    def test_deadstore_unreachable_test_is_mask_level(self):
        result = analyze()
        table = result.solution.table
        report = find_dead_stores(result)
        assert report.total >= 1
        # The def/use walk decodes (it needs path objects); assert the
        # report agrees with the object-level unreachable definition.
        solution = result.solution
        for graph in result.program.functions.values():
            for node in graph.memory_operations():
                if node in report.unreachable:
                    assert not solution.op_targets_mask(node)
