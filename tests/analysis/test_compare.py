"""Spurious-pair computation and the §4.3 comparison report."""

import pytest

from repro.analysis.compare import (
    compare_results,
    spurious_breakdown,
    spurious_pairs,
)
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.errors import AnalysisError
from repro.memory import direct, global_location, location_path
from repro.suite.adversarial import load_cs_wins
from tests.conftest import analyze_both, lower


class TestSpuriousPairs:
    def test_none_when_equal(self):
        _, ci, cs = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; return *p; }
        """)
        assert spurious_pairs(ci, cs) == {}

    def test_detected_on_adversarial(self):
        program = load_cs_wins(4)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        by_output = spurious_pairs(ci, cs)
        assert by_output
        total = sum(len(p) for p in by_output.values())
        report = compare_results(ci, cs)
        assert report.spurious_pairs == total
        assert report.percent_spurious > 0
        assert not report.indirect_ops_identical
        assert report.indirect_diffs

    def test_breakdown_categories(self):
        program = load_cs_wins(3)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        breakdown = spurious_breakdown(ci, cs)
        assert breakdown
        for (path_cat, ref_cat), count in breakdown.items():
            assert path_cat in ("offset", "local", "global", "heap")
            assert ref_cat in ("function", "local", "global", "heap")
            assert count > 0


class TestReport:
    def test_census_totals_consistent(self):
        program = load_cs_wins(4)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        report = compare_results(ci, cs)
        assert report.total_insensitive == report.ci_census.total
        assert report.total_sensitive == report.cs_census.total
        assert report.total_insensitive - report.total_sensitive \
            == report.spurious_pairs

    def test_diff_extras_are_ci_only(self):
        program = load_cs_wins(2)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        report = compare_results(ci, cs)
        for diff in report.indirect_diffs:
            assert diff.extra == diff.ci_locations - diff.cs_locations
            assert diff.cs_locations < diff.ci_locations


class TestGuards:
    def test_flavor_mismatch_rejected(self):
        program = lower("int main(void) { return 0; }")
        ci = analyze_insensitive(program)
        with pytest.raises(AnalysisError, match="context-sensitive"):
            compare_results(ci, ci)

    def test_program_mismatch_rejected(self):
        a = lower("int main(void) { return 0; }")
        b = lower("int main(void) { return 1; }")
        ci_a = analyze_insensitive(a)
        cs_b = analyze_sensitive(b)
        with pytest.raises(AnalysisError, match="different programs"):
            compare_results(ci_a, cs_b)

    def test_unsound_cs_detected(self):
        """A CS result containing pairs CI lacks is a bug; compare
        refuses to bless it."""
        program = lower("int g; int main(void) { g = 1; return 0; }")
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        rogue = direct(location_path(global_location("rogue")))
        some_output = next(iter(cs.solution.outputs()))
        cs.solution.add(some_output, rogue)
        with pytest.raises(AnalysisError, match="not a subset"):
            compare_results(ci, cs)
