"""Origin-independence of summary keys: line-shifting edits are free.

Before summaries v2, body hashes folded in each node's ``file:line``
origin and heap-site labels kept their absolute allocation line, so
inserting one line near the top of a file re-keyed (and re-solved)
every function below the edit — the worst case for exactly the edits
people make most.  v2 hashes bodies modulo absolute coordinates and
decodes heap cells through coordinate-stripped structural keys, so:

* a pure line shift (blank/comment line) re-solves *nothing*;
* a real one-line edit re-solves only the edited SCC, even though the
  edit shifts every function below it — including a ``malloc`` leaf
  whose heap label embeds its (now different) allocation line.
"""

from __future__ import annotations

from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.analysis.incremental import analyze_incremental
from repro.fuzz.oracle import solution_digest

import repro

from ..conftest import lower

#: ``main`` sits at the *top* of the file so any edit inside it shifts
#: the line numbers of every function below — the callee-closed keys
#: of ``alloc_leaf``/``global_leaf`` must not notice.  ``alloc_leaf``
#: mallocs, planting an absolute line number inside a location label.
TOP_MAIN = """
int ga;
int main(void) {
  int *a = alloc_leaf();
  int *b = global_leaf();
  *a = 1;
  *b = 2;
  return 0;
}
int *alloc_leaf(void) {
  int *p = (int *)malloc(sizeof(int));
  return p;
}
int *global_leaf(void) { return &ga; }
"""

#: A line-shift-only edit: every token below moves down one line.
SHIFTED = TOP_MAIN.replace("int ga;", "int ga;\n/* a comment */")
assert SHIFTED != TOP_MAIN

#: A real edit *inside main only*: the second leaf call disappears,
#: which still shifts nothing (same line count) — so pair it with the
#: comment insertion to make the edit both real and line-shifting.
EDITED = SHIFTED.replace("*a = 1;", "*a = 3;")
assert EDITED != SHIFTED


def _digests(results):
    return {flavor: solution_digest(result)
            for flavor, result in results.items()}


def _dense(results, flavor="insensitive"):
    return results[flavor].extras["dense"]


def _whole_program_digests(program):
    ci = repro.analyze_insensitive(program)
    cs = repro.analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    return {"insensitive": solution_digest(ci),
            "sensitive": solution_digest(cs),
            "flowinsensitive": solution_digest(fi)}


def test_inserted_line_replays_everything(tmp_path):
    """A comment inserted above every function is a no-op for the
    store: all SCCs replay, zero re-solves — and the replayed solution
    is digest-identical to a fresh whole-program solve of the shifted
    source (the shift *does* rename heap locations, so replay must
    decode stored summaries against the new labels)."""
    cache = str(tmp_path)
    cold = analyze_incremental(lower(TOP_MAIN, name="ins"), cache=cache)
    total = _dense(cold)["summary_scc_total"]
    assert total == 3  # main, alloc_leaf, global_leaf

    shifted_program = lower(SHIFTED, name="ins")
    baseline = _whole_program_digests(shifted_program)
    shifted = analyze_incremental(shifted_program, cache=cache)
    assert _digests(shifted) == baseline
    for flavor in shifted:
        assert _dense(shifted, flavor)["sccs_resolved"] == 0, flavor
        assert _dense(shifted, flavor)["summaries_reused"] == \
            _dense(shifted, flavor)["summary_scc_total"], flavor


def test_one_line_edit_resolves_only_the_edited_scc(tmp_path):
    """An edit inside ``main`` that also shifts both leaves' line
    numbers re-solves main's SCC alone; the malloc leaf's summary —
    heap label line and all — replays from the store."""
    cache = str(tmp_path)
    analyze_incremental(lower(TOP_MAIN, name="ins"), cache=cache)

    edited_program = lower(EDITED, name="ins")
    baseline = _whole_program_digests(edited_program)
    partial = analyze_incremental(edited_program, cache=cache)
    assert _digests(partial) == baseline

    dense = _dense(partial)
    assert dense["sccs_resolved"] == 1  # main only
    assert dense["summaries_reused"] == dense["summary_scc_total"] - 1

    # And the republished entries replay cleanly on the next run.
    again = analyze_incremental(lower(EDITED, name="ins"), cache=cache)
    assert _digests(again) == baseline
    assert _dense(again)["sccs_resolved"] == 0


def test_heap_label_shift_does_not_fault_the_leaf(tmp_path):
    """Isolate the heap-label case: shift *only* the malloc leaf (edit
    nothing), then shift it while editing ``main`` — in both runs the
    leaf's stored summary must decode against the new heap label."""
    cache = str(tmp_path)
    analyze_incremental(lower(TOP_MAIN, name="heap"), cache=cache)

    shifted_leaf = TOP_MAIN.replace("int *alloc_leaf(void) {",
                                    "/* shifted */\nint *alloc_leaf(void) {")
    moved_program = lower(shifted_leaf, name="heap")
    moved = analyze_incremental(moved_program, cache=cache)
    assert _digests(moved) == _whole_program_digests(moved_program)
    assert _dense(moved)["sccs_resolved"] == 0
