"""The statistics module: every figure's metric on known programs."""

import pytest

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.stats import (
    IndirectOpStats,
    breakdown_percentages,
    indirect_op_stats,
    indirect_operations,
    pair_breakdown,
    pair_census,
    program_sizes,
    pruning_coverage,
)
from repro.errors import AnalysisError
from tests.conftest import analyze_both, lower


class TestProgramSizes:
    def test_counts(self):
        program = lower("int g;\nint main(void) { g = 1; return g; }\n",
                        name="tiny.c")
        sizes = program_sizes(program)
        assert sizes.name == "tiny.c"
        assert sizes.source_lines == 2
        assert sizes.vdg_nodes == program.node_count()
        assert sizes.alias_related_outputs > 0

    def test_alias_related_excludes_scalars(self):
        program = lower("int main(void) { int a = 1; return a + 2; }")
        sizes = program_sizes(program)
        graph = program.functions["main"]
        scalars = sum(1 for port in graph.outputs()
                      if not port.alias_related)
        assert scalars > 0
        assert sizes.alias_related_outputs + scalars \
            == sum(1 for _ in graph.outputs())


class TestPairCensus:
    def test_buckets(self):
        _, ci, _ = analyze_both("""
            int g; int *p;
            int f(int x) { return x; }
            int main(void) {
                int (*fp)(int) = f;
                p = &g;
                return fp(*p);
            }
        """)
        census = pair_census(ci)
        assert census.pointer > 0
        assert census.function > 0
        assert census.store > 0
        assert census.other == 0  # no pairs on scalar outputs, ever
        assert census.total == (census.pointer + census.function
                                + census.aggregate + census.store)

    def test_aggregate_bucket(self):
        _, ci, _ = analyze_both("""
            int g;
            struct box { int *p; };
            struct box make(void) { struct box b; b.p = &g; return b; }
            int main(void) { struct box v = make(); return *v.p; }
        """)
        assert pair_census(ci).aggregate > 0


class TestIndirectOpStats:
    def test_histogram(self):
        _, ci, _ = analyze_both("""
            int g1, g2; int *p; int *q;
            int main(int argc, char **argv) {
                p = argc ? &g1 : &g2;
                q = &g1;
                *p = 1;   /* 2 locations */
                *q = 2;   /* 1 location */
                return 0;
            }
        """)
        stats = indirect_op_stats(ci, "write")
        assert stats.total == 2
        assert stats.one == 1 and stats.two == 1
        assert stats.max_locations == 2
        assert stats.avg == pytest.approx(1.5)

    def test_zero_location_op(self):
        """The paper's backprop row: a null-only dereference counts in
        the total but in no histogram column, dragging avg below 1."""
        _, ci, _ = analyze_both("""
            int main(void) { int *p = 0; return *p; }
        """)
        stats = indirect_op_stats(ci, "read")
        assert stats.total == 1 and stats.zero == 1
        assert stats.avg == 0.0

    def test_bad_kind_rejected(self):
        _, ci, _ = analyze_both("int main(void) { return 0; }")
        with pytest.raises(AnalysisError):
            indirect_op_stats(ci, "modify")

    def test_indirect_operations_filter(self):
        program, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; *p = 1; return *p; }
        """)
        all_ops = list(indirect_operations(program))
        reads = list(indirect_operations(program, "read"))
        writes = list(indirect_operations(program, "write"))
        assert len(all_ops) == len(reads) + len(writes)
        assert len(reads) == 1 and len(writes) == 1


class TestBreakdown:
    def test_categories_cover_pairs(self):
        _, ci, _ = analyze_both("""
            void *malloc(unsigned long n);
            int g; int *p;
            int main(void) {
                int *h = malloc(4);
                p = &g;
                return *p + *h;
            }
        """)
        breakdown = pair_breakdown(ci)
        assert sum(breakdown.values()) == ci.solution.total_pairs()
        assert any(key[1] == "heap" for key in breakdown)
        assert any(key[1] == "global" for key in breakdown)

    def test_percentages_sum_to_100(self):
        _, ci, _ = analyze_both("""
            int g; int *p;
            int main(void) { p = &g; return *p; }
        """)
        pct = breakdown_percentages(pair_breakdown(ci))
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_empty_breakdown(self):
        assert breakdown_percentages({}) == {}


class TestPruningCoverage:
    def test_single_location_counted(self):
        _, ci, _ = analyze_both("""
            int g1, g2; int *single; int *multi;
            int main(int argc, char **argv) {
                single = &g1;
                multi = argc ? &g1 : &g2;
                *single = 1;
                *multi = 2;
                return 0;
            }
        """)
        coverage = pruning_coverage(ci)
        assert coverage.indirect_total == 2
        assert coverage.single_location == 1
        assert coverage.single_location_fraction == pytest.approx(0.5)

    def test_scalar_moves_need_no_assumptions(self):
        """Only ops moving pointer/function values count against the
        9%/7% figures; scalar traffic is free."""
        _, ci, _ = analyze_both("""
            int g1, g2; int *multi;
            int main(int argc, char **argv) {
                multi = argc ? &g1 : &g2;
                *multi = 7;        /* scalar write */
                return *multi;     /* scalar read */
            }
        """)
        coverage = pruning_coverage(ci)
        assert coverage.reads_needing_assumptions == 0
        assert coverage.writes_needing_assumptions == 0

    def test_pointer_moves_do_need_assumptions(self):
        _, ci, _ = analyze_both("""
            int g1, g2; int *a; int *b; int **multi;
            int main(int argc, char **argv) {
                multi = argc ? &a : &b;
                *multi = argc ? &g1 : &g2;  /* pointer-valued write */
                return **multi;             /* pointer-valued read */
            }
        """)
        coverage = pruning_coverage(ci)
        assert coverage.writes_needing_assumptions == 1
        assert coverage.reads_needing_assumptions >= 1
