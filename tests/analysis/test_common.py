"""Shared analysis infrastructure."""

import pytest

from repro.analysis.common import (
    CallGraph,
    Counters,
    PointsToSolution,
    Worklist,
    resolve_function_value,
)
from repro.errors import AnalysisError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import FunctionGraph, Program
from repro.ir.nodes import ValueTag
from repro.memory import (
    EMPTY_OFFSET,
    FieldOp,
    direct,
    function_location,
    global_location,
    location_path,
    make_path,
    pair,
)


@pytest.fixture
def solution():
    return PointsToSolution()


@pytest.fixture
def output():
    gb = GraphBuilder("f")
    entry = gb.entry([("p", ValueTag.POINTER, None)])
    gb.ret(None, entry.store_out)
    return entry.formals[0]


class TestPointsToSolution:
    def test_add_deduplicates(self, solution, output):
        g = direct(location_path(global_location("g")))
        assert solution.add(output, g)
        assert not solution.add(output, g)
        assert solution.total_pairs() == 1

    def test_pairs_returns_frozen_copy(self, solution, output):
        g = direct(location_path(global_location("g")))
        solution.add(output, g)
        frozen = solution.pairs(output)
        assert isinstance(frozen, frozenset)
        solution.add(output, direct(location_path(global_location("h"))))
        assert len(frozen) == 1  # earlier snapshot unchanged

    def test_targets_filters_by_offset(self, solution, output):
        g = location_path(global_location("g"))
        h = location_path(global_location("h"))
        f = FieldOp("S", "x")
        solution.add(output, direct(g))
        solution.add(output, pair(make_path(None, [f]), h))
        assert solution.targets(output) == {g}
        assert solution.targets(output, make_path(None, [f])) == {h}

    def test_op_locations_requires_memory_op(self, solution, output):
        with pytest.raises(AnalysisError):
            solution.op_locations(output.node)

    def test_empty_queries(self, solution, output):
        assert solution.pairs(output) == frozenset()
        assert solution.targets(output) == set()
        assert solution.total_pairs() == 0


class TestCallGraph:
    def test_add_edge_idempotent(self):
        cg = CallGraph()
        graph = FunctionGraph("f")
        gb = GraphBuilder("main")
        entry = gb.entry([])
        fcn = gb.address(location_path(function_location("f")),
                         ValueTag.FUNCTION)
        out, store = gb.call(fcn, [], entry.store_out)
        gb.ret(None, store)
        call = out.node
        assert cg.add_edge(call, graph)
        assert not cg.add_edge(call, graph)
        assert cg.edge_count() == 1
        assert cg.callees(call) == {graph}
        assert cg.callers(graph) == {call}

    def test_unknown_lookups_empty(self):
        cg = CallGraph()
        graph = FunctionGraph("f")
        assert cg.callers(graph) == set()


class TestWorklist:
    def test_fifo_order(self):
        wl = Worklist()
        wl.push("a", 1)
        wl.push("b", 2)
        assert wl.pop() == ("a", 1)
        assert wl.pop() == ("b", 2)
        assert not wl

    def test_len(self):
        wl = Worklist()
        assert len(wl) == 0
        wl.push("a", 1)
        assert len(wl) == 1


class TestResolveFunctionValue:
    def test_resolves_defined_function(self):
        program = Program("p")
        gb = GraphBuilder("f")
        entry = gb.entry([])
        gb.ret(None, entry.store_out)
        loc = function_location("f")
        program.add_function(gb.finish(), loc)
        assert resolve_function_value(
            program, location_path(loc)).name == "f"

    def test_rejects_data_location(self):
        program = Program("p")
        g = location_path(global_location("g"))
        assert resolve_function_value(program, g) is None

    def test_rejects_path_with_ops(self):
        program = Program("p")
        loc = function_location("f")
        path = location_path(loc).extend(FieldOp("S", "x"))
        assert resolve_function_value(program, path) is None

    def test_unknown_function_location(self):
        program = Program("p")
        loc = function_location("ghost")
        assert resolve_function_value(program, location_path(loc)) is None


class TestCounters:
    def test_as_dict(self):
        c = Counters(transfers=1, meets=2, pairs_added=3)
        assert c.as_dict() == {"transfers": 1, "meets": 2,
                               "pairs_added": 3}
