"""The independent fixpoint verifier."""

import pytest

from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.analysis.verify import (
    assert_fixpoint,
    assert_qualified_fixpoint,
    verify_qualified,
    verify_solution,
)
from repro.fuzz.mutations import cs_survive_dom
from repro.memory import direct, global_location, location_path
from repro.memory.packedbits import PackedBits
from tests.conftest import analyze_both, lower


SRC = """
extern void *malloc(unsigned long n);
int g1, g2;
struct node { int *p; struct node *next; };
struct node *head;
void push(int *value) {
    struct node *n = malloc(sizeof(struct node));
    n->p = value;
    n->next = head;
    head = n;
}
int main(int argc, char **argv) {
    push(argc ? &g1 : &g2);
    push(&g1);
    struct node *walk;
    int total = 0;
    for (walk = head; walk; walk = walk->next)
        total += *walk->p;
    return total;
}
"""


class TestVerifier:
    def test_ci_solution_is_fixpoint(self):
        _, ci, _ = analyze_both(SRC)
        assert verify_solution(ci) == []

    def test_cs_stripped_solution_is_fixpoint(self):
        _, _, cs = analyze_both(SRC)
        assert verify_solution(cs) == []

    def test_flow_insensitive_solution_passes(self):
        program = lower(SRC)
        fi = analyze_flowinsensitive(program)
        assert verify_solution(fi) == []

    def test_suite_programs_are_fixpoints(self, suite_cache, suite_name):
        assert_fixpoint(suite_cache.ci(suite_name))
        assert_fixpoint(suite_cache.cs(suite_name))

    def test_detects_removed_pair(self):
        """Deleting any pair from a solution must be reported."""
        program, ci, _ = analyze_both(SRC)
        # Remove one pair from some populated output.
        for output in list(ci.solution.outputs()):
            bits = ci.solution._packed[output].to_mask()
            if bits and output.node.kind != "entry":
                ci.solution._packed[output] = PackedBits(bits & (bits - 1))
                ci.solution._decoded.pop(output, None)
                break
        violations = verify_solution(ci)
        assert violations
        assert any("misses" in str(v) for v in violations)

    def test_detects_missing_call_edge(self):
        program, ci, _ = analyze_both("""
            int g;
            void set(void) { g = 1; }
            int main(void) { set(); return g; }
        """)
        call = next(n for g in ci.program.functions.values()
                    for n in g.nodes if n.kind == "call")
        ci.callgraph._callees[call] = set()
        violations = verify_solution(ci)
        assert any(v.reason == "undiscovered call edge"
                   for v in violations)

    def test_assert_fixpoint_raises_with_listing(self):
        program, ci, _ = analyze_both("int g; int main(void) "
                                      "{ g = 1; return g; }")
        ci.solution._packed = {k: PackedBits(0)
                               for k in ci.solution._packed}
        ci.solution._decoded.clear()
        with pytest.raises(AssertionError, match="fixpoint violations"):
            assert_fixpoint(ci)


class TestQualifiedVerifier:
    """The qualified-pair (context-sensitive) fixpoint checker."""

    def test_cs_qualified_solution_is_fixpoint(self):
        _, _, cs = analyze_both(SRC)
        assert verify_qualified(cs) == []

    def test_unoptimized_cs_also_passes(self):
        program = lower(SRC)
        cs = analyze_sensitive(program, optimize=False)
        assert verify_qualified(cs) == []

    def test_requires_live_qualified_solution(self):
        _, ci, _ = analyze_both(SRC)
        with pytest.raises(ValueError, match="qualified"):
            verify_qualified(ci)

    def test_catches_broken_survive_rule(self):
        """A CS transfer function that treats may-alias ``dom`` as
        must-overwrite drops qualified store pairs; the independent
        re-derivation must notice the missing facts."""
        with cs_survive_dom():
            program = lower(SRC)
            ci = analyze_insensitive(program)
            cs = analyze_sensitive(program, ci_result=ci)
            violations = verify_qualified(cs)
        assert violations
        assert any("update" in v.reason for v in violations)

    def test_assert_qualified_fixpoint_raises(self):
        with cs_survive_dom():
            program = lower(SRC)
            cs = analyze_sensitive(program)
            with pytest.raises(AssertionError,
                               match="qualified fixpoint violations"):
                assert_qualified_fixpoint(cs)

    def test_suite_programs_pass(self, suite_cache, suite_name):
        assert_qualified_fixpoint(suite_cache.cs(suite_name))
