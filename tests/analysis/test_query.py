"""Context-specific queries (using the qualified information directly)."""

import pytest

from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.query import (
    op_locations_at_call,
    pairs_under,
    project_at_call,
)
from repro.errors import AnalysisError
from repro.ir.nodes import CallNode, UpdateNode
from repro.memory.pairs import direct
from tests.conftest import analyze_both


SRC = """
int g1, g2;
int *id(int *p) { return p; }
int main(void) {
    int *a = id(&g1);
    int *b = id(&g2);
    *a = 1;
    *b = 2;
    return 0;
}
"""


@pytest.fixture(scope="module")
def setup():
    program, ci, cs = analyze_both(SRC)
    id_graph = program.functions["id"]
    calls = sorted((n for n in program.functions["main"].nodes
                    if isinstance(n, CallNode)), key=lambda n: n.uid)
    return program, cs, id_graph, calls


class TestPairsUnder:
    def test_empty_context_gives_unconditional_only(self, setup):
        program, cs, id_graph, calls = setup
        formal = id_graph.formals[0]
        assert pairs_under(cs, formal, []) == set()

    def test_matching_context_reveals_pair(self, setup):
        program, cs, id_graph, calls = setup
        formal = id_graph.formals[0]
        g1 = next(loc for loc in program.locations if loc.name == "g1")
        from repro.memory.access import location_path
        fact = direct(location_path(g1))
        held = pairs_under(cs, formal, [(formal, fact)])
        assert held == {fact}

    def test_requires_cs_result(self, setup):
        program, cs, id_graph, calls = setup
        ci = analyze_insensitive(program)
        with pytest.raises(AnalysisError, match="context-sensitive"):
            pairs_under(ci, id_graph.formals[0], [])


class TestProjectAtCall:
    def test_formal_projected_per_site(self, setup):
        program, cs, id_graph, calls = setup
        formal = id_graph.formals[0]
        first = {p.referent.base.name
                 for p in project_at_call(cs, formal, calls[0])}
        second = {p.referent.base.name
                  for p in project_at_call(cs, formal, calls[1])}
        assert first == {"g1"}
        assert second == {"g2"}

    def test_stripped_is_union_over_sites(self, setup):
        program, cs, id_graph, calls = setup
        formal = id_graph.formals[0]
        union = set()
        for call in calls:
            union |= project_at_call(cs, formal, call)
        assert union == set(cs.pairs(formal))

    def test_wrong_call_rejected(self, setup):
        program, cs, id_graph, calls = setup
        main_graph = program.functions["main"]
        with pytest.raises(AnalysisError, match="does not invoke"):
            # an output of main projected "at" a call into id
            project_at_call(cs, main_graph.store_formal, calls[0])


class TestOpLocationsAtCall:
    def test_per_site_deref_view(self):
        program, ci, cs = analyze_both("""
            int g1, g2;
            void poke(int *p) { *p = 9; }
            int main(void) {
                poke(&g1);
                poke(&g2);
                return 0;
            }
        """)
        poke = program.functions["poke"]
        write = next(n for n in poke.nodes if isinstance(n, UpdateNode))
        calls = sorted((n for n in program.functions["main"].nodes
                        if isinstance(n, CallNode)), key=lambda n: n.uid)
        # Stripped (Figure 6) view: both globals.
        assert {p.base.name for p in cs.op_locations(write)} \
            == {"g1", "g2"}
        # Per-call-site view: each site sees only its own target.
        at_first = op_locations_at_call(cs, write, calls[0])
        at_second = op_locations_at_call(cs, write, calls[1])
        assert {p.base.name for p in at_first} == {"g1"}
        assert {p.base.name for p in at_second} == {"g2"}
