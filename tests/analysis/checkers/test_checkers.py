"""Unit tests: each checker on small crafted programs.

Every program here lowers under the hazard model (``<null>`` /
``<uninit>`` summary cells); without it the null/uninit checkers have
nothing to see and stay silent, which the last test pins down.
"""

import repro
from repro.analysis.checkers import run_checkers

from ...conftest import lower


def check(source, names=None, flavor="insensitive", **options):
    program = lower(source, hazard_model=True, **options)
    ci = repro.analyze_insensitive(program)
    if flavor == "insensitive":
        result = ci
    elif flavor == "sensitive":
        result = repro.analyze_sensitive(program, ci_result=ci)
    else:
        result = repro.analyze_flowinsensitive(program)
    return run_checkers(result, names)


class TestNullDeref:
    def test_must_null_is_error(self):
        findings = check("""
int main(void) { int *q = 0; *q = 2; return 0; }
""", names=["nullderef"])
        assert len(findings) == 1
        f = findings[0]
        assert f.severity == "error"
        assert "is null" in f.message
        assert f.path == "<null>"

    def test_may_null_is_warning(self):
        findings = check("""
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    return 0;
}
""", names=["nullderef"])
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "may be null" in findings[0].message

    def test_clean_pointer_silent(self):
        findings = check("""
int g;
int main(void) { int *p = &g; *p = 1; return *p; }
""", names=["nullderef"])
        assert findings == []

    def test_null_stored_through_memory(self):
        # The null constant travels through a cell, not just SSA: the
        # lowering must coerce stored nulls into <null> pairs too.
        findings = check("""
int g;
int main(void) {
    int *p;
    int **h = &p;
    *h = 0;
    return *p;
}
""", names=["nullderef"])
        assert any("null" in f.message for f in findings)


class TestUninit:
    def test_deref_of_uninit_pointer(self):
        findings = check("""
int main(void) { int *p; *p = 1; return 0; }
""", names=["uninit"])
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "uninitialized" in findings[0].message

    def test_read_of_uninit_pointer_cell(self):
        findings = check("""
int main(void) {
    int *q;
    int **h = &q;
    int *r = *h;
    return *r;
}
""", names=["uninit"])
        # Both arms: the lookup of q's cell reads an uninitialized
        # pointer, and the dereference of r goes through it.
        assert any(f.message == "reads a pointer that may be "
                                "uninitialized" for f in findings)
        assert any("indirect read through a pointer" in f.message
                   for f in findings)

    def test_initialized_pointer_silent(self):
        findings = check("""
int g;
int main(void) { int *p = &g; return *p; }
""", names=["uninit"])
        assert findings == []

    def test_strong_update_kills_marker(self):
        # Initialization through a must-alias strongly updates the
        # cell, killing the <uninit> seed before the read.
        findings = check("""
int g;
int main(void) {
    int *q;
    int **h = &q;
    *h = &g;
    int *r = *h;
    return *r;
}
""", names=["uninit"])
        assert findings == []


class TestStackRef:
    def test_escape_through_global(self):
        findings = check("""
int *gp;
void leak(void) { int x; gp = &x; }
int main(void) { leak(); return 0; }
""", names=["stackref"])
        assert len(findings) >= 1
        f = findings[0]
        assert f.function == "main"
        assert "dead frame" in f.message
        assert "leak" in f.message

    def test_escape_through_return(self):
        findings = check("""
int *mk(void) { int y; return &y; }
int main(void) { int *p = mk(); return 0; }
""", names=["stackref"])
        assert any("return a pointer into the dead frame" in f.message
                   for f in findings)

    def test_no_escape_silent(self):
        findings = check("""
int g;
int *mk(void) { return &g; }
int main(void) { int *p = mk(); return *p; }
""", names=["stackref"])
        assert findings == []


class TestWildCall:
    def test_null_function_pointer(self):
        findings = check("""
int main(void) {
    int (*fp)(int) = 0;
    return fp(1);
}
""", names=["wildcall"])
        assert len(findings) >= 1
        assert findings[0].severity == "error"

    def test_uninit_function_pointer(self):
        findings = check("""
int main(void) {
    int (*fp)(int);
    return fp(1);
}
""", names=["wildcall"])
        assert len(findings) >= 1

    def test_valid_indirect_call_silent(self):
        findings = check("""
int f(int a) { return a; }
int main(void) {
    int (*fp)(int) = f;
    return fp(1);
}
""", names=["wildcall"])
        assert findings == []


class TestFlavors:
    SRC = """
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    return 0;
}
"""

    def test_ci_and_cs_agree_here(self):
        ci = check(self.SRC, flavor="insensitive")
        cs = check(self.SRC, flavor="sensitive")
        assert [f.key()[:1] + f.key()[2:] for f in ci] \
            == [f.key()[:1] + f.key()[2:] for f in cs]  # flavor differs

    def test_without_hazard_model_null_checkers_silent(self):
        program = lower(self.SRC)  # default lowering: no hazard cells
        result = repro.analyze_insensitive(program)
        assert run_checkers(result, ["nullderef", "uninit"]) == []
