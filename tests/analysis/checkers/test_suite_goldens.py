"""Golden checker counts over the benchmark suite, and digest
stability across schedules and job counts.

The counts are the reproduction's checker-level headline: CI and CS
agree everywhere except ``loader``/``part`` (where context sensitivity
prunes spurious ``uninit`` reports), and flow-insensitivity pays on
``anagram``/``yacr2`` (initialization order stops mattering, so dead
``uninit`` markers survive).  The ``deadstore`` checker (PR 10) reports
identically under all three flavors on this suite — the dead writes it
finds are dead for aliasing reasons context sensitivity cannot change.
"""

import pytest

from repro.analysis.checkers import count_by_checker, findings_digest
from repro.runner import run_check_report
from repro.suite.registry import PROGRAM_NAMES

FLAVORS = ("insensitive", "sensitive", "flowinsensitive")

#: name -> flavor -> {checker: count} (zero counts omitted).
GOLDEN = {
    "allroots": {"insensitive": {}, "sensitive": {},
                 "flowinsensitive": {}},
    "anagram": {"insensitive": {"nullderef": 16},
                "sensitive": {"nullderef": 16},
                "flowinsensitive": {"nullderef": 16, "uninit": 3}},
    "assembler": {"insensitive": {"nullderef": 33},
                  "sensitive": {"nullderef": 33},
                  "flowinsensitive": {"nullderef": 33}},
    "backprop": {"insensitive": {}, "sensitive": {},
                 "flowinsensitive": {}},
    "bc": {"insensitive": {"nullderef": 16},
           "sensitive": {"nullderef": 16},
           "flowinsensitive": {"nullderef": 16}},
    "compiler": {"insensitive": {}, "sensitive": {},
                 "flowinsensitive": {}},
    "compress": {"insensitive": {}, "sensitive": {},
                 "flowinsensitive": {}},
    "lex315": {"insensitive": {"deadstore": 3},
               "sensitive": {"deadstore": 3},
               "flowinsensitive": {"deadstore": 3}},
    "loader": {"insensitive": {"deadstore": 1, "nullderef": 19,
                               "uninit": 5},
               "sensitive": {"deadstore": 1, "nullderef": 19,
                             "uninit": 1},
               "flowinsensitive": {"deadstore": 1, "nullderef": 19,
                                   "uninit": 5}},
    "part": {"insensitive": {"deadstore": 1, "nullderef": 13,
                             "uninit": 28},
             "sensitive": {"deadstore": 1, "nullderef": 13,
                           "uninit": 3},
             "flowinsensitive": {"deadstore": 1, "nullderef": 13,
                                 "uninit": 28}},
    "simulator": {"insensitive": {"deadstore": 2},
                  "sensitive": {"deadstore": 2},
                  "flowinsensitive": {"deadstore": 2}},
    "span": {"insensitive": {"nullderef": 6},
             "sensitive": {"nullderef": 6},
             "flowinsensitive": {"nullderef": 6}},
    "yacr2": {"insensitive": {"nullderef": 3},
              "sensitive": {"nullderef": 3},
              "flowinsensitive": {"nullderef": 3, "uninit": 9}},
}


@pytest.fixture(scope="module")
def suite_check():
    report = run_check_report(flavors=FLAVORS)
    assert report.ok, report.errors
    return report


class TestGoldenCounts:
    def test_every_program_covered(self, suite_check):
        assert set(GOLDEN) == set(PROGRAM_NAMES)
        assert [o.name for o in suite_check.outcomes] \
            == list(PROGRAM_NAMES)

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_counts(self, suite_check, name):
        outcome = next(o for o in suite_check.outcomes
                       if o.name == name)
        for flavor in FLAVORS:
            counts = count_by_checker(outcome.findings[flavor])
            assert {k: v for k, v in counts.items() if v} \
                == GOLDEN[name][flavor], f"{name}/{flavor}"

    def test_cs_never_reports_more_than_ci(self, suite_check):
        for outcome in suite_check.outcomes:
            ci = len(outcome.findings["insensitive"])
            cs = len(outcome.findings["sensitive"])
            fi = len(outcome.findings["flowinsensitive"])
            assert cs <= ci <= fi, outcome.name

    def test_telemetry_records(self, suite_check):
        records = [r for r in suite_check.records
                   if r.get("kind") == "check"]
        assert len(records) == len(PROGRAM_NAMES) * len(FLAVORS)
        for record in records:
            assert record["status"] == "ok"
            assert set(record["by_checker"]) \
                == {"deadstore", "nullderef", "stackref", "uninit",
                    "wildcall"}
            assert record["findings"] \
                == sum(record["by_checker"].values())
            dense = record["dense"]
            assert dense["decode_calls_after"] \
                >= dense["decode_calls_before"]
            assert len(record["digest"]) == 64


class TestDeterminism:
    #: The programs with the most findings — the interesting digests.
    NAMES = ("loader", "part", "anagram")

    def _digests(self, report):
        out = {}
        for o in report.outcomes:
            assert o.ok, o.error
            for flavor, findings in o.findings.items():
                out[(o.name, flavor)] = findings_digest(findings)
        return out

    def test_digests_stable_across_schedules(self, suite_check):
        baseline = {
            (o.name, flavor): findings_digest(o.findings[flavor])
            for o in suite_check.outcomes
            if o.name in self.NAMES for flavor in FLAVORS}
        for schedule in ("fifo", "scc"):
            report = run_check_report(names=self.NAMES, flavors=FLAVORS,
                                      schedule=schedule)
            assert self._digests(report) == baseline, schedule

    def test_digests_stable_across_jobs(self, suite_check):
        baseline = {
            (o.name, flavor): findings_digest(o.findings[flavor])
            for o in suite_check.outcomes
            if o.name in self.NAMES for flavor in FLAVORS}
        # force_pool: without it the runner folds a 3-task sweep back
        # into the calling process and no process boundary is crossed.
        report = run_check_report(names=self.NAMES, flavors=FLAVORS,
                                  jobs=2, force_pool=True)
        assert self._digests(report) == baseline
