"""Checker framework: registry, finding identity, digests, witnesses."""

import pytest

import repro
from repro.analysis.checkers import (
    REGISTRY,
    CHECKER_IDS,
    Finding,
    count_by_checker,
    findings_digest,
    render_path,
    run_checkers,
)
from repro.analysis.explain import (
    Explainer,
    derivation_facts,
    witness_explainer,
)
from repro.analysis.verify import verify_solution
from repro.errors import AnalysisError

from ...conftest import lower

HAZARDS = """
int g;
int *gp;
void leak(void) { int x; gp = &x; }
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    int *u;
    *u = 2;
    leak();
    return 0;
}
"""


def analyze(source=HAZARDS, flavor="insensitive"):
    program = lower(source, hazard_model=True)
    ci = repro.analyze_insensitive(program)
    if flavor == "sensitive":
        return repro.analyze_sensitive(program, ci_result=ci)
    return ci


class TestRegistry:
    def test_all_five_registered(self):
        assert CHECKER_IDS == ("deadstore", "nullderef", "stackref",
                               "uninit", "wildcall")
        assert REGISTRY.names() == CHECKER_IDS

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalysisError, match="unknown checker"):
            REGISTRY.get(["nosuch"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="already registered"):
            REGISTRY.register("nullderef")(lambda result: iter(()))

    def test_subset_selection_order(self):
        selected = REGISTRY.get(["uninit", "nullderef"])
        assert [name for name, _ in selected] == ["uninit", "nullderef"]


class TestFinding:
    def test_key_excludes_witness(self):
        a = Finding("nullderef", "insensitive", "main", "lookup#3",
                    "f.c:7", "<null>", "error", "boom", witness="w1")
        b = Finding("nullderef", "insensitive", "main", "lookup#3",
                    "f.c:7", "<null>", "error", "boom", witness="w2")
        assert a.key() == b.key()
        assert findings_digest([a]) == findings_digest([b])

    def test_file_and_line_parse(self):
        f = Finding("uninit", "insensitive", "main", "lookup#1",
                    "dir/x.c:42", "", "warning", "m")
        assert f.file == "dir/x.c"
        assert f.line == 42
        bare = Finding("uninit", "insensitive", "main", "lookup#1",
                       "", "", "warning", "m")
        assert bare.file == ""
        assert bare.line is None

    def test_digest_order_insensitive(self):
        a = Finding("a", "ci", "f", "n#1", "x:1", "p", "error", "m1")
        b = Finding("b", "ci", "f", "n#2", "x:2", "q", "warning", "m2")
        assert findings_digest([a, b]) == findings_digest([b, a])
        assert findings_digest([a]) != findings_digest([a, b])

    def test_count_by_checker_zero_filled(self):
        counts = count_by_checker([])
        assert set(counts) == set(CHECKER_IDS)
        assert all(v == 0 for v in counts.values())


class TestRunCheckers:
    def test_findings_sorted_and_deduped(self):
        result = analyze()
        findings = run_checkers(result)
        keys = [f.key() for f in findings]
        assert len(keys) == len(set(keys))
        def uid(node: str) -> int:
            return int(node.rsplit("#", 1)[1])

        assert findings == sorted(
            findings, key=lambda f: (f.checker, f.function,
                                     uid(f.node), f.path, f.message))
        assert count_by_checker(findings)["nullderef"] >= 1
        assert count_by_checker(findings)["uninit"] >= 1
        assert count_by_checker(findings)["stackref"] >= 1

    def test_same_digest_with_and_without_witness(self):
        result = analyze()
        bare = run_checkers(result)
        witnessed = run_checkers(result, witness=True)
        assert findings_digest(bare) == findings_digest(witnessed)
        assert any(f.witness for f in witnessed)

    def test_render_path_empty(self):
        assert render_path(None) == ""

    def test_representative_is_order_insensitive(self):
        """Regression: the reported pair of a multi-pair hazard set was
        ``pairs[0]`` in set-iteration order, which varies with the
        process's allocation history — the same program's digest
        changed depending on what was analyzed before it."""
        from repro.analysis.checkers.base import representative

        result = analyze()
        picked = {}
        for output in result.solution.outputs():
            pairs = [p for p in result.solution.pairs(output)
                     if p.is_direct]
            if len(pairs) < 2:
                continue
            picked[output] = representative(pairs)
            assert representative(list(reversed(pairs))) \
                == picked[output]
            assert render_path(picked[output].referent) \
                == min(render_path(p.referent) for p in pairs)
        assert picked, "HAZARDS must produce a multi-pair output"


class TestWitnesses:
    def test_witness_cites_verified_facts(self):
        """Every fact a witness derivation cites must be in the
        solution, and the solution itself must pass the declarative
        fixpoint verifier — a witness can never cite an invented pair."""
        result = analyze()
        assert verify_solution(result) == []
        explainer = witness_explainer(result)
        assert isinstance(explainer, Explainer)
        checked = 0
        for graph in result.program.functions.values():
            for node in graph.memory_operations():
                src = node.loc.source
                for pair in sorted(result.solution.raw_pairs(src),
                                   key=repr):
                    derivation = explainer.explain(src, pair)
                    for out, fact in derivation_facts(derivation):
                        assert fact in result.solution.raw_pairs(out)
                        checked += 1
        assert checked > 0

    def test_sensitive_witness_routes_through_ci(self):
        cs = analyze(flavor="sensitive")
        explainer = witness_explainer(cs)
        # The Explainer itself refuses stripped CS results, so the
        # router must hand back the underlying CI explainer.
        assert explainer is not None
        assert explainer.result.flavor == "insensitive"
        findings = run_checkers(cs, witness=True)
        assert any(f.witness for f in findings)
