"""The mod/ref client."""

import pytest

from repro.analysis.clients.modref import modref
from repro.analysis.insensitive import analyze_insensitive
from repro.errors import AnalysisError
from repro.ir.nodes import CallNode, LookupNode, UpdateNode
from repro.memory import location_path
from tests.conftest import analyze_both, lower


SRC = """
    int g; int h;
    void write_g(void) { g = 1; }
    int read_h(void) { return h; }
    void both(void) { write_g(); g = read_h(); }
    int main(void) { both(); return 0; }
"""


def names(paths):
    return {p.base.name for p in paths}


class TestDirectSets:
    def test_leaf_mod(self):
        _, ci, _ = analyze_both(SRC)
        info = modref(ci)
        assert names(info.mod_set("write_g")) == {"g"}
        assert info.ref_set("write_g") == frozenset()

    def test_leaf_ref(self):
        _, ci, _ = analyze_both(SRC)
        info = modref(ci)
        assert names(info.ref_set("read_h")) == {"h"}
        assert info.mod_set("read_h") == frozenset()


class TestTransitiveClosure:
    def test_caller_inherits_callee_effects(self):
        _, ci, _ = analyze_both(SRC)
        info = modref(ci)
        assert names(info.mod_set("both")) == {"g"}
        assert names(info.ref_set("both")) == {"h"}
        assert names(info.mod_set("main")) == {"g"}
        assert names(info.ref_set("main")) == {"h"}

    def test_recursive_closure_terminates(self):
        _, ci, _ = analyze_both("""
            int g;
            void even(int n);
            void odd(int n) { g = n; if (n) even(n - 1); }
            void even(int n) { if (n) odd(n - 1); }
            int main(void) { even(4); return g; }
        """)
        info = modref(ci)
        assert names(info.mod_set("even")) == {"g"}
        assert names(info.mod_set("odd")) == {"g"}

    def test_pointer_mediated_effects(self):
        _, ci, _ = analyze_both("""
            int a, b;
            void poke(int *p) { *p = 1; }
            int main(int argc, char **argv) {
                poke(argc ? &a : &b);
                return 0;
            }
        """)
        info = modref(ci)
        assert names(info.mod_set("poke")) == {"a", "b"}
        assert names(info.mod_set("main")) == {"a", "b"}


class TestPerOpAndCallQueries:
    def test_op_queries(self):
        program, ci, _ = analyze_both(SRC)
        info = modref(ci)
        write = next(n for n in program.functions["write_g"].nodes
                     if isinstance(n, UpdateNode))
        assert names(info.op_mod(write)) == {"g"}
        with pytest.raises(AnalysisError):
            info.op_ref(write)

    def test_call_site_queries(self):
        program, ci, _ = analyze_both(SRC)
        info = modref(ci)
        call = next(n for n in program.functions["main"].nodes
                    if isinstance(n, CallNode))
        assert names(info.call_mod(call)) == {"g"}
        assert names(info.call_ref(call)) == {"h"}

    def test_unknown_function_rejected(self):
        _, ci, _ = analyze_both(SRC)
        with pytest.raises(AnalysisError, match="unknown function"):
            modref(ci).mod_set("ghost")


class TestAliasAwareQueries:
    def test_may_mod_prefix_aliasing(self):
        program, ci, _ = analyze_both("""
            struct s { int a; int b; } v;
            void set_a(void) { v.a = 1; }
            int main(void) { set_a(); return v.b; }
        """)
        info = modref(ci)
        v_loc = next(loc for loc in program.locations if loc.name == "v")
        whole = location_path(v_loc)
        # Writing v.a may modify storage reachable through v ...
        assert info.may_mod("set_a", whole)
        # ... but not through v.b.
        record = v_loc.ctype
        b_path = whole.extend(record.field_op("b"))
        assert not info.may_mod("set_a", b_path)
