"""Golden per-program counts for the analysis clients.

Pinned behaviour of defuse / modref / deadstore over all 13 suite
programs x 3 flavors, captured from the pre-refactor per-location
walk and required to survive the shared mask-level reaching-defs
engine (``analysis/depgraph.ReachingDefs``) unchanged.  The sweep
uses the whole-program (context-insensitive walk) configuration that
``find_dead_stores`` and the dependence-graph pass use; call-site
sensitivity is covered by the defuse unit tests.

Metrics per (program, flavor):

* ``reads`` / ``defuse_edges`` / ``initial_reads`` — lookup count,
  total reaching definitions over all lookups (INITIAL included),
  and how many lookups can observe the initial store;
* ``mod`` / ``ref`` — summed per-function transitive mod/ref set
  sizes;
* ``dead`` / ``unreachable`` / ``stores`` — the dead-store report.
"""

import pytest

from repro.analysis.clients.deadstore import find_dead_stores
from repro.analysis.clients.defuse import INITIAL, defuse
from repro.analysis.clients.modref import modref
from repro.ir.nodes import LookupNode
from repro.suite.registry import PROGRAM_NAMES

FLAVORS = ("insensitive", "sensitive", "flowinsensitive")

GOLDEN = {
    'allroots': {
        'insensitive': dict(reads=16, defuse_edges=63,
                     initial_reads=16,
                     mod=19, ref=31,
                     dead=0, unreachable=0, stores=12),
        'sensitive': dict(reads=16, defuse_edges=63,
                     initial_reads=16,
                     mod=19, ref=31,
                     dead=0, unreachable=0, stores=12),
        'flowinsensitive': dict(reads=16, defuse_edges=63,
                     initial_reads=16,
                     mod=19, ref=31,
                     dead=0, unreachable=0, stores=12),
    },
    'anagram': {
        'insensitive': dict(reads=28, defuse_edges=62,
                     initial_reads=21,
                     mod=23, ref=30,
                     dead=0, unreachable=0, stores=16),
        'sensitive': dict(reads=28, defuse_edges=62,
                     initial_reads=21,
                     mod=23, ref=30,
                     dead=0, unreachable=0, stores=16),
        'flowinsensitive': dict(reads=28, defuse_edges=62,
                     initial_reads=21,
                     mod=23, ref=30,
                     dead=0, unreachable=0, stores=16),
    },
    'assembler': {
        'insensitive': dict(reads=60, defuse_edges=163,
                     initial_reads=53,
                     mod=57, ref=83,
                     dead=0, unreachable=0, stores=31),
        'sensitive': dict(reads=60, defuse_edges=163,
                     initial_reads=53,
                     mod=57, ref=83,
                     dead=0, unreachable=0, stores=31),
        'flowinsensitive': dict(reads=60, defuse_edges=163,
                     initial_reads=53,
                     mod=57, ref=83,
                     dead=0, unreachable=0, stores=31),
    },
    'backprop': {
        'insensitive': dict(reads=22, defuse_edges=105,
                     initial_reads=22,
                     mod=10, ref=16,
                     dead=0, unreachable=0, stores=9),
        'sensitive': dict(reads=22, defuse_edges=105,
                     initial_reads=22,
                     mod=10, ref=16,
                     dead=0, unreachable=0, stores=9),
        'flowinsensitive': dict(reads=22, defuse_edges=105,
                     initial_reads=22,
                     mod=10, ref=16,
                     dead=0, unreachable=0, stores=9),
    },
    'bc': {
        'insensitive': dict(reads=34, defuse_edges=136,
                     initial_reads=26,
                     mod=62, ref=111,
                     dead=0, unreachable=0, stores=27),
        'sensitive': dict(reads=34, defuse_edges=136,
                     initial_reads=26,
                     mod=62, ref=111,
                     dead=0, unreachable=0, stores=27),
        'flowinsensitive': dict(reads=34, defuse_edges=136,
                     initial_reads=26,
                     mod=62, ref=111,
                     dead=0, unreachable=0, stores=27),
    },
    'compiler': {
        'insensitive': dict(reads=54, defuse_edges=160,
                     initial_reads=47,
                     mod=51, ref=48,
                     dead=0, unreachable=0, stores=21),
        'sensitive': dict(reads=54, defuse_edges=160,
                     initial_reads=47,
                     mod=51, ref=48,
                     dead=0, unreachable=0, stores=21),
        'flowinsensitive': dict(reads=54, defuse_edges=160,
                     initial_reads=47,
                     mod=51, ref=48,
                     dead=0, unreachable=0, stores=21),
    },
    'compress': {
        'insensitive': dict(reads=24, defuse_edges=64,
                     initial_reads=21,
                     mod=24, ref=25,
                     dead=0, unreachable=0, stores=19),
        'sensitive': dict(reads=24, defuse_edges=64,
                     initial_reads=21,
                     mod=24, ref=25,
                     dead=0, unreachable=0, stores=19),
        'flowinsensitive': dict(reads=24, defuse_edges=64,
                     initial_reads=21,
                     mod=24, ref=25,
                     dead=0, unreachable=0, stores=19),
    },
    'lex315': {
        'insensitive': dict(reads=16, defuse_edges=69,
                     initial_reads=14,
                     mod=10, ref=14,
                     dead=3, unreachable=0, stores=23),
        'sensitive': dict(reads=16, defuse_edges=69,
                     initial_reads=14,
                     mod=10, ref=14,
                     dead=3, unreachable=0, stores=23),
        'flowinsensitive': dict(reads=16, defuse_edges=69,
                     initial_reads=14,
                     mod=10, ref=14,
                     dead=3, unreachable=0, stores=23),
    },
    'loader': {
        'insensitive': dict(reads=35, defuse_edges=82,
                     initial_reads=30,
                     mod=64, ref=82,
                     dead=1, unreachable=0, stores=24),
        'sensitive': dict(reads=35, defuse_edges=82,
                     initial_reads=30,
                     mod=64, ref=82,
                     dead=1, unreachable=0, stores=24),
        'flowinsensitive': dict(reads=35, defuse_edges=82,
                     initial_reads=30,
                     mod=64, ref=82,
                     dead=1, unreachable=0, stores=24),
    },
    'part': {
        'insensitive': dict(reads=25, defuse_edges=79,
                     initial_reads=14,
                     mod=52, ref=49,
                     dead=1, unreachable=0, stores=18),
        'sensitive': dict(reads=25, defuse_edges=79,
                     initial_reads=14,
                     mod=52, ref=49,
                     dead=1, unreachable=0, stores=18),
        'flowinsensitive': dict(reads=25, defuse_edges=79,
                     initial_reads=14,
                     mod=52, ref=49,
                     dead=1, unreachable=0, stores=18),
    },
    'simulator': {
        'insensitive': dict(reads=40, defuse_edges=219,
                     initial_reads=26,
                     mod=47, ref=53,
                     dead=2, unreachable=0, stores=26),
        'sensitive': dict(reads=40, defuse_edges=219,
                     initial_reads=26,
                     mod=47, ref=53,
                     dead=2, unreachable=0, stores=26),
        'flowinsensitive': dict(reads=40, defuse_edges=219,
                     initial_reads=26,
                     mod=47, ref=53,
                     dead=2, unreachable=0, stores=26),
    },
    'span': {
        'insensitive': dict(reads=17, defuse_edges=51,
                     initial_reads=17,
                     mod=24, ref=17,
                     dead=0, unreachable=0, stores=11),
        'sensitive': dict(reads=17, defuse_edges=51,
                     initial_reads=17,
                     mod=24, ref=17,
                     dead=0, unreachable=0, stores=11),
        'flowinsensitive': dict(reads=17, defuse_edges=51,
                     initial_reads=17,
                     mod=24, ref=17,
                     dead=0, unreachable=0, stores=11),
    },
    'yacr2': {
        'insensitive': dict(reads=39, defuse_edges=85,
                     initial_reads=25,
                     mod=37, ref=49,
                     dead=0, unreachable=0, stores=22),
        'sensitive': dict(reads=39, defuse_edges=85,
                     initial_reads=25,
                     mod=37, ref=49,
                     dead=0, unreachable=0, stores=22),
        'flowinsensitive': dict(reads=39, defuse_edges=85,
                     initial_reads=25,
                     mod=37, ref=49,
                     dead=0, unreachable=0, stores=22),
    },
}


def client_counts(result):
    """The golden metrics for one solved result (shared with goldens
    regeneration -- keep in sync with the module docstring)."""
    program = result.program
    du = defuse(result, call_site_sensitive=False)
    reads = edges = initial = 0
    for graph in program.functions.values():
        for node in graph.nodes:
            if isinstance(node, LookupNode):
                reads += 1
                defs = du.reaching_definitions(node)
                edges += len(defs)
                if INITIAL in defs:
                    initial += 1
    info = modref(result)
    report = find_dead_stores(result, du=du)
    return dict(reads=reads, defuse_edges=edges, initial_reads=initial,
                mod=sum(len(info.mod_set(f)) for f in program.functions),
                ref=sum(len(info.ref_set(f)) for f in program.functions),
                dead=len(report.dead),
                unreachable=len(report.unreachable),
                stores=report.total)


class TestClientGoldens:
    def test_every_program_covered(self):
        assert set(GOLDEN) == set(PROGRAM_NAMES)

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    @pytest.mark.parametrize("flavor", FLAVORS)
    def test_counts(self, suite_cache, name, flavor):
        if flavor == "insensitive":
            result = suite_cache.ci(name)
        elif flavor == "sensitive":
            result = suite_cache.cs(name)
        else:
            from repro.analysis.flowinsensitive import \
                analyze_flowinsensitive
            result = analyze_flowinsensitive(suite_cache.program(name))
        assert client_counts(result) == GOLDEN[name][flavor], \
            f"{name}/{flavor}"

    def test_cs_at_most_ci(self):
        """Context sensitivity can only remove spurious dependence
        edges and mod/ref entries, never add them."""
        for name in PROGRAM_NAMES:
            ci = GOLDEN[name]["insensitive"]
            cs = GOLDEN[name]["sensitive"]
            for metric in ("defuse_edges", "mod", "ref"):
                assert cs[metric] <= ci[metric], (name, metric)
