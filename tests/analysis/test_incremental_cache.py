"""Durability of the summary store: damage never changes results.

Every way a persisted entry can go bad — evicted, truncated, filled
with garbage, version-skewed, or (worst) still loadable but carrying
*wrong facts* — must degrade to re-solving, never to wrong answers.
The first three are detected at load time (unpickle fails → unlink,
miss); the last is what the incremental engine's replay validation
exists for: a poisoned entry composes into a solution that fails the
growth/coverage checks and falls back to a cold solve.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.incremental import SummaryStore, analyze_incremental
from repro.analysis.summaries import SUMMARY_VERSION
from repro.fuzz.oracle import solution_digest

from ..conftest import lower
from .test_summaries_differential import TWO_LEAF


def _digests(results):
    return {flavor: solution_digest(result)
            for flavor, result in results.items()}


@pytest.fixture
def warm_store(tmp_path):
    """A populated store plus the cold run's digests and counters."""
    cold = analyze_incremental(lower(TWO_LEAF, name="two"),
                               cache=str(tmp_path))
    return tmp_path, _digests(cold), \
        cold["insensitive"].extras["dense"]["summary_scc_total"]


def _entries(root, flavor):
    return sorted((root / "summaries").glob(f"{flavor}-*.pkl"))


def _rerun(root):
    return analyze_incremental(lower(TWO_LEAF, name="two"),
                               cache=str(root))


def test_store_layout(warm_store):
    root, _, total = warm_store
    assert len(_entries(root, "insensitive")) == total
    assert len(_entries(root, "sensitive")) == 1
    assert len(_entries(root, "flowinsensitive")) == 1
    assert len(sorted((root / "summaries").glob("manifest-*.pkl"))) == 1


@pytest.mark.parametrize("damage", [
    pytest.param(lambda p: p.unlink(), id="evicted"),
    pytest.param(lambda p: p.write_bytes(p.read_bytes()[:7]),
                 id="truncated"),
    pytest.param(lambda p: p.write_bytes(b"\x00not a pickle"),
                 id="garbage"),
])
def test_damaged_ci_entry_resolves_cleanly(warm_store, damage):
    root, digests, total = warm_store
    victim = _entries(root, "insensitive")[len(_entries(
        root, "insensitive")) // 2]
    damage(victim)
    results = _rerun(root)
    assert _digests(results) == digests
    dense = results["insensitive"].extras["dense"]
    # The victim's caller cone re-solves; at least one SCC survives.
    assert 0 < dense["sccs_resolved"] <= total
    assert dense["sccs_resolved"] + dense["summaries_reused"] == total
    # A damaged (non-evicted) file is unlinked on first load...
    again = _rerun(root)
    # ...and the re-solve re-published it, so the next run replays.
    assert _digests(again) == digests
    assert again["insensitive"].extras["dense"]["sccs_resolved"] == 0


@pytest.mark.parametrize("flavor", ["sensitive", "flowinsensitive"])
def test_damaged_whole_program_entry_goes_cold(warm_store, flavor):
    root, digests, total = warm_store
    entry, = _entries(root, flavor)
    entry.write_bytes(b"\x00not a pickle")
    results = _rerun(root)
    assert _digests(results) == digests
    dense = results[flavor].extras["dense"]
    assert dense["sccs_resolved"] == total
    assert dense["summary_cache_hits"] == 0
    assert _rerun(root)[flavor].extras["dense"]["sccs_resolved"] == 0


def test_version_skew_is_a_miss(warm_store):
    root, digests, _ = warm_store
    for entry in _entries(root, "insensitive"):
        payload = pickle.loads(entry.read_bytes())
        payload["version"] = SUMMARY_VERSION + 1
        entry.write_bytes(pickle.dumps(payload))
    results = _rerun(root)
    assert _digests(results) == digests
    dense = results["insensitive"].extras["dense"]
    assert dense["summary_cache_hits"] == 0
    assert dense["sccs_resolved"] == dense["summary_scc_total"]


def test_poisoned_entry_fails_validation_and_goes_cold(warm_store):
    """A key-valid entry with facts stripped out is the failure load
    checks cannot see — replay validation must catch the coverage gap
    and fall back to a cold solve with unchanged digests."""
    root, digests, total = warm_store
    store = SummaryStore(root)
    poisoned = 0
    for entry in _entries(root, "insensitive"):
        payload = pickle.loads(entry.read_bytes())
        if payload["outputs"]:
            payload["outputs"] = []
            entry.write_bytes(pickle.dumps(payload))
            poisoned += 1
    assert poisoned, "fixture must have at least one non-empty summary"
    results = _rerun(root)
    assert _digests(results) == digests
    dense = results["insensitive"].extras["dense"]
    assert dense["sccs_resolved"] == total  # cold fallback
    assert dense["summary_cache_hits"] == total  # they all *loaded*
    del store


def test_corrupt_manifest_only_costs_convergence(warm_store):
    """A bad manifest loses the remembered dynamic call edges — worth
    at most one extra convergence round, never wrong answers."""
    root, digests, _ = warm_store
    manifest, = sorted((root / "summaries").glob("manifest-*.pkl"))
    manifest.write_bytes(b"\x00not a pickle")
    results = _rerun(root)
    assert _digests(results) == digests


def test_store_gc_evicts_to_budget_and_counts(warm_store):
    """A byte-capped store sheds oldest entries after each publish,
    reports the count in ``dense["summary_evictions"]``, and the
    evicted entries degrade to re-solves — never wrong answers."""
    root, digests, total = warm_store
    before = len(list((root / "summaries").glob("*.pkl")))
    # A budget below one entry's size forces eviction down to ~nothing.
    program = lower(TWO_LEAF, name="two")
    results = analyze_incremental(program, cache=str(root),
                                  store_max_bytes=64)
    assert _digests(results) == digests
    dense = results["insensitive"].extras["dense"]
    assert dense["summary_evictions"] > 0
    after = len(list((root / "summaries").glob("*.pkl")))
    assert after < before
    # The gutted store still converges correctly on the next run.
    again = analyze_incremental(program, cache=str(root))
    assert _digests(again) == digests


def test_store_budget_env_is_honored(warm_store, monkeypatch):
    root, digests, _ = warm_store
    monkeypatch.setenv("REPRO_SUMMARY_CACHE_MB", "0")  # ≤0 → unbounded
    results = analyze_incremental(lower(TWO_LEAF, name="two"),
                                  cache=str(root))
    assert _digests(results) == digests
    assert results["insensitive"].extras["dense"].get(
        "summary_evictions", 0) == 0


def test_empty_store_directory_is_cold(tmp_path):
    (tmp_path / "summaries").mkdir()
    program = lower(TWO_LEAF, name="two")
    results = analyze_incremental(program, cache=str(tmp_path))
    dense = results["insensitive"].extras["dense"]
    assert dense["summary_cache_hits"] == 0
    assert dense["sccs_resolved"] == dense["summary_scc_total"]
