"""The Weihl-style flow-insensitive baseline."""

import pytest

import repro
from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.analysis.insensitive import analyze_insensitive
from repro.ir.nodes import LookupNode, UpdateNode
from tests.conftest import lower, op_base_names


def analyze_fi(source: str):
    program = lower(source)
    return program, analyze_flowinsensitive(program)


class TestGlobalStore:
    def test_no_strong_updates(self):
        """Without flow, the overwrite cannot kill: *p sees both."""
        program, fi = analyze_fi("""
            int g1, g2; int *p;
            int main(void) { p = &g1; p = &g2; return *p; }
        """)
        read = [n for n in program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][0]
        assert op_base_names(fi, read) == {"g1", "g2"}

    def test_coarser_than_flow_sensitive(self):
        source = """
            int g1, g2; int *p;
            int main(void) { p = &g1; p = &g2; return *p; }
        """
        program = lower(source)
        ci = analyze_insensitive(program)
        fi = analyze_flowinsensitive(program)
        read = [n for n in program.functions["main"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][0]
        assert ci.op_locations(read) < fi.op_locations(read)

    def test_order_independence(self):
        """A read lexically before the write still sees it (the global
        mapping has no program points)."""
        program, fi = analyze_fi("""
            int g; int *p;
            int use(void) { return *p; }
            int main(void) { int r = use(); p = &g; return r; }
        """)
        read = [n for n in program.functions["use"].nodes
                if isinstance(n, LookupNode) and n.is_indirect][0]
        assert op_base_names(fi, read) == {"g"}

    def test_sound_superset_of_ci_at_ops(self):
        source = """
            int g1, g2;
            int *id(int *p) { return p; }
            int main(int argc, char **argv) {
                int *a = id(argc ? &g1 : &g2);
                *a = 1;
                return 0;
            }
        """
        program = lower(source)
        ci = analyze_insensitive(program)
        fi = analyze_flowinsensitive(program)
        for node in program.functions["main"].nodes:
            if isinstance(node, (LookupNode, UpdateNode)):
                assert ci.op_locations(node) <= fi.op_locations(node)

    def test_store_outputs_report_global_map(self):
        program, fi = analyze_fi("""
            int g; int *p;
            int main(void) { p = &g; return 0; }
        """)
        from repro.ir.nodes import ValueTag
        store_outputs = [o for o in program.functions["main"].outputs()
                         if o.tag is ValueTag.STORE]
        sizes = {len(fi.pairs(o)) for o in store_outputs}
        assert len(sizes) == 1  # every store output shows the same map
        assert fi.extras["global_store_pairs"] == sizes.pop()

    def test_flavor_tag(self):
        _, fi = analyze_fi("int main(void) { return 0; }")
        assert fi.flavor == "flowinsensitive"

    def test_dispatch_via_top_level_api(self):
        program = lower("int main(void) { return 0; }")
        result = repro.analyze(program, sensitivity="flowinsensitive")
        assert result.flavor == "flowinsensitive"
