"""The ``/slice`` endpoint: tier sharing, parity, validation."""

from __future__ import annotations

import pytest

from repro.serve import AnalysisService, ServeConfig

SOURCE = """
int g;
int h;

void set(int *p, int v) {
    *p = v;
}

int get(int *p) {
    return *p;
}

int main(void) {
    int *q = &g;
    set(q, 5);
    h = get(q);
    return h;
}
"""

HAZARD_SOURCE = """
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    return 0;
}
"""

@pytest.fixture
def service(tmp_path):
    svc = AnalysisService(ServeConfig(workers=2,
                                      cache=str(tmp_path / "cache")))
    yield svc
    svc.shutdown()


@pytest.fixture
def criterion(tmp_path):
    """A ``file`` target: criterion slicing matches origins by file
    basename, so the program needs an on-disk name (POSTed source is
    spooled under a content-hash name the client cannot predict)."""
    path = tmp_path / "flow.c"
    path.write_text(SOURCE)
    return {"file": str(path), "criterion": "flow.c:10"}


def test_criterion_slice(service, criterion):
    status, payload = service.handle("slice", dict(criterion))
    assert status == 200
    sl = payload["slice"]
    assert sl["direction"] == "backward"
    assert sl["size"] > 0
    assert set(payload["node_info"]) == set(sl["nodes"])
    assert payload["graph"]["stats"]["edges"] > 0


def test_repeat_hits_the_solution_tier(service, criterion):
    _, first = service.handle("slice", dict(criterion))
    status, second = service.handle("slice", dict(criterion))
    assert status == 200
    assert second["tier"] == "solution"
    assert second["slice"]["digest"] == first["slice"]["digest"]


def test_slice_and_query_share_the_result_tier(service, criterion):
    service.handle("slice", dict(criterion))
    status, payload = service.handle(
        "query", {"file": criterion["file"], "kind": "reads"})
    assert status == 200
    assert payload["tier"] == "solution"


def test_forward_direction(service, criterion):
    body = dict(criterion, direction="forward", criterion="flow.c:6")
    status, payload = service.handle("slice", body)
    assert status == 200
    assert payload["slice"]["direction"] == "forward"


def test_finding_slice_uses_hazard_lowering(service):
    status, payload = service.handle(
        "slice", {"source": HAZARD_SOURCE, "finding": "nullderef"})
    assert status == 200
    assert payload["slice"]["criterion"].startswith(
        "finding:nullderef|")


@pytest.mark.parametrize("body,fragment", [
    ({"source": SOURCE}, "criterion"),
    ({"source": SOURCE, "criterion": "x.c:10",
      "finding": "nullderef"}, None),
    ({"source": SOURCE, "criterion": "x.c:10",
      "direction": "sideways"}, "direction"),
    ({"source": SOURCE, "criterion": "x.c:999"}, "matches no"),
    ({"source": SOURCE, "finding": "nullderef"}, "no finding"),
])
def test_bad_requests_are_client_errors(service, body, fragment):
    status, payload = service.handle("slice", body)
    assert status == 400
    if fragment is not None:
        assert fragment in payload["error"]
