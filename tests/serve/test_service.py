"""The transport-free service core: endpoints, tiers, parity.

Everything here drives :class:`repro.serve.core.AnalysisService`
directly (no sockets) — the HTTP adapter has its own tests.  The
load-bearing property throughout is *parity*: a served digest must be
byte-identical to what the CLI code path computes for the same
program, whatever cache tier answered.
"""

from __future__ import annotations

import pytest

from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.fuzz.oracle import solution_digest
from repro.serve import AnalysisService, ServeConfig

import repro

SOURCE = """
int g;
int *leaf(void) { return &g; }
int main(void) { int *p = leaf(); *p = 1; return 0; }
"""


@pytest.fixture
def service(tmp_path):
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    yield svc
    svc.shutdown()


def _cli_digests(source):
    program = repro.parse_source(source, name="<serve-test>")
    ci = repro.analyze_insensitive(program)
    cs = repro.analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    return {"insensitive": solution_digest(ci),
            "sensitive": solution_digest(cs),
            "flowinsensitive": solution_digest(fi)}


def _served_digests(payload):
    return {flavor: entry["digest"]
            for flavor, entry in payload["flavors"].items()}


def test_analyze_source_matches_cli(service):
    status, payload = service.handle("analyze", {"source": SOURCE})
    assert status == 200
    assert payload["tier"] == "cold"
    assert _served_digests(payload) == _cli_digests(SOURCE)
    assert payload["flavors"]["insensitive"]["pairs"]["total"] > 0


def test_repeat_hits_the_solution_tier(service):
    _, first = service.handle("analyze", {"source": SOURCE})
    status, second = service.handle("analyze", {"source": SOURCE})
    assert status == 200
    assert second["tier"] == "solution"
    assert _served_digests(second) == _served_digests(first)
    assert service.metrics.tier_hits["solution"] == 1


def test_summary_tier_across_service_restarts(tmp_path):
    """A fresh daemon against a warm cache directory answers from the
    persisted SCC summaries: zero SCCs re-solved, same digests."""
    first = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        _, cold = first.handle("analyze", {"source": SOURCE})
    finally:
        first.shutdown()
    assert cold["tier"] == "cold"

    second = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        status, warm = second.handle("analyze", {"source": SOURCE})
    finally:
        second.shutdown()
    assert status == 200
    assert warm["tier"] == "summary"
    assert _served_digests(warm) == _served_digests(cold)
    dense = warm["flavors"]["insensitive"]["dense"]
    assert dense["sccs_resolved"] == 0
    assert dense["summary_scc_total"] > 0


def test_check_digests_match_cli_path(service, tmp_path):
    from repro.runner import run_check_report

    status, payload = service.handle(
        "check", {"program": "anagram", "flavors": ["insensitive"]})
    assert status == 200
    report = run_check_report(names=("anagram",),
                              flavors=("insensitive",),
                              cache=str(tmp_path), digest_only=True)
    want = report.outcomes[0].digests["insensitive"]
    entry = payload["flavors"]["insensitive"]
    assert entry["digest"] == want
    assert entry["findings"] > 0
    assert "witness" not in entry  # findings never reach the parent


def test_query_matches_object_level_answer(service):
    status, payload = service.handle(
        "query", {"source": SOURCE, "function": "main"})
    assert status == 200
    ops = payload["operations"]
    assert ops, "main dereferences p"
    program = repro.parse_source(SOURCE, name="<serve-test>")
    result = repro.analyze_insensitive(program)
    graph = program.functions["main"]
    want = {tuple(sorted(repr(p) for p in result.op_locations(node)))
            for node in graph.memory_operations() if node.is_indirect}
    got = {tuple(op["locations"]) for op in ops}
    assert got == want
    # Warm repeat answers from the result tier.
    _, again = service.handle("query", {"source": SOURCE,
                                        "function": "main"})
    assert again["tier"] == "solution"
    assert again["operations"] == ops


def test_flavor_subset_and_ordering(service):
    status, payload = service.handle(
        "analyze", {"source": SOURCE,
                    "flavors": ["flowinsensitive", "insensitive"]})
    assert status == 200
    assert list(payload["flavors"]) == ["insensitive", "flowinsensitive"]


@pytest.mark.parametrize("body,fragment", [
    ({}, "exactly one of"),
    ({"program": "anagram", "source": "int x;"}, "exactly one of"),
    ({"program": "no-such-program"}, "unknown suite program"),
    ({"file": "/no/such/file.c"}, "no such file"),
    ({"source": SOURCE, "flavors": ["bogus"]}, "subset"),
    ({"source": SOURCE, "flavors": []}, "subset"),
    ({"program": 42}, "non-empty string"),
])
def test_bad_requests_are_400(service, body, fragment):
    status, payload = service.handle("analyze", body)
    assert status == 400
    assert fragment in payload["error"]


def test_unknown_checker_id_is_400(service):
    """A typo'd checker id is a client error, validated parent-side —
    not a worker-side crash surfacing as a 500."""
    status, payload = service.handle(
        "check", {"program": "anagram", "checkers": ["nulldref"]})
    assert status == 400
    assert "unknown checker" in payload["error"]
    assert "nullderef" in payload["error"]  # the suggestion list
    status, payload = service.handle(
        "check", {"program": "anagram", "checkers": [42]})
    assert status == 400
    assert "checker-id strings" in payload["error"]


def test_timed_out_work_holds_admission_as_zombie(tmp_path):
    """After a 504 releases its admission slot, the thread still
    grinding on the abandoned computation counts against admission
    (as a zombie) until it finishes — so newly admitted requests never
    queue behind work nobody is waiting for."""
    import threading
    import time

    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path),
                                      queue_limit=1))
    try:
        release = threading.Event()
        assert svc.try_begin()
        future = svc.executor.submit(release.wait)  # the stuck work
        svc.note_timeout(future)  # transport answered 504 ...
        svc.end()                 # ... and freed the admission slot
        # The busy thread still occupies capacity: shed, don't queue.
        assert not svc.try_begin()
        snap = svc.metrics_payload()
        assert snap["zombie_threads"] == 1
        assert snap["timeouts"] == 1
        release.set()
        future.result(timeout=10)
        deadline = time.monotonic() + 5
        while svc.metrics.zombies and time.monotonic() < deadline:
            time.sleep(0.01)
        assert svc.metrics.zombies == 0
        assert svc.try_begin()  # capacity is back
        svc.end()
    finally:
        svc.shutdown()


def test_unknown_endpoint_is_404(service):
    status, _ = service.handle("frobnicate", {})
    assert status == 404


def test_query_rejects_unknown_flavor(service):
    status, payload = service.handle(
        "query", {"source": SOURCE, "flavor": "bogus"})
    assert status == 400
    assert "flavor" in payload["error"]


def test_worker_error_is_500_and_daemon_survives(service):
    bad = "int main(void) { this is not C at all"
    status, payload = service.handle("analyze", {"source": bad})
    assert status == 500
    assert "error" in payload
    # The pool is intact: a good request still works.
    status, payload = service.handle("analyze", {"source": SOURCE})
    assert status == 200
    assert _served_digests(payload) == _cli_digests(SOURCE)


def test_metrics_shape_and_eviction_counters(service):
    service.handle("analyze", {"source": SOURCE})
    service.handle("analyze", {"source": SOURCE})
    service.payloads.clear()  # forced eviction shows up in stats
    snap = service.metrics_payload()
    assert snap["requests"]["analyze"] == 2
    assert snap["tier_hits"]["cold"] == 1
    assert snap["tier_hits"]["solution"] == 1
    assert snap["queue_depth"] == 0
    assert snap["latency_p50_seconds"] is not None
    assert snap["latency_p95_seconds"] >= snap["latency_p50_seconds"]
    caches = snap["caches"]
    assert set(caches) == {"solution", "program", "result"}
    assert caches["solution"]["evictions"] >= 1
    for stats in caches.values():
        assert set(stats) == {"entries", "bytes", "hits", "misses",
                              "evictions"}


def test_serve_telemetry_records(tmp_path):
    """Completion snapshots land as kind="serve" JSON lines."""
    from repro.telemetry import read_jsonl

    path = tmp_path / "serve.jsonl"
    svc = AnalysisService(ServeConfig(
        workers=2, cache=str(tmp_path / "cache"),
        telemetry=str(path), telemetry_every=1))
    try:
        svc.handle("analyze", {"source": SOURCE})
        svc.handle("analyze", {"source": SOURCE})
    finally:
        svc.shutdown()
    records = read_jsonl(path)
    assert len(records) >= 2
    for record in records:
        assert record["kind"] == "serve"
        assert record["schema"] == 1
        assert "tier_hits" in record and "queue_depth" in record
        assert "latency_p50_seconds" in record
    final = records[-1]
    assert final["requests"]["analyze"] == 2
    assert final["tier_hits"]["solution"] == 1
