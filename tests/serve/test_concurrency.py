"""Concurrency correctness: the daemon under simultaneous load.

N concurrent ``analyze``/``check`` requests — same program, different
programs, with caches evicted mid-flight, with a worker killed by
fault injection — must return digests byte-identical to serial CLI
runs.  Concurrency and caching may only ever change *latency*.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.flowinsensitive import analyze_flowinsensitive
from repro.fuzz.oracle import solution_digest
from repro.serve import AnalysisService, ServeConfig

import repro


def _variant(tag: int) -> str:
    """A family of small distinct programs (distinct content hashes)."""
    return f"""
int g{tag};
int other{tag};
int *leaf(int pick) {{ return pick ? &g{tag} : &other{tag}; }}
int main(void) {{ int *p = leaf({tag % 2}); *p = {tag}; return 0; }}
"""


def _cli_digests(source):
    program = repro.parse_source(source, name="<conc-test>")
    ci = repro.analyze_insensitive(program)
    cs = repro.analyze_sensitive(program, ci_result=ci)
    fi = analyze_flowinsensitive(program)
    return {"insensitive": solution_digest(ci),
            "sensitive": solution_digest(cs),
            "flowinsensitive": solution_digest(fi)}


def _served_digests(payload):
    return {flavor: entry["digest"]
            for flavor, entry in payload["flavors"].items()}


def _fire(service, bodies, endpoint="analyze"):
    """Launch all requests as simultaneously as threads allow."""
    barrier = threading.Barrier(len(bodies))

    def one(body):
        barrier.wait()
        return service.handle(endpoint, body)

    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        return list(pool.map(one, bodies))


def test_concurrent_same_program_coalesces_and_matches(tmp_path):
    source = _variant(0)
    want = _cli_digests(source)
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        replies = _fire(svc, [{"source": source}] * 6)
        assert all(status == 200 for status, _ in replies)
        for _, payload in replies:
            assert _served_digests(payload) == want
        # Exactly one computation happened; everyone else either
        # coalesced onto it or hit the solution tier it populated.
        snap = svc.metrics_payload()
        computed = snap["tier_hits"]["cold"] + \
            snap["tier_hits"]["summary"] + snap["tier_hits"]["lowering"]
        assert computed == 1
        assert snap["coalesced"] + snap["tier_hits"]["solution"] == 5
    finally:
        svc.shutdown()


def test_concurrent_different_programs_match_serial(tmp_path):
    sources = [_variant(tag) for tag in range(5)]
    want = {src: _cli_digests(src) for src in sources}
    svc = AnalysisService(ServeConfig(workers=4, cache=str(tmp_path)))
    try:
        replies = _fire(svc, [{"source": src} for src in sources])
        assert all(status == 200 for status, _ in replies)
        for src, (_, payload) in zip(sources, replies):
            assert _served_digests(payload) == want[src]
    finally:
        svc.shutdown()


def test_eviction_mid_flight_never_changes_digests(tmp_path):
    """A hostile janitor clearing every in-memory tier while requests
    are in flight can only cause extra work, never different bytes."""
    sources = [_variant(tag) for tag in range(4)]
    want = {src: _cli_digests(src) for src in sources}
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        stop = threading.Event()

        def janitor():
            while not stop.is_set():
                svc.payloads.clear()
                svc.programs.clear()
                svc.results.clear()
                stop.wait(0.005)

        thread = threading.Thread(target=janitor)
        thread.start()
        try:
            bodies = [{"source": src} for src in sources] * 3
            replies = _fire(svc, bodies)
        finally:
            stop.set()
            thread.join()
        assert all(status == 200 for status, _ in replies)
        for body, (_, payload) in zip(bodies, replies):
            assert _served_digests(payload) == want[body["source"]]
        assert svc.payloads.evictions > 0
    finally:
        svc.shutdown()


def test_killed_worker_fails_one_request_not_the_daemon(tmp_path,
                                                       monkeypatch):
    """A worker hard-killed mid-request (fault injection = what an OOM
    kill looks like) must yield one structured 500; concurrent and
    subsequent requests still return CLI-identical digests."""
    good = _variant(7)
    want = _cli_digests(good)
    # Suite-program names are the fault-injection handle.
    monkeypatch.setenv("REPRO_FAULT_INJECT", "anagram=exit")
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        replies = _fire(svc, [{"program": "anagram"}, {"source": good}])
        statuses = sorted(status for status, _ in replies)
        assert statuses == [200, 500]
        for status, payload in replies:
            if status == 200:
                assert _served_digests(payload) == want
            else:
                assert payload["error_kind"] == "WorkerDied"
        assert svc.pool.worker_deaths >= 1
        # The rebuilt pool serves the next cold request correctly.
        fresh = _variant(8)
        status, payload = svc.handle("analyze", {"source": fresh})
        assert status == 200
        assert _served_digests(payload) == _cli_digests(fresh)
        assert svc.metrics_payload()["worker_deaths"] >= 1
    finally:
        svc.shutdown()


def test_concurrent_queries_with_different_filters(tmp_path):
    """Queries for the same program but different function/line
    filters may share the solved result, never each other's filtered
    responses — a follower coalescing onto a leader with a different
    filter must not inherit the leader's operations."""
    source = """
int g; int h;
int *from_g(void) { return &g; }
int *from_h(void) { return &h; }
int main(void) {
    int *p = from_g(); int *q = from_h();
    *p = 1; *q = 2; return 0;
}
"""
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        bodies = [{"source": source, "function": "main"},
                  {"source": source},
                  {"source": source, "function": "no_such_function"}] * 3
        replies = _fire(svc, bodies, endpoint="query")
        assert all(status == 200 for status, _ in replies)
        unfiltered = None
        for body, (_, payload) in zip(bodies, replies):
            wanted = body.get("function")
            ops = payload["operations"]
            if wanted == "no_such_function":
                assert ops == []
            elif wanted is None:
                assert ops, "unfiltered query sees main's derefs"
                if unfiltered is None:
                    unfiltered = ops
                assert ops == unfiltered
            else:
                assert ops, "main dereferences p and q"
                assert all(op["function"] == wanted for op in ops)
    finally:
        svc.shutdown()


def test_concurrent_checks_match_serial(tmp_path):
    from repro.runner import run_check_report

    names = ("anagram", "part")
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path)))
    try:
        bodies = [{"program": name, "flavors": ["insensitive"]}
                  for name in names] * 2
        replies = _fire(svc, bodies, endpoint="check")
        assert all(status == 200 for status, _ in replies)
        report = run_check_report(names=names, flavors=("insensitive",),
                                  cache=str(tmp_path), digest_only=True)
        want = {o.name: o.digests["insensitive"] for o in report.outcomes}
        for body, (_, payload) in zip(bodies, replies):
            assert payload["flavors"]["insensitive"]["digest"] == \
                want[body["program"]]
    finally:
        svc.shutdown()


def test_admission_sheds_with_429_under_pressure(tmp_path):
    """With the queue bound at 1, simultaneous arrivals shed; shed
    requests are refused outright (never half-answered) and a retry
    after the squeeze succeeds with correct bytes."""
    source = _variant(9)
    svc = AnalysisService(ServeConfig(workers=2, cache=str(tmp_path),
                                      queue_limit=1))
    try:
        barrier = threading.Barrier(4)
        outcomes = []
        lock = threading.Lock()

        def one():
            barrier.wait()
            if not svc.try_begin():
                with lock:
                    outcomes.append((429, None))
                return
            try:
                status, payload = svc.handle("analyze",
                                             {"source": source})
                with lock:
                    outcomes.append((status, payload))
            finally:
                svc.end()

        threads = [threading.Thread(target=one) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(status for status, _ in outcomes)
        assert statuses.count(429) == 3
        assert statuses.count(200) == 1
        assert svc.metrics_payload()["shed"] == 3
        # After the stampede: normal service, correct digests.
        assert svc.try_begin()
        try:
            status, payload = svc.handle("analyze", {"source": source})
        finally:
            svc.end()
        assert status == 200
        assert _served_digests(payload) == _cli_digests(source)
    finally:
        svc.shutdown()
