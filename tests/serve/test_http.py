"""The asyncio HTTP adapter: routing, status codes, keep-alive.

One real daemon (random port, background thread) per module; requests
go through ``http.client`` so the bytes on the wire are exactly what
curl would send.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serve import AnalysisService, ServeConfig
from repro.serve.http import run_server

SOURCE = """
int g;
int *leaf(void) { return &g; }
int main(void) { int *p = leaf(); *p = 1; return 0; }
"""


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """(host, port) of a live daemon bound to an ephemeral port."""
    cache = tmp_path_factory.mktemp("serve-http-cache")
    config = ServeConfig(port=0, workers=2, cache=str(cache),
                         queue_limit=8)
    addr = {}
    ready = threading.Event()

    def on_ready(hp):
        addr["hp"] = hp
        ready.set()

    thread = threading.Thread(target=run_server, args=(config,),
                              kwargs={"ready": on_ready}, daemon=True)
    thread.start()
    assert ready.wait(30), "daemon failed to start"
    yield addr["hp"]
    # Daemon thread dies with the test process; the sandboxed caches
    # are under tmp_path_factory and cleaned by pytest.


def _request(daemon, method, path, body=None, headers=None):
    host, port = daemon
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def test_analyze_roundtrip_and_warm_hit(daemon):
    status, payload = _request(daemon, "POST", "/analyze",
                               {"source": SOURCE})
    assert status == 200
    assert set(payload["flavors"]) == {"insensitive", "sensitive",
                                       "flowinsensitive"}
    digest = payload["flavors"]["insensitive"]["digest"]
    status, warm = _request(daemon, "POST", "/analyze",
                            {"source": SOURCE})
    assert status == 200
    assert warm["tier"] == "solution"
    assert warm["flavors"]["insensitive"]["digest"] == digest


def test_metrics_endpoint(daemon):
    _request(daemon, "POST", "/analyze", {"source": SOURCE})
    status, payload = _request(daemon, "GET", "/metrics")
    assert status == 200
    assert payload["requests"]["analyze"] >= 1
    assert "tier_hits" in payload and "caches" in payload


def test_keep_alive_serves_multiple_requests(daemon):
    host, port = daemon
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        for _ in range(3):
            conn.request("POST", "/analyze",
                         body=json.dumps({"source": SOURCE}).encode())
            resp = conn.getresponse()
            assert resp.status == 200
            json.loads(resp.read())  # must drain to reuse the socket
    finally:
        conn.close()


def test_http_error_codes(daemon):
    status, _ = _request(daemon, "POST", "/no-such-route", {})
    assert status == 404
    status, _ = _request(daemon, "GET", "/analyze")
    assert status == 405
    status, _ = _request(daemon, "POST", "/metrics", {})
    assert status == 405
    status, payload = _request(daemon, "POST", "/analyze", None,
                               headers={"Content-Length": "0"})
    assert status == 400  # empty body: no target given
    host, port = daemon
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.request("POST", "/analyze", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        assert "JSON" in json.loads(resp.read())["error"]
    finally:
        conn.close()


def test_oversized_body_is_413(daemon):
    host, port = daemon
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.putrequest("POST", "/analyze")
        conn.putheader("Content-Length", str(64 * 1024 * 1024))
        conn.endheaders()
        resp = conn.getresponse()
        assert resp.status == 413
    finally:
        conn.close()


def test_negative_content_length_is_400(daemon):
    host, port = daemon
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.putrequest("POST", "/analyze", skip_host=False)
        conn.putheader("Content-Length", "-5")
        conn.endheaders()
        resp = conn.getresponse()
        assert resp.status == 400
        assert "Content-Length" in json.loads(resp.read())["error"]
    finally:
        conn.close()


def test_disconnect_mid_body_leaves_daemon_healthy(daemon):
    """A client that promises a body and hangs up mid-read must not
    kill the connection task with an unhandled exception; the daemon
    keeps serving."""
    import socket

    host, port = daemon
    sock = socket.create_connection((host, port), timeout=30)
    try:
        sock.sendall(b"POST /analyze HTTP/1.1\r\n"
                     b"Content-Length: 4096\r\n\r\n"
                     b"{\"truncated")
    finally:
        sock.close()  # mid-body EOF → IncompleteReadError server-side
    status, payload = _request(daemon, "POST", "/analyze",
                               {"source": SOURCE})
    assert status == 200
    assert payload["flavors"]["insensitive"]["digest"]


def test_bad_suite_program_is_400_over_http(daemon):
    status, payload = _request(daemon, "POST", "/analyze",
                               {"program": "definitely-not-a-program"})
    assert status == 400
    assert "unknown suite program" in payload["error"]


def test_query_over_http(daemon):
    status, payload = _request(daemon, "POST", "/query",
                               {"source": SOURCE, "function": "main"})
    assert status == 200
    assert payload["operations"]
    for op in payload["operations"]:
        assert op["function"] == "main"
        assert op["locations"]
