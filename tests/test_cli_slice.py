"""The ``repro slice`` subcommand."""

import json

import pytest

from repro.cli import main

SOURCE = """
int g;
int h;

void set(int *p, int v) {
    *p = v;
}

int get(int *p) {
    return *p;
}

int main(void) {
    int *q = &g;
    set(q, 5);
    h = get(q);
    return h;
}
"""

HAZARD_SOURCE = """
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    return 0;
}
"""


@pytest.fixture
def flow_c(tmp_path):
    path = tmp_path / "flow.c"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture
def hazard_c(tmp_path):
    path = tmp_path / "hazard.c"
    path.write_text(HAZARD_SOURCE)
    return str(path)


class TestText:
    def test_summary_line_and_origins(self, flow_c, capsys):
        assert main(["slice", flow_c,
                     "--criterion", "flow.c:10"]) == 0
        out = capsys.readouterr().out
        assert "backward slice of flow.c:10" in out
        assert "nodes over" in out
        assert "digest" in out

    def test_forward_direction(self, flow_c, capsys):
        assert main(["slice", flow_c, "--criterion", "flow.c:6",
                     "--direction", "forward"]) == 0
        assert "forward slice" in capsys.readouterr().out


class TestJson:
    def test_document_shape(self, flow_c, capsys):
        assert main(["slice", flow_c, "--criterion", "flow.c:10",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == []
        (payload,) = doc["slices"]
        sl = payload["slice"]
        assert sl["criterion"] == "flow.c:10"
        assert sl["direction"] == "backward"
        assert sl["size"] == len(sl["nodes"]) > 0
        assert set(payload["node_info"]) == set(sl["nodes"])
        assert payload["graph"]["stats"]["edges"] > 0

    def test_digest_stable_across_schedules_and_jobs(self, flow_c,
                                                     capsys):
        digests = set()
        for extra in (["--schedule", "batched"],
                      ["--schedule", "fifo"],
                      ["--schedule", "scc"],
                      ["--jobs", "2"],
                      ["--no-cache"]):
            assert main(["slice", flow_c, "--criterion", "flow.c:10",
                         "--format", "json"] + extra) == 0
            doc = json.loads(capsys.readouterr().out)
            digests.add(doc["slices"][0]["slice"]["digest"])
        assert len(digests) == 1


class TestDot:
    def test_digraph_with_root_highlight(self, flow_c, capsys):
        assert main(["slice", flow_c, "--criterion", "flow.c:10",
                     "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph ")
        assert "peripheries=2" in out
        assert "->" in out


class TestFindings:
    def test_from_finding_slices_the_hazard(self, hazard_c, capsys):
        assert main(["slice", hazard_c,
                     "--from-finding", "nullderef"]) == 0
        out = capsys.readouterr().out
        assert "slice of finding:nullderef|" in out


class TestErrors:
    def test_criterion_and_finding_are_exclusive(self, flow_c):
        with pytest.raises(SystemExit):
            main(["slice", flow_c, "--criterion", "flow.c:10",
                  "--from-finding", "nullderef"])

    def test_one_criterion_required(self, flow_c):
        with pytest.raises(SystemExit):
            main(["slice", flow_c])

    def test_unmatched_criterion_fails(self, flow_c, capsys):
        assert main(["slice", flow_c,
                     "--criterion", "flow.c:999"]) == 1
        assert "matches no program point" in capsys.readouterr().err

    def test_unmatched_finding_fails(self, flow_c, capsys):
        assert main(["slice", flow_c,
                     "--from-finding", "nullderef"]) == 1
        assert "no finding matches" in capsys.readouterr().err


class TestSuitePrograms:
    def test_named_program_by_basename_criterion(self, capsys):
        assert main(["slice", "part", "--criterion", "part.c:101",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["slices"][0]["program"] == "part"
