"""Experiment drivers (on a suite subset, to stay fast)."""

import pytest

from repro.errors import ReproError
from repro.report.experiments import (
    EXPERIMENT_IDS,
    SuiteRunner,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    fig6_rows,
    fig7_rows,
    gap_rows,
    opt42_rows,
    perf_rows,
    render_experiment,
)

SMALL = ["part", "span"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(SMALL)


class TestRunner:
    def test_caches_results(self, runner):
        assert runner.ci("part") is runner.ci("part")
        assert runner.cs("part") is runner.cs("part")
        assert runner.program("part") is runner.program("part")

    def test_cs_reuses_ci(self, runner):
        assert runner.cs("part").extras["ci_result"] is runner.ci("part")


class TestRows:
    def test_fig2(self, runner):
        headers, rows = fig2_rows(runner)
        assert len(rows) == len(SMALL)
        assert headers[0] == "name"
        for row in rows:
            assert row[1] > 0 and row[2] > 0 and row[3] > 0

    def test_fig3_total_row(self, runner):
        _, rows = fig3_rows(runner)
        assert rows[-1][0] == "TOTAL"
        for column in range(1, 6):
            assert rows[-1][column] == sum(r[column] for r in rows[:-1])

    def test_fig4_totals(self, runner):
        _, rows = fig4_rows(runner)
        reads = [r for r in rows if r[1] == "read" and r[0] != "TOTAL"]
        total_row = next(r for r in rows
                         if r[0] == "TOTAL" and r[1] == "read")
        assert total_row[2] == sum(r[2] for r in reads)

    def test_fig6_identity_column(self, runner):
        headers, rows = fig6_rows(runner)
        assert headers[-1] == "indirect ops identical"
        for row in rows[:-1]:
            assert row[-1] is True

    def test_fig7_percentages(self, runner):
        headers, rows = fig7_rows(runner)
        all_sum = sum(row[1 + i] for row in rows for i in range(4))
        assert all_sum == pytest.approx(100.0, abs=0.1)

    def test_opt42_total(self, runner):
        _, rows = opt42_rows(runner)
        assert rows[-1][0] == "TOTAL"
        assert 0 <= rows[-1][3] <= 100

    def test_perf(self, runner):
        _, rows = perf_rows(runner)
        for row in rows:
            assert row[1] > 0 and row[2] > 0

    def test_gap(self):
        _, rows = gap_rows(site_counts=(2, 4))
        assert rows[0][0] == 2 and rows[1][0] == 4
        assert rows[1][4] > rows[0][4]  # precision gap grows


class TestRender:
    def test_render_each_id(self, runner):
        for experiment_id in EXPERIMENT_IDS:
            if experiment_id == "gap":
                continue  # slower; covered above via gap_rows
            text = render_experiment(experiment_id, runner)
            assert "Figure" in text or "Section" in text
            assert "part" in text or "path" in text

    def test_unknown_id_rejected(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            render_experiment("fig99")
