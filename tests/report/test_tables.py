"""Table rendering."""

from repro.report.tables import format_cell, render_markdown, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_digits(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(1.23456, float_digits=3) == "1.235"

    def test_int_unchanged(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    HEADERS = ["name", "count", "ratio"]
    ROWS = [["alpha", 3, 1.5], ["b", 400, 0.25]]

    def test_structure(self):
        text = render_table(self.HEADERS, self.ROWS, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "name" in lines[2] and "ratio" in lines[2]
        assert set(lines[3]) <= {"-", " "}
        assert len(lines) == 6

    def test_alignment(self):
        text = render_table(self.HEADERS, self.ROWS)
        data = text.splitlines()[2:]
        # First column left-aligned, numbers right-aligned.
        assert data[0].startswith("alpha")
        assert data[1].startswith("b ")
        assert data[0].rstrip().endswith("1.50")
        assert data[1].rstrip().endswith("0.25")

    def test_no_title(self):
        text = render_table(self.HEADERS, self.ROWS)
        assert text.splitlines()[0].startswith("name")


class TestRenderMarkdown:
    def test_markdown_shape(self):
        text = render_markdown(["a", "b"], [[1, 2.5], [None, 0]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | ---: |"
        assert lines[2] == "| 1 | 2.50 |"
        assert lines[3] == "| - | 0 |"
