"""SARIF 2.1.0 export: schema-shape regression for checker findings."""

import json

import repro
from repro.analysis.checkers import run_checkers
from repro.report.export import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    findings_to_sarif,
    findings_to_sarif_json,
)

from ..conftest import lower

SRC = """
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    int *u;
    *u = 2;
    return 0;
}
"""


def make_findings():
    program = lower(SRC, name="hazards.c", hazard_model=True)
    result = repro.analyze_insensitive(program)
    return run_checkers(result)


class TestSarifShape:
    def test_top_level_shape(self):
        log = findings_to_sarif(make_findings())
        assert log["$schema"] == SARIF_SCHEMA
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-check"
        assert {r["id"] for r in driver["rules"]} \
            == {"deadstore", "nullderef", "uninit"}

    def test_results_reference_rules(self):
        log = findings_to_sarif(make_findings())
        run = log["runs"][0]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert run["results"], "expected findings"
        for result in run["results"]:
            assert result["level"] in ("error", "warning")
            assert rules[result["ruleIndex"]] == result["ruleId"]
            assert result["message"]["text"]
            assert result["partialFingerprints"]["reproFindingKey/v1"]

    def test_physical_locations_from_origins(self):
        log = findings_to_sarif(make_findings())
        for result in log["runs"][0]["results"]:
            (location,) = result["locations"]
            logical = location["logicalLocations"][0]
            assert logical["name"] == "main"
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uri"] == "hazards.c"
            assert physical["region"]["startLine"] > 0

    def test_no_origin_omits_physical_location(self):
        from repro.analysis.checkers import Finding
        f = Finding("uninit", "insensitive", "main", "lookup#1",
                    "", "", "warning", "m")
        log = findings_to_sarif([f])
        (location,) = log["runs"][0]["results"][0]["locations"]
        assert "physicalLocation" not in location
        assert location["logicalLocations"][0]["fullyQualifiedName"] \
            == "main:lookup#1"

    def test_json_rendering_deterministic(self):
        findings = make_findings()
        assert findings_to_sarif_json(findings) \
            == findings_to_sarif_json(list(findings))
        json.loads(findings_to_sarif_json(findings))  # valid JSON

    def test_empty_findings(self):
        log = findings_to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []
