"""Internal consistency of the transcribed paper data."""

import pytest

from repro.report import paper
from repro.suite.registry import PROGRAM_NAMES


class TestFigure2:
    def test_covers_suite(self):
        assert set(paper.FIGURE2) == set(PROGRAM_NAMES)

    def test_positive(self):
        for lines, nodes, outputs in paper.FIGURE2.values():
            assert 0 < outputs < nodes
            assert lines > 0


class TestFigure3:
    def test_totals_sum(self):
        """The TOTAL row must equal the column sums (checks the
        transcription)."""
        sums = [0] * 5
        for row in paper.FIGURE3.values():
            for i, value in enumerate(row):
                sums[i] += value
        assert tuple(sums) == paper.FIGURE3_TOTAL

    def test_row_totals(self):
        for name, (p, f, a, s, total) in paper.FIGURE3.items():
            assert p + f + a + s == total, name


class TestFigure4:
    def test_histograms_bounded_by_totals(self):
        """Histogram columns sum to ≤ total; the gap is the
        zero-location ops (backprop and bc each have one such read)."""
        for (name, kind), row in paper.FIGURE4.items():
            total, one, two, three, fourplus, mx, avg = row
            histogram = one + two + three + fourplus
            assert histogram <= total, (name, kind)
            gap = total - histogram
            if gap:
                assert (name, kind) in (("backprop", "read"), ("bc", "read"))

    def test_total_rows_sum(self):
        for kind in ("read", "write"):
            sums = [0] * 5
            max_seen = 0
            for (name, k), row in paper.FIGURE4.items():
                if k != kind:
                    continue
                for i in range(5):
                    sums[i] += row[i]
                max_seen = max(max_seen, row[5])
            expected = paper.FIGURE4_TOTAL[kind]
            assert tuple(sums) == expected[:5]
            assert max_seen == expected[5]

    def test_avg_consistent_with_rows(self):
        """Where a row's histogram is complete (no >4 bucket and no
        zero ops), its average must match the recomputed value."""
        for (name, kind), row in paper.FIGURE4.items():
            total, one, two, three, fourplus, mx, avg = row
            if fourplus == 0 and one + two + three == total:
                recomputed = (one + 2 * two + 3 * three) / total
                assert recomputed == pytest.approx(avg, abs=0.011), \
                    (name, kind)


class TestFigure6:
    def test_covers_suite(self):
        assert set(paper.FIGURE6) == set(PROGRAM_NAMES)

    def test_row_consistency(self):
        for name, row in paper.FIGURE6.items():
            p, f, a, s, total, ci_total, pct = row
            assert p + f + a + s == total, name
            assert total <= ci_total, name
            spurious = ci_total - total
            if ci_total:
                assert 100 * spurious / ci_total == \
                    pytest.approx(pct, abs=0.06), name

    def test_overall_two_percent(self):
        *_, total, ci_total, pct = paper.FIGURE6_TOTAL
        assert pct == 2.0
        assert 100 * (ci_total - total) / ci_total == \
            pytest.approx(2.0, abs=0.05)

    def test_cs_never_exceeds_ci_by_type(self):
        for name in PROGRAM_NAMES:
            ci_row = paper.FIGURE3[name]
            cs_row = paper.FIGURE6[name]
            for i in range(4):
                assert cs_row[i] <= ci_row[i], name


class TestFigure7:
    def test_spurious_percentages_sum_to_100(self):
        total = sum(v for v in paper.FIGURE7_SPURIOUS.values()
                    if v is not None)
        assert total == pytest.approx(100.0, abs=0.5)

    def test_headline_skews(self):
        """§5.2: spurious pairs skew toward local paths and heap
        referents."""
        local_paths = sum(v for (p, r), v in paper.FIGURE7_SPURIOUS.items()
                          if p == "local")
        heap_refs = sum(v for (p, r), v in paper.FIGURE7_SPURIOUS.items()
                        if r == "heap")
        assert local_paths > 40
        assert heap_refs > 25


class TestTextClaims:
    def test_fractions_are_fractions(self):
        claims = paper.TEXT_CLAIMS
        assert 0 < claims["single_location_fraction"] < 1
        assert 0 < claims["reads_needing_assumptions"] < 1
        assert 0 < claims["writes_needing_assumptions"] < 1
        assert claims["cs_transfer_ratio"] > 1
        assert claims["cs_meet_ratio_max"] == 100.0
