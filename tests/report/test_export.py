"""JSON export of analysis results."""

import json

import pytest

import repro
from repro.analysis.compare import compare_results
from repro.analysis.insensitive import analyze_insensitive
from repro.analysis.sensitive import analyze_sensitive
from repro.report.export import (
    comparison_to_dict,
    path_to_string,
    result_to_dict,
    result_to_json,
)

SRC = """
int g; int *p;
void set(void) { p = &g; }
int main(void) { set(); *p = 1; return 0; }
"""


@pytest.fixture(scope="module")
def result():
    return analyze_insensitive(repro.parse_source(SRC, name="export.c"))


class TestResultExport:
    def test_round_trips_through_json(self, result):
        text = result_to_json(result)
        payload = json.loads(text)
        assert payload["program"] == "export.c"
        assert payload["flavor"] == "insensitive"

    def test_census_matches(self, result):
        payload = result_to_dict(result)
        assert payload["pair_census"]["total"] \
            == result.solution.total_pairs()

    def test_memory_operations_serialized(self, result):
        payload = result_to_dict(result)
        ops = payload["memory_operations"]
        assert ops == sorted(ops, key=lambda o: o["op"])
        indirect = [o for o in ops if o["indirect"]]
        assert indirect
        assert indirect[0]["locations"] == ["g"]

    def test_call_graph_serialized(self, result):
        payload = result_to_dict(result)
        callees = {edge["callee"] for edge in payload["call_graph"]}
        assert callees == {"set"}

    def test_pairs_optional(self, result):
        with_pairs = result_to_dict(result)
        without = result_to_dict(result, include_pairs=False)
        assert "pairs" in with_pairs
        assert "pairs" not in without

    def test_deterministic(self, result):
        assert result_to_json(result) == result_to_json(result)

    def test_two_runs_identical(self):
        program_a = repro.parse_source(SRC, name="export.c")
        program_b = repro.parse_source(SRC, name="export.c")
        a = result_to_dict(analyze_insensitive(program_a))
        b = result_to_dict(analyze_insensitive(program_b))
        a.pop("elapsed_seconds")
        b.pop("elapsed_seconds")
        # Location uids differ across runs but rendered names do not.
        assert a == b


class TestComparisonExport:
    def test_fields(self):
        program = repro.parse_source(SRC)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        payload = comparison_to_dict(compare_results(ci, cs))
        assert payload["indirect_ops_identical"] is True
        assert payload["indirect_diffs"] == []
        assert payload["total_insensitive"] >= payload["total_sensitive"]

    def test_diffs_serialized(self):
        from repro.suite.adversarial import load_cs_wins
        program = load_cs_wins(2)
        ci = analyze_insensitive(program)
        cs = analyze_sensitive(program, ci_result=ci)
        payload = comparison_to_dict(compare_results(ci, cs))
        assert payload["indirect_ops_identical"] is False
        diff = payload["indirect_diffs"][0]
        assert set(diff["cs"]) < set(diff["ci"])


class TestPathStrings:
    def test_rendering(self, result):
        payload = result_to_dict(result)
        pair_lists = payload["pairs"].values()
        rendered = {pair[0] for pairs in pair_lists for pair in pairs}
        assert "ε" in rendered or any(r == "p" for r in rendered)
