"""The structural validator."""

import pytest

from repro.errors import IRError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Program
from repro.ir.nodes import LookupNode, UpdateNode, ValueTag
from repro.ir.validate import validate_function, validate_program
from repro.memory import global_location, location_path
from repro.memory.access import EMPTY_OFFSET
from repro.memory.pairs import pair


def valid_graph():
    gb = GraphBuilder("f")
    entry = gb.entry([])
    gpath = location_path(global_location("g"))
    addr = gb.address(gpath)
    value = gb.lookup(addr, entry.store_out, ValueTag.POINTER)
    store = gb.update(addr, entry.store_out, value)
    gb.ret(None, store)
    return gb.finish()


class TestFunctionValidation:
    def test_valid_graph_passes(self):
        validate_function(valid_graph())

    def test_dangling_input_caught(self):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        node = LookupNode(gb.graph, ValueTag.SCALAR)  # nothing connected
        gb.ret(None, entry.store_out)
        with pytest.raises(IRError, match="dangling"):
            validate_function(gb.graph)

    def test_store_type_confusion_caught(self):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        bad = LookupNode(gb.graph, ValueTag.SCALAR)
        bad.loc.connect(entry.store_out)       # store into loc input
        bad.store.connect(gb.const(1))         # scalar into store input
        gb.ret(None, entry.store_out)
        with pytest.raises(IRError, match="store"):
            validate_function(gb.graph)

    def test_cross_function_edge_caught(self):
        other = GraphBuilder("other")
        other_entry = other.entry([])
        other.ret(None, other_entry.store_out)

        gb = GraphBuilder("f")
        entry = gb.entry([])
        node = UpdateNode(gb.graph)
        node.loc.connect(other_entry.store_out)
        node.store.connect(entry.store_out)
        node.value.connect(gb.const(1))
        gb.ret(None, entry.store_out)
        with pytest.raises(IRError, match="cross-function"):
            validate_function(gb.graph)

    def test_missing_return_caught(self):
        gb = GraphBuilder("f")
        gb.entry([])
        with pytest.raises(IRError, match="no return"):
            validate_function(gb.graph)

    def test_dangling_store_output_caught(self):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        gpath = location_path(global_location("g"))
        addr = gb.address(gpath)
        gb.update(addr, entry.store_out, gb.const(1))  # ostore dropped
        gb.ret(None, entry.store_out)
        with pytest.raises(IRError, match="dangling store output"):
            validate_function(gb.graph)

    def test_dangling_store_output_names_node(self):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        gpath = location_path(global_location("g"))
        addr = gb.address(gpath)
        dropped = gb.update(addr, entry.store_out, gb.const(1))
        gb.ret(None, entry.store_out)
        with pytest.raises(IRError,
                           match=f"update#{dropped.node.uid}"):
            validate_function(gb.graph)

    def test_unconsumed_value_output_allowed(self):
        # Dead lookups (pre-simplification) and discarded call results
        # are legal; only an unconsumed *store* is a dropped effect.
        gb = GraphBuilder("f")
        entry = gb.entry([])
        gpath = location_path(global_location("g"))
        addr = gb.address(gpath)
        gb.lookup(addr, entry.store_out, ValueTag.SCALAR)  # result unused
        gb.ret(None, entry.store_out)
        validate_function(gb.graph)


class TestProgramValidation:
    def test_valid_program(self):
        program = Program("p")
        program.add_function(valid_graph())
        program.add_root("f")
        validate_program(program)

    def test_offset_initial_store_pair_caught(self):
        program = Program("p")
        program.add_function(valid_graph())
        g = location_path(global_location("g"))
        program.seed_store([pair(EMPTY_OFFSET, g)])
        with pytest.raises(IRError, match="offset path"):
            validate_program(program)

    def test_unknown_root_rejected(self):
        program = Program("p")
        program.add_function(valid_graph())
        with pytest.raises(IRError):
            program.add_root("missing")

    def test_duplicate_function_rejected(self):
        program = Program("p")
        program.add_function(valid_graph())
        with pytest.raises(IRError, match="duplicate"):
            program.add_function(valid_graph())
