"""Node/port mechanics and output classification."""

import pytest

from repro.errors import IRError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import FunctionGraph
from repro.ir.nodes import (
    AddressNode,
    ConstNode,
    LookupNode,
    MergeNode,
    PrimopNode,
    PrimopSemantics,
    UpdateNode,
    ValueTag,
)
from repro.memory import global_location, location_path


@pytest.fixture
def graph():
    return FunctionGraph("f")


@pytest.fixture
def gpath():
    return location_path(global_location("g"))


class TestPorts:
    def test_connect_tracks_consumers(self, graph, gpath):
        addr = AddressNode(graph, gpath)
        store_in = LookupNode(graph, ValueTag.SCALAR)
        store_in.loc.connect(addr.out)
        assert store_in.loc.source is addr.out
        assert store_in.loc in addr.out.consumers

    def test_reconnect_removes_old_consumer(self, graph, gpath):
        a = AddressNode(graph, gpath)
        b = AddressNode(graph, gpath)
        node = LookupNode(graph, ValueTag.SCALAR)
        node.loc.connect(a.out)
        node.loc.connect(b.out)
        assert node.loc not in a.out.consumers
        assert node.loc in b.out.consumers

    def test_named_port_lookup(self, graph):
        node = UpdateNode(graph)
        assert node.input("loc") is node.loc
        assert node.output("store") is node.ostore
        with pytest.raises(KeyError):
            node.input("nope")

    def test_uids_increase(self, graph, gpath):
        a = AddressNode(graph, gpath)
        b = AddressNode(graph, gpath)
        assert b.uid > a.uid
        assert graph.nodes == [a, b]


class TestAliasRelated:
    """Figure 2's alias-related output definition."""

    def test_pointer_function_store_related(self, graph, gpath):
        assert AddressNode(graph, gpath).out.alias_related
        assert AddressNode(graph, gpath,
                           ValueTag.FUNCTION).out.alias_related
        assert UpdateNode(graph).ostore.alias_related

    def test_scalar_not_related(self, graph):
        assert not ConstNode(graph, 1).out.alias_related

    def test_aggregate_depends_on_contents(self, graph):
        with_ptr = LookupNode(graph, ValueTag.AGGREGATE,
                              carries_pointers=True)
        without = LookupNode(graph, ValueTag.AGGREGATE,
                             carries_pointers=False)
        assert with_ptr.out.alias_related
        assert not without.out.alias_related


class TestNodeConstruction:
    def test_address_requires_location(self, graph):
        from repro.memory.access import EMPTY_OFFSET
        with pytest.raises(ValueError):
            AddressNode(graph, EMPTY_OFFSET)

    def test_field_primop_requires_op(self, graph):
        with pytest.raises(ValueError):
            PrimopNode(graph, "fa", 1, ValueTag.POINTER,
                       PrimopSemantics.FIELD)

    def test_extract_requires_op(self, graph):
        with pytest.raises(ValueError):
            PrimopNode(graph, "ex", 1, ValueTag.POINTER,
                       PrimopSemantics.EXTRACT)

    def test_merge_add_branch(self, graph):
        merge = MergeNode(graph, 1, ValueTag.POINTER)
        port = merge.add_branch()
        assert len(merge.branches) == 2
        assert merge.branches[1] is port

    def test_is_indirect(self, graph, gpath):
        addr = AddressNode(graph, gpath)
        direct = LookupNode(graph, ValueTag.SCALAR)
        direct.loc.connect(addr.out)
        assert not direct.is_indirect
        computed = PrimopNode(graph, "ptradd", 1, ValueTag.POINTER,
                              PrimopSemantics.COPY)
        computed.operands[0].connect(addr.out)
        indirect = LookupNode(graph, ValueTag.SCALAR)
        indirect.loc.connect(computed.out)
        assert indirect.is_indirect


class TestGraphQueries:
    def test_memory_operations(self, graph, gpath):
        AddressNode(graph, gpath)
        lk = LookupNode(graph, ValueTag.SCALAR)
        up = UpdateNode(graph)
        assert set(graph.memory_operations()) == {lk, up}

    def test_double_entry_rejected(self, graph):
        from repro.ir.nodes import EntryNode
        graph.set_entry(EntryNode(graph, []))
        with pytest.raises(IRError):
            graph.set_entry(EntryNode(graph, []))

    def test_control_use_foreign_rejected(self, graph, gpath):
        other = FunctionGraph("other")
        node = AddressNode(other, gpath)
        with pytest.raises(IRError):
            graph.add_control_use(node.out)
