"""DOT export."""

import re

import pytest

import repro
from repro.analysis.insensitive import analyze_insensitive
from repro.ir.dot import program_to_dot, to_dot

SRC = """
int g; int *p;
int helper(int x) { return x + 1; }
int main(void) {
    p = &g;
    if (helper(1))
        *p = 2;
    return *p;
}
"""


@pytest.fixture(scope="module")
def program():
    return repro.parse_source(SRC)


class TestFunctionDot:
    def test_valid_structure(self, program):
        dot = to_dot(program.functions["main"])
        assert dot.startswith('digraph "main" {')
        assert dot.rstrip().endswith("}")
        # Balanced braces, one statement per line.
        assert dot.count("{") == dot.count("}")

    def test_all_nodes_present(self, program):
        graph = program.functions["main"]
        dot = to_dot(graph)
        for node in graph.nodes:
            assert f"n{node.uid} [" in dot

    def test_all_edges_present(self, program):
        graph = program.functions["main"]
        dot = to_dot(graph)
        edges = sum(1 for node in graph.nodes for port in node.inputs
                    if port.source is not None)
        assert dot.count(" -> ") >= edges

    def test_store_edges_bold(self, program):
        dot = to_dot(program.functions["main"])
        assert "style=bold" in dot

    def test_control_uses_shown(self, program):
        dot = to_dot(program.functions["main"])
        assert "ctl0" in dot
        assert 'label="γ"' in dot

    def test_annotation_with_result(self, program):
        result = analyze_insensitive(program)
        dot = to_dot(program.functions["main"], result=result)
        assert "{g}" in dot.replace("\\n", " ")

    def test_origins_included_when_asked(self, program):
        dot = to_dot(program.functions["main"], include_origins=True)
        assert "<source>:" in dot


class TestProgramDot:
    def test_clusters(self, program):
        dot = program_to_dot(program)
        assert 'subgraph "cluster_main"' in dot
        assert 'subgraph "cluster_helper"' in dot
        assert dot.count("{") == dot.count("}")

    def test_node_ids_unique_across_clusters(self, program):
        dot = program_to_dot(program)
        # Node *declarations* start their line with the id; edge lines
        # contain "->" after the id and are excluded by the anchor.
        ids = re.findall(r"^\s*(f\d+_n\d+) \[", dot, re.MULTILINE)
        assert len(ids) == len(set(ids))
        assert len(ids) == program.node_count()
