"""Textual dumps."""

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Program
from repro.ir.nodes import ValueTag
from repro.ir.pretty import format_function, format_program
from repro.memory import global_location, location_path
from repro.memory.pairs import direct


def _program():
    program = Program("demo")
    gb = GraphBuilder("f")
    entry = gb.entry([("p", ValueTag.POINTER, None)])
    gpath = location_path(global_location("g"))
    addr = gb.address(gpath)
    value = gb.lookup(addr, entry.store_out, ValueTag.POINTER)
    store = gb.update(value, entry.store_out, gb.const(7))
    gb.ret(None, store)
    program.add_function(gb.finish())
    program.add_root("f")
    return program


class TestFormatFunction:
    def test_contains_all_node_kinds(self):
        text = format_function(_program().functions["f"])
        for expected in ("entry", "address g", "lookup", "update",
                         "return", "const 7"):
            assert expected in text

    def test_indirect_marker(self):
        text = format_function(_program().functions["f"])
        assert "; indirect" in text  # the update through a loaded pointer

    def test_recursive_marker(self):
        program = _program()
        program.functions["f"].recursive = True
        assert "(recursive)" in format_function(program.functions["f"])


class TestFormatProgram:
    def test_header_and_roots(self):
        text = format_program(_program())
        assert "program demo" in text
        assert "roots: f" in text

    def test_initial_store_section(self):
        program = _program()
        g = location_path(global_location("gp"))
        program.seed_store([direct(g)])
        assert "initial store" in format_program(program)

    def test_only_filter(self):
        program = _program()
        gb = GraphBuilder("other")
        entry = gb.entry([])
        gb.ret(None, entry.store_out)
        program.add_function(gb.finish())
        text = format_program(program, only="other")
        assert "function other" in text
        assert "function f" not in text
