"""Trivial-merge elimination and dead-node removal."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.nodes import ConstNode, LookupNode, MergeNode, ValueTag
from repro.ir.simplify import (
    eliminate_trivial_merges,
    remove_dead_nodes,
    simplify_function,
)
from repro.memory import global_location, location_path


@pytest.fixture
def gpath():
    return location_path(global_location("g"))


class TestTrivialMerges:
    def test_same_source_collapses(self, gpath):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        merged = gb.merge([addr, addr, addr], tag=ValueTag.POINTER)
        value = gb.lookup(merged, entry.store_out, ValueTag.SCALAR)
        store = gb.update(addr, entry.store_out, value)
        gb.ret(None, store)
        removed = eliminate_trivial_merges(gb.graph)
        assert removed == 1
        lookup = next(n for n in gb.graph.nodes
                      if isinstance(n, LookupNode))
        assert lookup.loc.source is addr

    def test_distinct_sources_kept(self, gpath):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        a = gb.address(gpath)
        b = gb.address(location_path(global_location("h")))
        merged = gb.merge([a, b])
        store = gb.update(merged, entry.store_out, gb.const(1))
        gb.ret(None, store)
        assert eliminate_trivial_merges(gb.graph) == 0
        assert any(isinstance(n, MergeNode) for n in gb.graph.nodes)

    def test_self_loop_header_collapses(self, gpath):
        """A loop-invariant header merge(x, self) reduces to x."""
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        header = gb.loop_header(addr)
        gb.close_loop(header, header.out)
        store = gb.update(header.out, entry.store_out, gb.const(1))
        gb.ret(None, store)
        assert eliminate_trivial_merges(gb.graph) == 1

    def test_cascading_collapse(self, gpath):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        m1 = gb.merge([addr, addr])
        m2 = gb.merge([m1, addr])  # trivial only after m1 collapses
        store = gb.update(m2, entry.store_out, gb.const(1))
        gb.ret(None, store)
        assert eliminate_trivial_merges(gb.graph) == 2


class TestDeadNodes:
    def test_unused_const_removed(self):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        gb.const(42)  # never consumed
        gb.ret(None, entry.store_out)
        assert remove_dead_nodes(gb.graph) == 1
        assert not any(isinstance(n, ConstNode) for n in gb.graph.nodes)

    def test_store_chain_kept(self, gpath):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        store = gb.update(addr, entry.store_out, gb.const(1))
        gb.ret(None, store)
        assert remove_dead_nodes(gb.graph) == 0

    def test_unused_lookup_removed(self, gpath):
        """Dead-code removal: a read whose value goes nowhere."""
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        gb.lookup(addr, entry.store_out, ValueTag.SCALAR)
        gb.ret(None, entry.store_out)
        # Both the lookup and its now-unreferenced address node go in
        # one backward-reachability pass.
        assert remove_dead_nodes(gb.graph) == 2
        assert not any(isinstance(n, LookupNode) for n in gb.graph.nodes)

    def test_control_use_anchors_liveness(self, gpath):
        """A loop/branch predicate computation must survive even though
        no data value consumes it (it feeds a γ in VDG terms)."""
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        cond = gb.lookup(addr, entry.store_out, ValueTag.SCALAR)
        gb.graph.add_control_use(cond)
        gb.ret(None, entry.store_out)
        assert remove_dead_nodes(gb.graph) == 0
        assert any(isinstance(n, LookupNode) for n in gb.graph.nodes)

    def test_entry_always_kept(self):
        gb = GraphBuilder("f")
        entry = gb.entry([("p", ValueTag.POINTER, None)])
        gb.ret(None, entry.store_out)
        remove_dead_nodes(gb.graph)
        assert gb.graph.entry is entry
        assert entry in gb.graph.nodes


class TestSimplifyFixpoint:
    def test_simplify_runs_to_fixpoint(self, gpath):
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        m = gb.merge([addr, addr])
        gb.lookup(m, entry.store_out, ValueTag.SCALAR)  # dead after collapse
        store = gb.update(addr, entry.store_out, gb.const(1))
        gb.ret(None, store)
        total = simplify_function(gb.graph)
        assert total >= 2
        assert not any(isinstance(n, (MergeNode, LookupNode))
                       for n in gb.graph.nodes)

    def test_control_use_redirect_on_merge_collapse(self, gpath):
        """A collapsed merge that was registered as a control use hands
        its registration to the replacement value."""
        gb = GraphBuilder("f")
        entry = gb.entry([])
        addr = gb.address(gpath)
        cond = gb.lookup(addr, entry.store_out, ValueTag.SCALAR)
        m = gb.merge([cond, cond])
        gb.graph.add_control_use(m)
        gb.ret(None, entry.store_out)
        simplify_function(gb.graph)
        assert gb.graph.control_uses == [cond]
        assert any(isinstance(n, LookupNode) for n in gb.graph.nodes)
