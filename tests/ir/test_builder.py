"""GraphBuilder construction API."""

import pytest

from repro.errors import IRError
from repro.ir.builder import GraphBuilder, unify_tags
from repro.ir.graph import FunctionGraph
from repro.ir.nodes import MergeNode, ValueTag
from repro.memory import global_location, location_path


@pytest.fixture
def gb():
    return GraphBuilder("f")


@pytest.fixture
def gpath():
    return location_path(global_location("g"))


def minimal(gb):
    entry = gb.entry([("p", ValueTag.POINTER, None)])
    return entry


class TestBasics:
    def test_finish_requires_entry_and_return(self, gb):
        with pytest.raises(IRError):
            gb.finish()
        entry = minimal(gb)
        with pytest.raises(IRError):
            gb.finish()
        gb.ret(None, entry.store_out)
        graph = gb.finish()
        assert graph.entry is entry

    def test_wraps_existing_graph(self):
        graph = FunctionGraph("g")
        gb = GraphBuilder(graph)
        assert gb.graph is graph

    def test_lookup_update_chain(self, gb, gpath):
        entry = minimal(gb)
        addr = gb.address(gpath)
        value = gb.lookup(addr, entry.store_out, ValueTag.POINTER)
        store = gb.update(addr, entry.store_out, value)
        gb.ret(None, store)
        graph = gb.finish()
        assert len(list(graph.memory_operations())) == 2

    def test_call_ports(self, gb, gpath):
        entry = minimal(gb)
        fcn = gb.address(gpath, ValueTag.FUNCTION)
        out, store = gb.call(fcn, [entry.formals[0]], entry.store_out,
                             ValueTag.POINTER)
        assert out.tag is ValueTag.POINTER
        assert store.tag is ValueTag.STORE

    def test_origin_recorded(self, gb):
        gb.set_origin("file.c:3")
        port = gb.const(1)
        assert port.node.origin == "file.c:3"


class TestMerge:
    def test_single_branch_is_identity(self, gb):
        entry = minimal(gb)
        assert gb.merge([entry.formals[0]]) is entry.formals[0]

    def test_empty_merge_rejected(self, gb):
        with pytest.raises(IRError):
            gb.merge([])

    def test_merge_with_pred(self, gb):
        a = gb.const(1)
        b = gb.const(2)
        pred = gb.const(0)
        out = gb.merge([a, b], pred=pred)
        node = out.node
        assert isinstance(node, MergeNode)
        assert node.pred.source is pred

    def test_loop_header_and_close(self, gb):
        entry = minimal(gb)
        header = gb.loop_header(entry.formals[0])
        assert len(header.branches) == 1
        gb.close_loop(header, header.out)  # self back edge
        assert len(header.branches) == 2
        assert header.branches[1].source is header.out


class TestUnifyTags:
    def _port(self, gb, tag, carries=None):
        return gb.const(0, tag)

    def test_same_tags(self, gb):
        a, b = gb.const(0, ValueTag.POINTER), gb.const(0, ValueTag.POINTER)
        tag, _ = unify_tags([a, b])
        assert tag is ValueTag.POINTER

    def test_scalar_loses_to_pointer(self, gb):
        a, b = gb.const(0), gb.const(0, ValueTag.POINTER)
        tag, _ = unify_tags([a, b])
        assert tag is ValueTag.POINTER

    def test_mixed_nonscalar_degrades_to_aggregate(self, gb):
        a = gb.const(0, ValueTag.POINTER)
        b = gb.const(0, ValueTag.FUNCTION)
        tag, _ = unify_tags([a, b])
        assert tag is ValueTag.AGGREGATE

    def test_store_mix_rejected(self, gb):
        entry = minimal(gb)
        with pytest.raises(IRError):
            unify_tags([entry.store_out, gb.const(0)])

    def test_all_store(self, gb):
        entry = minimal(gb)
        tag, carries = unify_tags([entry.store_out, entry.store_out])
        assert tag is ValueTag.STORE and carries


class TestPrimopHelpers:
    def test_copy_preserves_tag(self, gb):
        p = gb.const(0, ValueTag.POINTER)
        out = gb.copy(p)
        assert out.tag is ValueTag.POINTER

    def test_field_addr(self, gb):
        from repro.memory.access import FieldOp
        p = gb.const(0, ValueTag.POINTER)
        out = gb.field_addr(p, FieldOp("S", "x"))
        assert out.node.field_op is FieldOp("S", "x")

    def test_extract(self, gb):
        from repro.memory.access import FieldOp
        agg = gb.const(0, ValueTag.AGGREGATE)
        out = gb.extract(agg, FieldOp("S", "x"), ValueTag.POINTER)
        assert out.tag is ValueTag.POINTER
