"""The ``repro check`` subcommand."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def hazards_c(tmp_path):
    path = tmp_path / "hazards.c"
    path.write_text("""
int g;
int main(void) {
    int *p = 0;
    if (g) p = &g;
    *p = 1;
    int *u;
    *u = 2;
    return 0;
}
""")
    return str(path)


@pytest.fixture
def clean_c(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text("""
int g;
int main(void) { int *p = &g; *p = 1; return *p; }
""")
    return str(path)


class TestCheckText:
    def test_findings_and_summary(self, hazards_c, capsys):
        assert main(["check", hazards_c]) == 0
        out = capsys.readouterr().out
        assert "[nullderef/insensitive]" in out
        assert "[uninit/insensitive]" in out
        assert "hazards.c:" in out
        assert "finding(s) across 1 program(s)" in out

    def test_clean_program(self, clean_c, capsys):
        assert main(["check", clean_c]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_checker_filter(self, hazards_c, capsys):
        assert main(["check", hazards_c, "--checkers", "uninit"]) == 0
        out = capsys.readouterr().out
        assert "[uninit/insensitive]" in out
        assert "nullderef" not in out

    def test_unknown_checker_rejected(self, hazards_c, capsys):
        assert main(["check", hazards_c, "--checkers", "nosuch"]) == 1
        assert "unknown checker" in capsys.readouterr().err

    def test_witness(self, hazards_c, capsys):
        assert main(["check", hazards_c, "--witness",
                     "--checkers", "nullderef"]) == 0
        out = capsys.readouterr().out
        assert "<null>" in out
        assert "address constant" in out

    def test_suite_program_by_name(self, capsys):
        assert main(["check", "span"]) == 0
        out = capsys.readouterr().out
        assert "span.c:" in out


class TestCheckJson:
    def test_payload_shape(self, hazards_c, capsys):
        assert main(["check", hazards_c, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == []
        (entry,) = payload["programs"]
        assert entry["program"] == hazards_c
        per_flavor = entry["flavors"]["insensitive"]
        assert len(per_flavor["digest"]) == 64
        checkers = {f["checker"] for f in per_flavor["findings"]}
        assert {"nullderef", "uninit"} <= checkers

    def test_all_flavors(self, hazards_c, capsys):
        assert main(["check", hazards_c, "--flavor", "all",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["programs"]
        assert set(entry["flavors"]) == {"insensitive", "sensitive",
                                         "flowinsensitive"}


class TestCheckSarif:
    def test_sarif_log(self, hazards_c, capsys):
        assert main(["check", hazards_c, "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert results
        assert {r["ruleId"] for r in results} \
            == {"deadstore", "nullderef", "uninit"}

    def test_sarif_stable_across_schedules(self, hazards_c, capsys):
        outputs = []
        for schedule in ("batched", "fifo", "scc"):
            assert main(["check", hazards_c, "--format", "sarif",
                         "--schedule", schedule, "--no-cache"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]


class TestCheckErrors:
    def test_missing_file_keep_going(self, hazards_c, tmp_path, capsys):
        missing = str(tmp_path / "nope.c")
        assert main(["check", hazards_c, missing]) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "finding(s)" in captured.out  # good file still checked

    def test_telemetry(self, hazards_c, tmp_path, capsys):
        out_path = tmp_path / "t.jsonl"
        assert main(["check", hazards_c,
                     "--telemetry", str(out_path)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in out_path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["check"]
        assert records[0]["by_checker"]["nullderef"] >= 1
        assert "decode_calls_after" in records[0]["dense"]
